//! Smoke tests for the `catt` command-line tool.

use std::process::Command;

fn catt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_catt"))
}

fn demo_file() -> tempfile_path::TempPath {
    tempfile_path::write(
        "#define N 512
         __global__ void walk(float *A, float *tmp) {
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {
                 for (int j = 0; j < 64; j++) {
                     tmp[i] += A[i * 64 + j];
                 }
             }
         }",
    )
}

/// Minimal temp-file helper (no external crates).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(contents: &str) -> TempPath {
        let p = std::env::temp_dir().join(format!(
            "catt_cli_test_{}_{:?}.cu",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&p, contents).unwrap();
        TempPath(p)
    }
}

#[test]
fn analyze_reports_decision() {
    let f = demo_file();
    let out = catt()
        .args([
            "analyze",
            f.0.to_str().unwrap(),
            "--launch",
            "walk=2x256",
            "--l1",
            "32",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kernel `walk`"), "{stdout}");
    assert!(stdout.contains("contended=true"), "{stdout}");
}

#[test]
fn compile_emits_parsable_source() {
    let f = demo_file();
    let out_file = std::env::temp_dir().join(format!("catt_cli_out_{}.cu", std::process::id()));
    let out = catt()
        .args([
            "compile",
            f.0.to_str().unwrap(),
            "--launch",
            "walk=2x256",
            "--l1",
            "32",
            "-o",
            out_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let emitted = std::fs::read_to_string(&out_file).unwrap();
    let _ = std::fs::remove_file(&out_file);
    assert!(emitted.contains("__syncthreads();"), "{emitted}");
    catt_frontend::parse_module(&emitted).expect("emitted source parses");
}

#[test]
fn run_reports_speedup() {
    let f = demo_file();
    let out = catt()
        .args([
            "run",
            f.0.to_str().unwrap(),
            "--launch",
            "walk=2x256",
            "--l1",
            "32",
            "--args",
            "f:32768,f:512",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("speedup"), "{stdout}");
}

#[test]
fn profile_emits_reports_and_valid_trace() {
    let trace = std::env::temp_dir().join(format!("catt_cli_trace_{}.json", std::process::id()));
    let out = catt()
        .args(["profile", "ATAX", "--trace-out", trace.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stall breakdown"), "{stdout}");
    assert!(stdout.contains("memory"), "{stdout}");
    assert!(stdout.contains("L1D heat map"), "{stdout}");
    assert!(stdout.contains("pred lines"), "{stdout}");
    let json = std::fs::read_to_string(&trace).unwrap();
    let _ = std::fs::remove_file(&trace);
    catt_profile::json::validate(&json).expect("trace is valid JSON");
    assert!(json.contains("\"traceEvents\""), "trace envelope present");
}

#[test]
fn profile_rejects_unknown_workload() {
    let out = catt().args(["profile", "NOPE"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = catt().args(["analyze"]).output().unwrap();
    assert!(!out.status.success());
    let out = catt()
        .args(["frobnicate", "x.cu", "--launch", "k=1x32"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn fuzz_small_campaign_is_deterministic_and_clean() {
    let run = || {
        catt()
            .args(["fuzz", "--seed", "1", "--iters", "30"])
            .output()
            .unwrap()
    };
    let a = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    let b = run();
    assert_eq!(
        a.stdout, b.stdout,
        "same seed must give a byte-identical report"
    );
    let stdout = String::from_utf8_lossy(&a.stdout);
    assert!(stdout.contains("violations .............. 0"), "{stdout}");
    assert!(stdout.contains("kernels generated ....... 30"), "{stdout}");
}

#[test]
fn fuzz_replays_the_regression_corpus() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let out = catt()
        .args([
            "fuzz",
            "--seed",
            "2",
            "--iters",
            "5",
            "--corpus",
            corpus.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corpus replay:"), "{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn fuzz_unchecked_fails_and_persists_counterexamples() {
    let dir = std::env::temp_dir().join(format!(
        "catt_cli_fuzz_corpus_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let out = catt()
        .args([
            "fuzz",
            "--seed",
            "1",
            "--iters",
            "16",
            "--unchecked",
            "--shrink",
            "--corpus",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "an unchecked campaign over these seeds must find the miscompile"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("new counterexample written"), "{stderr}");
    let wrote_cex = std::fs::read_dir(&dir)
        .unwrap()
        .any(|e| e.unwrap().file_name().to_string_lossy().starts_with("cex-"));
    assert!(wrote_cex, "no cex-*.cu file persisted in {}", dir.display());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_rejects_unknown_options() {
    let out = catt().args(["fuzz", "--frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}
