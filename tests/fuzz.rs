//! End-to-end tests of the `catt-verify` translation-validation
//! subsystem: the regression corpus replays clean, fuzzing is
//! deterministic, legal-mode campaigns find nothing, and the
//! legality-unchecked mode rediscovers and shrinks the historical
//! divergent-barrier miscompile.

use catt_repro::verify::{corpus, oracle, run_fuzz, FuzzOptions, Recipe, ViolationKind};
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn regression_corpus_replays_clean() {
    let entries = corpus::read_dir_sorted(&corpus_dir()).unwrap();
    assert!(
        !entries.is_empty(),
        "tests/corpus must contain at least the seeded divergent-barrier entry"
    );
    for (path, entry) in &entries {
        let variants = corpus::replay(entry).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            variants > 0,
            "{}: replay exercised no variants",
            path.display()
        );
    }
}

#[test]
fn seeded_entry_is_still_a_live_counterexample_for_the_blind_transform() {
    let entries = corpus::read_dir_sorted(&corpus_dir()).unwrap();
    let (_, entry) = entries
        .iter()
        .find(|(p, _)| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains("divergent-barrier"))
        })
        .expect("seeded divergent-barrier entry missing");
    assert_eq!(
        entry.recipe,
        Some(Recipe::WarpThrottle { loop_id: 0, n: 2 }),
        "recorded recipe changed"
    );
    assert!(entry.note.contains("barrier divergence"), "{}", entry.note);

    // The original is clean...
    let (base, _) = oracle::run_case(&entry.case.kernel, &entry.case);
    assert_eq!(base, "ok");
    // ...the legality prover rejects the loop (so the legal oracle never
    // builds this variant; that is what `replay` checks)...
    let recipes = oracle::variant_recipes(&entry.case.kernel, &entry.case, true);
    assert!(
        !recipes.contains(entry.recipe.as_ref().unwrap()),
        "legality prover admitted the divergent loop again: {recipes:?}"
    );
    // ...but applying the recorded recipe blindly still trips the
    // sanitizer: the entry documents a real, still-detectable hazard.
    let warps = entry.case.launch.warps_per_block();
    let grid = (
        entry.case.launch.grid.x,
        entry.case.launch.grid.y,
        entry.case.launch.grid.z,
    );
    let bad = oracle::apply_recipe(
        &entry.case.kernel,
        entry.recipe.as_ref().unwrap(),
        warps,
        grid,
    )
    .expect("blind application must succeed");
    let (class, _) = oracle::run_case(&bad, &entry.case);
    assert_eq!(class, "sanitizer: barrier divergence");
}

#[test]
fn fuzz_report_is_deterministic() {
    let opts = FuzzOptions {
        seed: 9,
        iters: 15,
        shrink: false,
        legality_checked: true,
    };
    assert_eq!(run_fuzz(&opts).render(), run_fuzz(&opts).render());
}

#[test]
fn unchecked_fuzzing_rediscovers_and_shrinks_the_miscompile() {
    // Legal mode over these seeds: nothing.
    let legal = run_fuzz(&FuzzOptions {
        seed: 1,
        iters: 16,
        shrink: false,
        legality_checked: true,
    });
    assert!(
        legal.violations.is_empty(),
        "legal transforms regressed:\n{}",
        legal.render()
    );

    // Same seeds with the legality analysis disabled: the fuzzer must
    // find the divergent-barrier miscompile on its own and shrink it to
    // a handful of statements, independently classified by the
    // sanitizer as barrier divergence.
    let report = run_fuzz(&FuzzOptions {
        seed: 1,
        iters: 16,
        shrink: true,
        legality_checked: false,
    });
    let v = report
        .violations
        .iter()
        .find(|v| v.variant == "sanitizer: barrier divergence")
        .unwrap_or_else(|| panic!("miscompile not rediscovered:\n{}", report.render()));
    assert_eq!(v.kind, ViolationKind::Classification);
    assert_eq!(v.baseline, "ok");
    assert!(
        v.stmt_count <= 10,
        "shrinker left {} statements:\n{}",
        v.stmt_count,
        report.render()
    );
    assert!(
        matches!(
            v.recipe,
            Some(Recipe::WarpThrottle { .. })
                | Some(Recipe::Composed { .. })
                | Some(Recipe::SwizzledWarp { .. })
        ),
        "unexpected recipe: {:?}",
        v.recipe
    );
}
