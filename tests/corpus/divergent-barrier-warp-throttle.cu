// catt-fuzz counterexample (replayable regression corpus)
// seed: 0x0000000000000001
// grid: 1 1 1
// block: 64 1 1
// buffer: a 320
// buffer: out 64
// variant: warp_throttle loop=0 n=2
// violation: classification — original ok vs variant sanitizer: barrier divergence
//
// The historical legality gap: this loop sits under `i < 40`, which cuts
// *inside* a 64-thread block, so warp-level throttling spliced its
// `__syncthreads()` barriers into thread-divergent control flow — a
// deadlock on real hardware that the simulator's arrival-count barrier
// release silently masked. The block-uniformity prover now rejects the
// loop (it is absent from `eligible_loops_for`), and the simulator
// sanitizer independently reports the variant as barrier divergence.
// Replay asserts the legal-mode oracle finds nothing here anymore.
__global__ void divloop(float *a, float *out) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < 40) {
        for (int j = 0; j < 8; j++) {
            out[i] += a[i * 8 + j];
        }
    }
}
