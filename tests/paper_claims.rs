//! Integration tests pinning the paper's qualitative claims (the "shape"
//! DESIGN.md §4 commits to). These use the cheaper workloads so the suite
//! stays fast; the full evaluation lives in `catt-bench`.

use catt_repro::sim::GpuConfig;
use catt_repro::workloads::registry::{find, Group};
use catt_repro::workloads::{harness, run_baseline, run_catt};

/// §5.1: CATT speeds up cache-sensitive applications with uniform
/// contention (GSMV) on a small L1D.
#[test]
fn gsmv_speeds_up_at_32kb() {
    let w = find("GSMV").unwrap();
    let cfg = harness::eval_config_32kb_l1d();
    let base = run_baseline(&w, &cfg).expect("baseline runs");
    let (catt, app) = run_catt(&w, &cfg).expect("CATT runs");
    assert!(app.kernels[0].is_transformed());
    assert!(
        catt.cycles() < base.cycles(),
        "GSMV @32KB: CATT {} vs baseline {}",
        catt.cycles(),
        base.cycles()
    );
    assert!(
        catt.stats.l1_hit_rate() > base.stats.l1_hit_rate(),
        "hit rate must improve"
    );
}

/// §5.1: CS-vs-CI classification (paper §3): CS apps gain L1D hit rate
/// from a larger cache, CI apps do not.
#[test]
fn cache_sensitivity_classification_holds() {
    // A representative pair keeps this test quick; the registry-wide
    // check lives in the fig6/fig8 harnesses.
    for (abbrev, expect_sensitive) in [("GSMV", true), ("GEMM", false), ("MC", false)] {
        let w = find(abbrev).unwrap();
        let small = {
            let mut c = GpuConfig::titan_v_1sm();
            c.l1_cap_bytes = Some(32 * 1024);
            run_baseline(&w, &c)
                .expect("baseline runs")
                .stats
                .l1_hit_rate()
        };
        let large = run_baseline(&w, &harness::eval_config_max_l1d())
            .expect("baseline runs")
            .stats
            .l1_hit_rate();
        let gain = large - small;
        if expect_sensitive {
            assert!(
                gain > 0.10,
                "{abbrev} should be cache-sensitive: {small:.3} -> {large:.3}"
            );
        } else {
            assert!(
                gain < 0.10,
                "{abbrev} should be cache-insensitive: {small:.3} -> {large:.3}"
            );
        }
    }
}

/// §5.1: CORR's contention is unresolvable by TLP reduction; CATT leaves
/// it untouched and (by construction) matches the baseline exactly.
#[test]
fn corr_matches_baseline_exactly() {
    let w = find("CORR").unwrap();
    let cfg = harness::eval_config_max_l1d();
    let base = run_baseline(&w, &cfg).expect("baseline runs");
    let (catt, app) = run_catt(&w, &cfg).expect("CATT runs");
    assert!(app.kernels.iter().all(|k| !k.is_transformed()));
    assert_eq!(base.cycles(), catt.cycles());
}

/// §4.2: irregular workloads are treated conservatively — full TLP
/// preserved, zero overhead.
#[test]
fn irregular_apps_keep_original_tlp() {
    for abbrev in ["BFS", "BT"] {
        let w = find(abbrev).unwrap();
        let cfg = harness::eval_config_max_l1d();
        let base = run_baseline(&w, &cfg).expect("baseline runs");
        let (catt, app) = run_catt(&w, &cfg).expect("CATT runs");
        assert!(
            app.kernels.iter().all(|k| !k.is_transformed()),
            "{abbrev} must be untouched"
        );
        assert_eq!(base.cycles(), catt.cycles(), "{abbrev}");
    }
}

/// Fig. 8's invariant over the whole CI group, at the analysis level
/// (cheap — no simulation): CATT transforms nothing.
#[test]
fn ci_group_is_never_transformed() {
    use catt_repro::core::Pipeline;
    let pipe = Pipeline::new(harness::eval_config_max_l1d());
    for w in catt_repro::workloads::ci_workloads() {
        assert_eq!(w.group, Group::Ci);
        for (i, k) in w.kernels().iter().enumerate() {
            let ck = pipe.compile_kernel(k, w.launch(i)).unwrap();
            assert!(
                !ck.is_transformed(),
                "{}::{} transformed by CATT",
                w.abbrev,
                k.name
            );
        }
    }
}

/// §5.1.3: CATT's improvement is larger on the 32 KB L1D than on the
/// maximum L1D. Checked on ATAX; this is a *group-level* trend in the
/// paper (Fig. 10 vs Fig. 7), and GSMV, for example, inverts it here
/// because its 32 KB factor (1, 2) leaves too little latency hiding.
#[test]
fn gains_grow_as_l1d_shrinks() {
    let w = find("ATAX").unwrap();
    let speedup = |cfg: &GpuConfig| {
        let base = run_baseline(&w, cfg).expect("baseline runs");
        let (catt, _) = run_catt(&w, cfg).expect("CATT runs");
        base.cycles() as f64 / catt.cycles() as f64
    };
    let at_max = speedup(&harness::eval_config_max_l1d());
    let at_32k = speedup(&harness::eval_config_32kb_l1d());
    assert!(
        at_32k > at_max,
        "32 KB speedup {at_32k:.3} must exceed max-L1D speedup {at_max:.3}"
    );
}
