//! Cross-crate integration tests: the full
//! `parse → analyze → transform → emit → simulate → validate` pipeline.

use catt_repro::core::Pipeline;
use catt_repro::frontend::{parse_kernel, parse_module};
use catt_repro::ir::{printer, LaunchConfig};
use catt_repro::sim::{Arg, GlobalMem, Gpu, GpuConfig};

/// The paper's complete running example: Fig. 1 in, Fig. 4-shaped code
/// out, and the throttled kernel computes the same result faster on a
/// 32 KB L1D.
#[test]
fn paper_running_example_end_to_end() {
    let n = 1024usize;
    let src = format!(
        "#define NX {n}
         #define NY 256
         __global__ void atax_kernel1(float *A, float *x, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < NX) {{
                 for (int j = 0; j < NY; j++) {{
                     tmp[i] += A[i * NY + j] * x[j];
                 }}
             }}
         }}"
    );
    let launch = LaunchConfig::d1((n / 256) as u32, 256);
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);

    let app = Pipeline::new(config.clone())
        .compile_source(&src, &[("atax_kernel1", launch)])
        .unwrap();
    let ck = &app.kernels[0];
    assert!(ck.is_transformed());
    // Fig. 4 shape: guarded loop copies separated by barriers.
    assert!(ck.emitted_source.contains("threadIdx.x / 32 >="));
    assert!(ck.emitted_source.contains("__syncthreads();"));
    // The emitted source re-parses to the same kernel.
    assert_eq!(parse_kernel(&ck.emitted_source).unwrap(), ck.transformed);

    let run = |k| {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(&vec![0.5; n * 256]);
        let x = mem.alloc_f32(&vec![2.0; 256]);
        let tmp = mem.alloc_zeroed(n as u32);
        let mut gpu = Gpu::new(config.clone());
        let stats = gpu
            .launch(
                k,
                launch,
                &[Arg::Buf(a), Arg::Buf(x), Arg::Buf(tmp)],
                &mut mem,
            )
            .unwrap();
        let out = mem.read_f32(tmp);
        assert!(out.iter().all(|&v| v == 256.0), "functional mismatch");
        stats
    };
    let base = run(&ck.original);
    let catt = run(&ck.transformed);
    assert!(
        catt.cycles < base.cycles,
        "throttling must win on a thrashing 32 KB L1D: {} vs {}",
        catt.cycles,
        base.cycles
    );
    assert!(
        catt.l1_hit_rate() > base.l1_hit_rate() + 0.2,
        "hit rate must rise substantially: {:.3} vs {:.3}",
        catt.l1_hit_rate(),
        base.l1_hit_rate()
    );
}

/// Transformation preserves semantics across a grid of kernels, factors,
/// and both transforms (the compiler's core correctness obligation).
#[test]
fn transforms_preserve_semantics_across_factor_grid() {
    let n = 256usize;
    let src = format!(
        "#define N {n}
         __global__ void k(float *A, float *x, float *out) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 float acc = 0.0f;
                 for (int j = 0; j < N; j++) {{
                     acc += A[i * N + j] * x[j];
                 }}
                 out[i] = acc;
             }}
         }}"
    );
    let kernel = parse_kernel(&src).unwrap();
    let launch = LaunchConfig::d1(1, 256);
    let config = GpuConfig::titan_v_1sm();
    let run = |k: &catt_repro::ir::Kernel| {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(
            &(0..n * n)
                .map(|v| (v % 17) as f32 * 0.25)
                .collect::<Vec<_>>(),
        );
        let x = mem.alloc_f32(&(0..n).map(|v| (v % 5) as f32).collect::<Vec<_>>());
        let out = mem.alloc_zeroed(n as u32);
        let mut gpu = Gpu::new(config.clone());
        gpu.launch(
            k,
            launch,
            &[Arg::Buf(a), Arg::Buf(x), Arg::Buf(out)],
            &mut mem,
        )
        .unwrap();
        mem.read_f32(out)
    };
    let reference = run(&kernel);
    for nfac in [2u32, 4, 8] {
        let t = catt_repro::core::warp_throttle(&kernel, 0, nfac, 8).unwrap();
        assert_eq!(run(&t), reference, "warp factor {nfac}");
    }
    for target in [1u32, 2, 4] {
        let t = catt_repro::core::tb_throttle(&kernel, target, 96 * 1024, 0).unwrap();
        assert_eq!(run(&t), reference, "tb target {target}");
    }
    // Combined.
    let t = catt_repro::core::warp_throttle(&kernel, 0, 2, 8).unwrap();
    let t = catt_repro::core::tb_throttle(&t, 2, 96 * 1024, 0).unwrap();
    assert_eq!(run(&t), reference, "combined");
}

/// A multi-kernel module compiles with independent per-kernel plans.
#[test]
fn multi_kernel_module_compiles_with_mixed_decisions() {
    let src = "
        #define N 1024
        __global__ void divergent(float *A, float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < N) {
                for (int j = 0; j < 64; j++) {
                    out[i] += A[i * 64 + j];
                }
            }
        }
        __global__ void coalesced(float *A, float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < N) {
                for (int j = 0; j < 64; j++) {
                    out[i] += A[j * N + i];
                }
            }
        }";
    let launch = LaunchConfig::d1(4, 256);
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);
    let app = Pipeline::new(config)
        .compile_source(src, &[("divergent", launch), ("coalesced", launch)])
        .unwrap();
    assert!(app.kernels[0].is_transformed());
    assert!(!app.kernels[1].is_transformed());
}

/// Printer → parser round trip on every registered workload source.
#[test]
fn all_workload_sources_round_trip() {
    for w in catt_repro::workloads::all_workloads() {
        let m = parse_module(w.source).unwrap();
        let printed = printer::module_to_string(&m);
        let m2 = parse_module(&printed)
            .unwrap_or_else(|e| panic!("{}: reprint does not parse: {e}", w.abbrev));
        assert_eq!(m.kernels, m2.kernels, "{}", w.abbrev);
    }
}

/// The register estimate that feeds Eq. 2 stays in a plausible band for
/// every workload kernel (a runaway estimate would silently wreck every
/// occupancy computation).
#[test]
fn register_estimates_are_plausible() {
    for w in catt_repro::workloads::all_workloads() {
        for k in w.kernels() {
            let p = catt_repro::sim::lower(&k).unwrap();
            assert!(
                (13..=64).contains(&p.num_regs),
                "{}::{}: {} registers",
                w.abbrev,
                k.name,
                p.num_regs
            );
        }
    }
}
