//! # catt-repro — Compiler-Assisted GPU Thread Throttling (ICPP 2019)
//!
//! A full Rust reproduction of *"Compiler-Assisted GPU Thread Throttling
//! for Reduced Cache Contention"* (Kim, Hong, Lee, Seo, Han — ICPP 2019):
//! the CATT compiler, the GPU simulator it is evaluated on, the
//! Polybench/Rodinia workload suite, and the BFTT baseline.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`ir`] — the kernel IR (`catt-ir`);
//! * [`frontend`] — the CUDA-C subset parser (`catt-frontend`);
//! * [`sim`] — the cycle-level GPU simulator (`catt-sim`);
//! * [`core`] — the CATT analysis + transformation pipeline and the BFTT
//!   baseline (`catt-core`);
//! * [`workloads`] — the paper's 24 benchmark applications plus the DM
//!   swizzle extension (`catt-workloads`);
//! * [`profile`] — consumers of the simulator's profiling subsystem:
//!   Chrome traces, stall reports, Eq. 8 model validation
//!   (`catt-profile`; see `catt profile --help`);
//! * [`verify`] — translation validation: differential kernel fuzzing of
//!   the transforms, counterexample shrinking, and the replayable
//!   regression corpus (`catt-verify`; see `catt fuzz`);
//! * [`serve`] — the overload-safe multi-tenant compile-and-simulate
//!   daemon and its chaos-driven load harness (`catt-serve`; see
//!   `catt serve` / `catt serve-bench`);
//! * [`tune`] — the feedback-driven autotuner hill-climbing the joint
//!   `(N, M, CTA-swizzle)` space from observed profile counters
//!   (`catt-tune`; see `catt tune`).
//!
//! ## Quickstart
//!
//! ```
//! use catt_repro::core::Pipeline;
//! use catt_repro::ir::LaunchConfig;
//! use catt_repro::sim::GpuConfig;
//!
//! let src = "
//!     #define N 40960
//!     __global__ void atax1(float *A, float *x, float *tmp) {
//!         int i = blockIdx.x * blockDim.x + threadIdx.x;
//!         if (i < N) {
//!             for (int j = 0; j < N; j++) {
//!                 tmp[i] += A[i * N + j] * x[j];
//!             }
//!         }
//!     }";
//! let pipe = Pipeline::new(GpuConfig::titan_v());
//! let app = pipe
//!     .compile_source(src, &[("atax1", LaunchConfig::d1(320, 256))])
//!     .unwrap();
//! let k = &app.kernels[0];
//! assert!(k.is_transformed(), "the divergent loop gets throttled");
//! println!("{}", k.emitted_source);
//! ```
//!
//! See `examples/` for end-to-end scenarios (compile → simulate →
//! compare against baseline and BFTT) and `crates/bench` for the binaries
//! regenerating every table and figure of the paper.

pub use catt_core as core;
pub use catt_diag as diag;
pub use catt_frontend as frontend;
pub use catt_ir as ir;
pub use catt_profile as profile;
pub use catt_serve as serve;
pub use catt_sim as sim;
pub use catt_tune as tune;
pub use catt_verify as verify;
pub use catt_workloads as workloads;
