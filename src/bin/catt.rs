//! `catt` — the command-line front end of the compiler.
//!
//! ```text
//! catt compile kernels.cu --launch atax_kernel1=320x256 [--l1 32] [-o out.cu]
//! catt analyze kernels.cu --launch atax_kernel1=320x256 [--l1 32]
//! catt run     kernels.cu --launch k=4x256 --args f:1024,f:1024 [--l1 32] [--fuel <cycles>] [--sm-parallel on|off]
//! catt profile <ABBREV|all> [--l1 <KB>] [--trace-out <trace.json>]
//! catt tune    <ABBREV|all> [--l1 <KB>] [--seed <S>] [--iters <N>] [--out <tune.json>]
//! catt fuzz    [--seed <S>] [--iters <N>] [--shrink] [--unchecked] [--corpus <dir>] [--frontend]
//! ```
//!
//! * `analyze` prints the per-loop footprint analysis and throttling
//!   decisions (a Table 3 row for your kernel);
//! * `compile` additionally emits the throttled CUDA source;
//! * `run` lowers the kernel, allocates float/int buffers per `--args`
//!   (`f:<len>` / `i:<len>`, filled deterministically; `sf:<v>`/`si:<v>`
//!   for scalars), executes baseline and throttled variants on the
//!   simulator, and reports the speedup;
//! * `profile` runs a registry workload (by Table 2 abbreviation, or
//!   `all`) with the profiling sink armed and prints the nvprof-style
//!   stall breakdown, the per-set L1D heat map, and the Eq. 8
//!   predicted-vs-observed table; `--trace-out` additionally writes a
//!   Chrome `trace_event` JSON (open in `chrome://tracing`). Profile
//!   invariants and profile/stats reconciliation are re-checked on every
//!   run; any violation exits non-zero;
//! * `tune` runs the feedback-driven autotuner on a registry workload (or
//!   `all`): an APEX-style increase/decrease-cap climb over the joint
//!   `(N, M, CTA-swizzle)` space steered by observed profile counters,
//!   compared against baseline, static CATT, and BFTT. `--out` writes the
//!   machine-readable summary (`BENCH_tune.json` is the committed
//!   artifact). Tuner self-checks run on every report; any violation
//!   exits non-zero. Same seed ⇒ identical trajectory;
//! * `fuzz` runs the `catt-verify` differential transform oracle:
//!   deterministic random kernels, every reachable throttle variant,
//!   bit-exact memory + `SimError`-classification comparison under the
//!   simulator sanitizer. `--corpus <dir>` first replays every recorded
//!   counterexample (they must all stay fixed), then persists any new
//!   findings there; `--shrink` minimizes findings first; `--unchecked`
//!   disables the legality analysis to exercise the oracle itself.
//!   Exits non-zero on any violation or failed replay. Same seed ⇒
//!   byte-identical report. `--frontend` runs the mutational
//!   lexer/parser campaign instead (byte flips, truncation, token
//!   splices over the registry workload sources; default 300 iters):
//!   no panics, every rejection carries an error diagnostic, every
//!   span in bounds.
//!
//! Launch syntax: `<kernel>=<grid>x<block>` (1-D) or
//! `<kernel>=<gx>,<gy>x<bx>,<by>` (2-D). Repeat `--launch` per kernel.

use catt_repro::core::{Engine, Pipeline};
use catt_repro::ir::{Dim3, LaunchConfig};
use catt_repro::sim::{Arg, GlobalMem, Gpu, GpuConfig};
use std::process::ExitCode;

/// Render diagnostics per `CATT_DIAG_FORMAT`: `human` (default) produces
/// caret listings against the source; `json` emits one object per line
/// for tooling.
fn render_diags(diags: &[catt_repro::diag::Diagnostic], src: &str, file: &str) -> String {
    let mut out = match std::env::var("CATT_DIAG_FORMAT").as_deref() {
        Ok("json") => catt_repro::diag::render_json(diags),
        _ => catt_repro::diag::render_human_all(diags, src, file),
    };
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    out
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: catt <compile|analyze|run> <file.cu> --launch <kernel>=<grid>x<block> \
         [--launch ...] [--l1 <KB>] [--fuel <cycles>] [--sm-parallel <on|off>] \
         [--args <spec,...>] [-o <out.cu>]\n\
         \x20      catt profile <ABBREV|all> [--l1 <KB>] [--trace-out <trace.json>]\n\
         \x20      catt tune <ABBREV|all> [--l1 <KB>] [--seed <S>] [--iters <N>] [--out <tune.json>]\n\
         \x20      catt fuzz [--seed <S>] [--iters <N>] [--shrink] [--unchecked] [--corpus <dir>] [--frontend]\n\
         \x20      catt serve [--stdio | --tcp <addr>]\n\
         \x20      catt serve-bench [--clients N] [--requests N] [--transport inproc|tcp] [...]"
    );
    ExitCode::from(2)
}

/// `catt fuzz`: replay the regression corpus, then run a differential
/// fuzzing campaign, persisting any new counterexamples.
fn fuzz_main(args: &[String]) -> ExitCode {
    use catt_repro::verify::{corpus, run_fuzz, FuzzOptions};
    use std::path::Path;

    let mut opts = FuzzOptions {
        seed: 1,
        iters: 100,
        shrink: false,
        legality_checked: true,
    };
    let mut corpus_dir: Option<String> = None;
    let mut frontend = false;
    let mut iters_set = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                let Ok(s) = args[i + 1].parse() else {
                    eprintln!("catt fuzz: bad --seed value `{}`", args[i + 1]);
                    return usage();
                };
                opts.seed = s;
                i += 2;
            }
            "--iters" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else {
                    eprintln!("catt fuzz: bad --iters value `{}`", args[i + 1]);
                    return usage();
                };
                opts.iters = n;
                iters_set = true;
                i += 2;
            }
            "--shrink" => {
                opts.shrink = true;
                i += 1;
            }
            "--unchecked" => {
                opts.legality_checked = false;
                i += 1;
            }
            "--frontend" => {
                frontend = true;
                i += 1;
            }
            "--corpus" if i + 1 < args.len() => {
                corpus_dir = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("catt fuzz: unknown option `{other}`");
                return usage();
            }
        }
    }

    if frontend {
        // Mutational lexer/parser campaign over the registry workload
        // sources: no panics, every rejection diagnosed, spans in bounds.
        use catt_repro::verify::{run_frontend_fuzz, FrontFuzzOptions};
        use catt_repro::workloads::registry;
        let seeds: Vec<String> = registry::all_workloads()
            .iter()
            .map(|w| w.source.to_string())
            .collect();
        let fopts = FrontFuzzOptions {
            seed: opts.seed,
            iters: if iters_set { opts.iters } else { 300 },
        };
        let report = run_frontend_fuzz(&seeds, &fopts);
        print!("{}", report.render());
        return if report.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut failed = false;

    // Replay pass: every recorded counterexample must stay fixed.
    if let Some(dir) = &corpus_dir {
        let dir = Path::new(dir);
        if dir.is_dir() {
            match corpus::read_dir_sorted(dir) {
                Ok(entries) => {
                    for (path, entry) in &entries {
                        let name = path
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_else(|| path.display().to_string());
                        match corpus::replay(entry) {
                            Ok(variants) => {
                                println!("corpus replay: {name} clean ({variants} variants)")
                            }
                            Err(e) => {
                                eprintln!("corpus replay: {name} REGRESSED: {e}");
                                failed = true;
                            }
                        }
                    }
                    println!("corpus replay: {} entr(y/ies) checked", entries.len());
                }
                Err(e) => {
                    eprintln!("catt fuzz: cannot read corpus: {e}");
                    failed = true;
                }
            }
        }
    }

    let report = run_fuzz(&opts);
    print!("{}", report.render());

    if !report.violations.is_empty() {
        failed = true;
        if let Some(dir) = &corpus_dir {
            for v in &report.violations {
                match corpus::write_entry(Path::new(dir), v) {
                    Ok(p) => eprintln!("catt fuzz: new counterexample written to {}", p.display()),
                    Err(e) => eprintln!("catt fuzz: cannot persist counterexample: {e}"),
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `catt profile`: run registry workloads with the in-simulator tracer
/// armed and print the consumer reports.
fn profile_main(args: &[String]) -> ExitCode {
    use catt_repro::profile::{check_against_stats, chrome, json, model, report};
    use catt_repro::workloads::{harness, registry};

    let target = &args[0];
    let mut l1_kb: Option<u32> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--l1" if i + 1 < args.len() => {
                l1_kb = args[i + 1].parse().ok();
                i += 2;
            }
            "--trace-out" if i + 1 < args.len() => {
                trace_out = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("catt profile: unknown option `{other}`");
                return usage();
            }
        }
    }
    let workloads = if target.eq_ignore_ascii_case("all") {
        registry::all_workloads()
    } else {
        match registry::find(target) {
            Some(w) => vec![w],
            None => {
                eprintln!(
                    "catt profile: no workload `{target}` (try a Table 2 abbreviation or `all`)"
                );
                return ExitCode::from(2);
            }
        }
    };
    let mut config = harness::eval_config_max_l1d();
    if let Some(kb) = l1_kb {
        config.l1_cap_bytes = Some(kb * 1024);
    }

    // How many launches get a full per-launch report (iterative apps can
    // run dozens; the trace file always contains every launch).
    const MAX_REPORTED: usize = 4;
    let single = workloads.len() == 1;
    let mut failed = false;
    for w in &workloads {
        println!("==== {} ({}) ====", w.abbrev, w.name);
        let (out, profiles) = match harness::run_profiled(w, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("catt profile {}: {e}", w.abbrev);
                failed = true;
                continue;
            }
        };
        for p in profiles.iter().take(MAX_REPORTED) {
            print!("{}", report::stall_report(p));
            print!("{}", report::heat_map(p));
        }
        if profiles.len() > MAX_REPORTED {
            println!(
                "  (... {} more launches; all are in the trace file)",
                profiles.len() - MAX_REPORTED
            );
        }
        println!("  Eq. 8 model validation (static prediction vs profiled observation):");
        print!(
            "{}",
            model::render(&model::model_rows(w, &config, &profiles))
        );

        // Self-check: accounting invariants and profile/stats agreement.
        if let Err(e) = check_against_stats(&profiles, &out.stats) {
            eprintln!("catt profile {}: INVARIANT VIOLATION: {e}", w.abbrev);
            failed = true;
        }

        if let Some(path) = &trace_out {
            let file = if single {
                path.clone()
            } else {
                format!("{path}.{}", w.abbrev)
            };
            let trace = chrome::chrome_trace(&profiles);
            if let Err(e) = json::validate(&trace) {
                eprintln!(
                    "catt profile {}: emitted trace is not valid JSON: {e}",
                    w.abbrev
                );
                failed = true;
            }
            if let Err(e) = std::fs::write(&file, &trace) {
                eprintln!("catt profile {}: cannot write {file}: {e}", w.abbrev);
                failed = true;
            } else {
                println!("  wrote {file}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `catt tune`: the feedback-driven `(N, M, swizzle)` autotuner.
/// Environment knobs `CATT_TUNE_SEED`, `CATT_TUNE_ITERS`,
/// `CATT_TUNE_STALL_THRESHOLD`, and `CATT_TUNE_L2_GAIN` set the defaults;
/// explicit flags win.
fn tune_main(args: &[String]) -> ExitCode {
    use catt_repro::tune::{tune_workloads, TuneOptions};
    use catt_repro::workloads::{harness, registry};

    let target = &args[0];
    let mut opts = TuneOptions::default();
    if let Some(s) = std::env::var("CATT_TUNE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        opts.seed = s;
    }
    if let Some(n) = std::env::var("CATT_TUNE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        opts.max_iters = n;
    }
    if let Some(t) = std::env::var("CATT_TUNE_STALL_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        opts.mem_stall_threshold = t;
    }
    if let Some(g) = std::env::var("CATT_TUNE_L2_GAIN")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        opts.min_l2_gain = g;
    }
    let mut l1_kb: Option<u32> = None;
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--l1" if i + 1 < args.len() => {
                l1_kb = args[i + 1].parse().ok();
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                let Ok(s) = args[i + 1].parse() else {
                    eprintln!("catt tune: bad --seed value `{}`", args[i + 1]);
                    return usage();
                };
                opts.seed = s;
                i += 2;
            }
            "--iters" if i + 1 < args.len() => {
                let Ok(n) = args[i + 1].parse() else {
                    eprintln!("catt tune: bad --iters value `{}`", args[i + 1]);
                    return usage();
                };
                opts.max_iters = n;
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("catt tune: unknown option `{other}`");
                return usage();
            }
        }
    }
    let workloads = if target.eq_ignore_ascii_case("all") {
        registry::all_workloads()
    } else {
        let mut found = Vec::new();
        for abbrev in target.split(',') {
            match registry::find(abbrev) {
                Some(w) => found.push(w),
                None => {
                    eprintln!(
                        "catt tune: no workload `{abbrev}` (try a Table 2 abbreviation, \
                         a comma-separated list, or `all`)"
                    );
                    return ExitCode::from(2);
                }
            }
        }
        found
    };
    let mut config = harness::eval_config_max_l1d();
    if let Some(kb) = l1_kb {
        config.l1_cap_bytes = Some(kb * 1024);
    }

    let summary = tune_workloads(&workloads, &config, &opts);
    print!("{}", summary.render_table());

    let mut failed = !summary.failures.is_empty();
    for r in &summary.reports {
        if let Err(e) = r.self_check(&opts) {
            eprintln!("catt tune: SELF-CHECK VIOLATION: {e}");
            failed = true;
        }
    }
    if let Some(path) = out_path {
        let json = summary.to_json(&opts);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("catt tune: cannot write {path}: {e}");
            failed = true;
        } else {
            println!("wrote {path}");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_dims(s: &str) -> Option<Dim3> {
    let parts: Vec<&str> = s.split(',').collect();
    match parts.len() {
        1 => Some(Dim3::x(parts[0].parse().ok()?)),
        2 => Some(Dim3::xy(parts[0].parse().ok()?, parts[1].parse().ok()?)),
        _ => None,
    }
}

fn parse_launch(spec: &str) -> Option<(String, LaunchConfig)> {
    let (name, dims) = spec.split_once('=')?;
    let (grid, block) = dims.split_once('x')?;
    Some((
        name.to_string(),
        LaunchConfig {
            grid: parse_dims(grid)?,
            block: parse_dims(block)?,
        },
    ))
}

/// `catt serve`: the multi-tenant compile-and-simulate daemon. NDJSON
/// over stdio by default, or a TCP listener with `--tcp <addr>`. Tuning
/// comes from the CATT_SERVE_* environment knobs (see EXPERIMENTS.md);
/// the simcache mode from CATT_SIMCACHE (a directory enables the
/// multi-writer-safe persistent cache).
fn serve_main(args: &[String]) -> ExitCode {
    use catt_repro::serve::front::{serve_stdio, serve_tcp};
    use catt_repro::serve::{engine_from_env, ServeConfig, Server};
    use std::sync::Arc;

    let mut tcp_addr: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stdio" => i += 1,
            "--tcp" if i + 1 < args.len() => {
                tcp_addr = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("catt serve: unknown option `{other}`");
                return usage();
            }
        }
    }
    let server = Arc::new(Server::new(ServeConfig::from_env(), engine_from_env()));
    match tcp_addr {
        Some(addr) => {
            if let Err(e) = serve_tcp(server, &addr) {
                eprintln!("catt serve: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => serve_stdio(server),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `fuzz`, `serve`, and `serve-bench` have defaults for every flag,
    // so they may appear bare.
    match argv.first().map(String::as_str) {
        Some("fuzz") => return fuzz_main(&argv[1..]),
        Some("serve") => return serve_main(&argv[1..]),
        Some("serve-bench") => {
            return ExitCode::from(catt_repro::serve::bench::bench_main(&argv[1..]))
        }
        _ => {}
    }
    if argv.len() < 2 {
        return usage();
    }
    let mode = argv[0].as_str();
    if mode == "profile" {
        return profile_main(&argv[1..]);
    }
    if mode == "tune" {
        return tune_main(&argv[1..]);
    }
    let path = &argv[1];
    let mut launches: Vec<(String, LaunchConfig)> = Vec::new();
    let mut l1_kb: Option<u32> = None;
    let mut fuel: Option<u64> = None;
    let mut sm_parallel: Option<bool> = None;
    let mut out_path: Option<String> = None;
    let mut arg_spec: Option<String> = None;
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--launch" if i + 1 < argv.len() => {
                let Some(l) = parse_launch(&argv[i + 1]) else {
                    eprintln!("catt: bad --launch spec `{}`", argv[i + 1]);
                    return usage();
                };
                launches.push(l);
                i += 2;
            }
            "--l1" if i + 1 < argv.len() => {
                l1_kb = argv[i + 1].parse().ok();
                i += 2;
            }
            "--fuel" if i + 1 < argv.len() => {
                fuel = argv[i + 1].parse().ok();
                i += 2;
            }
            "--sm-parallel" if i + 1 < argv.len() => {
                sm_parallel = match argv[i + 1].as_str() {
                    "on" => Some(true),
                    "off" => Some(false),
                    other => {
                        eprintln!("catt: bad --sm-parallel value `{other}` (want on|off)");
                        return usage();
                    }
                };
                i += 2;
            }
            "--args" if i + 1 < argv.len() => {
                arg_spec = Some(argv[i + 1].clone());
                i += 2;
            }
            "-o" if i + 1 < argv.len() => {
                out_path = Some(argv[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("catt: unknown option `{other}`");
                return usage();
            }
        }
    }
    if launches.is_empty() {
        eprintln!("catt: at least one --launch is required");
        return usage();
    }

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("catt: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = GpuConfig::titan_v_1sm();
    if let Some(kb) = l1_kb {
        config.l1_cap_bytes = Some(kb * 1024);
    }
    if let Some(n) = fuel {
        config.sim_fuel = Some(n);
    }
    // Explicit flag wins over CATT_SIM_SM_PARALLEL (results are
    // bit-identical either way; this is a throughput knob).
    if sm_parallel.is_some() {
        config.sm_parallel = sm_parallel;
    }
    let pipe = Pipeline::new(config.clone());
    let refs: Vec<(&str, LaunchConfig)> = launches.iter().map(|(n, l)| (n.as_str(), *l)).collect();
    let app = match pipe.compile_source(&src, &refs) {
        Ok(a) => a,
        Err(e) => {
            eprint!("{}", render_diags(&e.diagnostics, &src, path));
            eprintln!("catt: {e}");
            return ExitCode::FAILURE;
        }
    };

    for ck in &app.kernels {
        let a = &ck.analysis;
        println!(
            "kernel `{}`: baseline TLP {:?}, L1D {} KB, smem carve-out {} KB, {} regs/thread",
            a.kernel_name,
            a.baseline_tlp(),
            a.plan.l1d_bytes / 1024,
            a.plan.smem_carveout_bytes / 1024,
            a.regs_per_thread,
        );
        for l in &a.loops {
            println!(
                "  loop {:>2}: {:>5} lines/round x TLP, contended={} resolved={} -> N={} M={} TLP {:?}",
                l.loop_id + 1,
                l.size_req_lines,
                l.contended,
                l.decision.resolved,
                l.decision.n,
                l.decision.m,
                l.tlp(a.warps_per_tb, a.plan.resident_tbs)
            );
        }
        if !ck.warnings.is_empty() {
            eprint!("{}", render_diags(&ck.warnings, &src, path));
        }
        if let Some(fb) = &ck.fallback_diagnostic {
            eprint!("{}", render_diags(std::slice::from_ref(fb), &src, path));
            eprintln!(
                "kernel `{}`: transform fell back to the original source ({})",
                a.kernel_name,
                fb.code.as_str()
            );
        }
    }

    match mode {
        "analyze" => ExitCode::SUCCESS,
        "compile" => {
            let emitted: String = app
                .kernels
                .iter()
                .map(|k| k.emitted_source.clone())
                .collect::<Vec<_>>()
                .join("\n");
            match out_path {
                Some(p) => {
                    if let Err(e) = std::fs::write(&p, emitted) {
                        eprintln!("catt: cannot write {p}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {p}");
                }
                None => println!("\n{emitted}"),
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(spec) = arg_spec else {
                eprintln!("catt run: --args is required (e.g. --args f:1024,f:64,si:64)");
                return ExitCode::from(2);
            };
            // Simulations are memoized in the persistent cache under
            // results/.simcache/ (CATT_SIMCACHE=off forces cold runs); the
            // --args spec is part of the cache scope (input identity).
            let engine = Engine::init_global_persistent();
            for (ki, ck) in app.kernels.iter().enumerate() {
                let exec = |kernel: &catt_repro::ir::Kernel| {
                    let mut mem = GlobalMem::new();
                    let mut args = Vec::new();
                    for (ai, part) in spec.split(',').enumerate() {
                        let Some((ty, val)) = part.split_once(':') else {
                            return Err(format!("bad arg spec `{part}`"));
                        };
                        let arg = match ty {
                            "f" => {
                                let len: u32 =
                                    val.parse().map_err(|_| format!("bad length `{val}`"))?;
                                let data: Vec<f32> = (0..len)
                                    .map(|v| ((v * 7 + ai as u32) % 13) as f32)
                                    .collect();
                                Arg::Buf(mem.alloc_f32(&data))
                            }
                            "i" => {
                                let len: u32 =
                                    val.parse().map_err(|_| format!("bad length `{val}`"))?;
                                let data: Vec<i32> =
                                    (0..len as i32).map(|v| (v * 5 + ai as i32) % 17).collect();
                                Arg::Buf(mem.alloc_i32(&data))
                            }
                            "sf" => Arg::F32(val.parse().map_err(|_| format!("bad f32 `{val}`"))?),
                            "si" => Arg::I32(val.parse().map_err(|_| format!("bad i32 `{val}`"))?),
                            other => return Err(format!("unknown arg type `{other}`")),
                        };
                        args.push(arg);
                    }
                    let mut gpu = Gpu::new(config.clone());
                    gpu.launch(kernel, ck.launch, &args, &mut mem)
                        .map_err(|e| e.to_string())
                };
                let exec = |kernel: &catt_repro::ir::Kernel| {
                    engine
                        .sim_app(
                            &format!("catt-run:{spec}"),
                            std::slice::from_ref(kernel),
                            &[ck.launch],
                            &config,
                            || exec(kernel).unwrap_or_else(|e| panic!("{e}")),
                        )
                        .map_err(|e| e.message)
                };
                let base = match exec(&ck.original) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("catt run `{}`: {e}", ck.original.name);
                        return ExitCode::FAILURE;
                    }
                };
                let catt = exec(&ck.transformed).expect("transformed variant");
                println!(
                    "kernel {} `{}`: baseline {} cycles ({:.1}% L1D hits) | CATT {} cycles ({:.1}% hits) | speedup {:.2}x",
                    ki + 1,
                    ck.original.name,
                    base.cycles,
                    100.0 * base.l1_hit_rate(),
                    catt.cycles,
                    100.0 * catt.l1_hit_rate(),
                    base.cycles as f64 / catt.cycles as f64,
                );
            }
            engine.print_summary();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
