//! # catt-tune — feedback-driven throttling autotuner
//!
//! The static CATT pipeline predicts a throttling setting from compile-time
//! footprint analysis (paper §4); BFTT finds the best *fixed* setting by
//! exhaustively simulating every `(N, M)` point. This crate closes the loop
//! between the two: an APEX-style policy engine (increase-cap /
//! decrease-cap, moving half the remaining range per step) hill-climbs the
//! joint `(N, M, CTA-swizzle)` space, steered by counters observed on the
//! simulator's profiling sink — the memory-stall fraction decides whether
//! throttling is worth exploring at all, and the shared-L2 hit rate gates
//! the CTA-swizzle candidates.
//!
//! The tuner never trusts a prediction it did not measure: every candidate
//! — including the static CATT compilation, which seeds the search — is
//! simulated through the process-wide engine cache (validated runs), and
//! the winner is the measured argmin. The tuned result is therefore never
//! worse than baseline *or* static CATT by construction, while visiting
//! `O(log |ladder|)` points instead of BFTT's full sweep.
//!
//! Termination bound (DESIGN.md §3h): every iteration either halves the
//! distance to one end of the throttle ladder or shrinks the active
//! interval, so a climb from one start point takes at most
//! `2·⌈log₂ L⌉ + 2` measurements for a ladder of length `L`; with the
//! two seeded restarts and the hard `max_iters` cap the search is bounded
//! whatever the cycle landscape looks like.

use catt_core::bftt::candidate_grid;
use catt_core::pipeline::apply_uniform;
use catt_core::{cta_swizzle, SwizzlePolicy};
use catt_ir::Kernel;
use catt_prng::Rng;
use catt_sim::profile::StallReason;
use catt_sim::{max_resident_tbs, GpuConfig, LaunchProfile};
use catt_workloads::harness::{self, EvalError};
use catt_workloads::registry::Workload;
use std::collections::BTreeMap;

/// Tuner knobs. Every field has an `CATT_TUNE_*` environment override in
/// the CLI (see EXPERIMENTS.md); defaults reproduce the committed
/// `BENCH_tune.json`.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// PRNG seed for the second climb restart (the first always starts at
    /// the untouched-TLP end). Same seed ⇒ identical trajectory.
    pub seed: u64,
    /// Hard cap on climb iterations across restarts.
    pub max_iters: u32,
    /// Minimum memory-stall fraction (stalled issue slots waiting on the
    /// L1D port or outstanding loads, over all offered slots) before the
    /// throttle ladder is climbed at all. Below it the kernel is not
    /// memory-bound and throttling cannot pay.
    pub mem_stall_threshold: f64,
    /// Minimum absolute L2 hit-rate gain a CTA-swizzle candidate must
    /// measure before it may be selected (the gate that attributes a
    /// swizzle win to improved L2 locality rather than noise).
    pub min_l2_gain: f64,
}

impl Default for TuneOptions {
    fn default() -> TuneOptions {
        TuneOptions {
            seed: 0x7E57_CA77,
            max_iters: 32,
            mem_stall_threshold: 0.25,
            min_l2_gain: 0.02,
        }
    }
}

/// Counters observed on the baseline profiling run that steer the search.
#[derive(Debug, Clone, Copy)]
pub struct Observed {
    /// Issue slots stalled on memory over all offered issue slots.
    pub mem_stall_frac: f64,
    /// Aggregate L1D load hit rate.
    pub l1_hit_rate: f64,
    /// Aggregate shared-L2 load hit rate (0 with the L2 disabled).
    pub l2_hit_rate: f64,
}

/// Reduce per-launch, per-SM profiles to the steering counters.
pub fn observe(profiles: &[LaunchProfile]) -> Observed {
    let mut slots = 0u64;
    let mut mem = 0u64;
    let mut l1_acc = 0u64;
    let mut l1_hit = 0u64;
    let mut l2_acc = 0u64;
    let mut l2_hit = 0u64;
    for p in profiles {
        for sm in &p.sms {
            slots += sm.issue_slots();
            mem += sm.stall_cycles[StallReason::Memory as usize];
            for set in &sm.sets {
                l1_acc += set.accesses;
                l1_hit += set.hits;
            }
            l2_acc += sm.l2_accesses;
            l2_hit += sm.l2_hits;
        }
    }
    let frac = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    Observed {
        mem_stall_frac: frac(mem, slots),
        l1_hit_rate: frac(l1_hit, l1_acc),
        l2_hit_rate: frac(l2_hit, l2_acc),
    }
}

/// One measured point of the search, for the report trail.
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Candidate description (e.g. `n=4 m=0`, `catt`, `tile=4`).
    pub what: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Measured but barred from selection: a CTA-swizzle candidate whose
    /// L2 hit-rate gain did not clear [`TuneOptions::min_l2_gain`]. Its
    /// cycle win (if any) is an artifact of the single-SM in-order block
    /// schedule, not of the L2 locality mechanism the tuner optimizes, so
    /// the tuner refuses it even when it is the fastest point measured.
    pub gated: bool,
}

/// The winning configuration.
#[derive(Debug, Clone)]
pub struct TunedChoice {
    /// Warp-throttle divisor (1 = untouched).
    pub n: u32,
    /// TB reduction (0 = untouched).
    pub m: u32,
    /// Selected CTA-swizzle policy, if its measured L2 hit-rate gain
    /// cleared [`TuneOptions::min_l2_gain`] and it won on cycles.
    pub swizzle: Option<SwizzlePolicy>,
    /// Whether the static CATT compilation (per-loop settings, not on the
    /// uniform ladder) is the winner; `n`/`m` are 1/0 in that case.
    pub from_static_catt: bool,
    /// Measured cycles of the winner.
    pub cycles: u64,
    /// Measured L2 hit rate of the winner.
    pub l2_hit_rate: f64,
}

impl TunedChoice {
    /// Short human-readable form (report column).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.from_static_catt {
            parts.push("catt".to_string());
        } else if self.n != 1 || self.m != 0 {
            parts.push(format!("n={} m={}", self.n, self.m));
        }
        if let Some(p) = self.swizzle {
            parts.push(p.describe());
        }
        if parts.is_empty() {
            parts.push("baseline".to_string());
        }
        parts.join(" + ")
    }
}

/// Everything the tuner learned about one workload.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Workload abbreviation.
    pub abbrev: &'static str,
    /// Baseline (untransformed) cycles.
    pub baseline_cycles: u64,
    /// Baseline L2 hit rate.
    pub baseline_l2_hit_rate: f64,
    /// Static CATT cycles (`None` if compilation failed).
    pub catt_cycles: Option<u64>,
    /// BFTT best-fixed cycles (`None` if the sweep failed).
    pub bftt_cycles: Option<u64>,
    /// The tuner's winner.
    pub tuned: TunedChoice,
    /// Counters observed on the baseline profile.
    pub observed: Observed,
    /// Climb iterations spent.
    pub iterations: u32,
    /// Distinct candidates measured (cache-deduplicated sim runs).
    pub evaluations: u32,
    /// Every measured point, in measurement order.
    pub trace: Vec<TracePoint>,
}

impl TuneReport {
    /// Speedup of the tuned configuration over baseline.
    pub fn tuned_speedup(&self) -> f64 {
        self.baseline_cycles as f64 / self.tuned.cycles as f64
    }

    /// Speedup of static CATT over baseline (1.0 if unavailable).
    pub fn catt_speedup(&self) -> f64 {
        match self.catt_cycles {
            Some(c) => self.baseline_cycles as f64 / c as f64,
            None => 1.0,
        }
    }

    /// Speedup of BFTT over baseline (1.0 if unavailable).
    pub fn bftt_speedup(&self) -> f64 {
        match self.bftt_cycles {
            Some(c) => self.baseline_cycles as f64 / c as f64,
            None => 1.0,
        }
    }

    /// Internal consistency: the tuner must never return a configuration
    /// worse than anything it measured, and the search must respect its
    /// bounds. `catt tune` re-checks this on every run and exits non-zero
    /// on violation.
    pub fn self_check(&self, opts: &TuneOptions) -> Result<(), String> {
        if self.tuned.cycles > self.baseline_cycles {
            return Err(format!(
                "{}: tuned ({}) slower than measured baseline ({})",
                self.abbrev, self.tuned.cycles, self.baseline_cycles
            ));
        }
        if let Some(c) = self.catt_cycles {
            if self.tuned.cycles > c {
                return Err(format!(
                    "{}: tuned ({}) slower than measured static CATT ({})",
                    self.abbrev, self.tuned.cycles, c
                ));
            }
        }
        if self.iterations > opts.max_iters {
            return Err(format!(
                "{}: {} iterations exceed the cap {}",
                self.abbrev, self.iterations, opts.max_iters
            ));
        }
        let selectable = self.trace.iter().filter(|t| !t.gated);
        if let Some(min) = selectable.map(|t| t.cycles).min() {
            if self.tuned.cycles > min {
                return Err(format!(
                    "{}: tuned ({}) is not the argmin of the selectable trace ({min})",
                    self.abbrev, self.tuned.cycles
                ));
            }
        }
        if self.tuned.swizzle.is_some()
            && self.tuned.l2_hit_rate < self.baseline_l2_hit_rate + opts.min_l2_gain
        {
            return Err(format!(
                "{}: swizzle selected without the required L2 hit-rate gain \
                 ({:.4} vs baseline {:.4})",
                self.abbrev, self.tuned.l2_hit_rate, self.baseline_l2_hit_rate
            ));
        }
        Ok(())
    }
}

/// Swizzle `kernel` for `launch`-grid `grid` if the policy applies, else
/// keep it unchanged (multi-kernel apps swizzle the kernels they can).
fn swizzle_or_keep(kernel: &Kernel, policy: SwizzlePolicy, grid: (u32, u32, u32)) -> Kernel {
    cta_swizzle(kernel, policy, grid).unwrap_or_else(|| kernel.clone())
}

/// Tune one workload on `config`. Every candidate is a validated cached
/// simulation; failures of non-baseline candidates are skipped like
/// BFTT's faulted sweep points.
pub fn tune_workload(
    w: &Workload,
    config: &GpuConfig,
    opts: &TuneOptions,
) -> Result<TuneReport, EvalError> {
    let kernels = w.kernels();
    let launch = w.block_launch();
    let warps_per_tb = launch.warps_per_block();
    let resident_tbs = kernels
        .iter()
        .map(|k| {
            let regs = catt_sim::lower(k).map(|p| p.num_regs as u32).unwrap_or(32);
            max_resident_tbs(
                config,
                k.shared_mem_bytes(),
                regs,
                launch.threads_per_block(),
            )
            .resident_tbs()
        })
        .min()
        .unwrap_or(1)
        .max(1);
    let ladder = candidate_grid(warps_per_tb, resident_tbs);

    // Observe the baseline: one profiled run for the steering counters
    // (bypasses the sim cache), one cached run for the reference cycles.
    let (_, profiles) = harness::run_profiled(w, config)?;
    let observed = observe(&profiles);
    let base = harness::run_baseline(w, config)?;
    let baseline_cycles = base.cycles();
    let baseline_l2 = base.stats.l2_hit_rate();

    let mut trace = vec![TracePoint {
        what: "baseline".to_string(),
        cycles: baseline_cycles,
        gated: false,
    }];
    let mut evaluations = 1u32;

    // Measure one uniform ladder point, memoized per index ((1,0) is the
    // baseline already measured). Faulted candidates measure as u64::MAX
    // so the climb backs away from them.
    let mut measured: BTreeMap<usize, u64> = BTreeMap::new();
    measured.insert(0, baseline_cycles);
    let grids: Vec<(u32, u32, u32)> = (0..kernels.len())
        .map(|i| {
            let g = w.launch(i).grid;
            (g.x, g.y, g.z)
        })
        .collect();
    let mut measure = |idx: usize, trace: &mut Vec<TracePoint>, evaluations: &mut u32| -> u64 {
        if let Some(&c) = measured.get(&idx) {
            return c;
        }
        let (n, m) = ladder[idx];
        let transformed: Vec<Kernel> = kernels
            .iter()
            .map(|k| {
                apply_uniform(
                    k,
                    n,
                    m,
                    warps_per_tb,
                    resident_tbs,
                    config.smem_carveout_bytes,
                )
            })
            .collect();
        let cycles = match harness::run_cached(w, &transformed, config, true) {
            Ok(out) => out.cycles(),
            Err(_) => u64::MAX,
        };
        *evaluations += 1;
        trace.push(TracePoint {
            what: format!("n={n} m={m}"),
            cycles,
            gated: false,
        });
        measured.insert(idx, cycles);
        cycles
    };

    // APEX-style climb: the cap is a ladder index (0 = untouched TLP,
    // len-1 = maximum throttling); each move covers half the remaining
    // distance toward the chosen end, reversing on regression. Skipped
    // entirely when the baseline is not memory-bound — the counters say
    // throttling cannot pay, so the tuner spends nothing finding that out.
    let mut iterations = 0u32;
    if observed.mem_stall_frac >= opts.mem_stall_threshold && ladder.len() > 1 {
        let mut rng = Rng::seed(opts.seed);
        let restarts = [0usize, rng.range_usize(0, ladder.len() - 1)];
        for &start in &restarts {
            let mut lo = 0usize;
            let mut hi = ladder.len() - 1;
            let mut cap = start;
            let mut best_here = measure(cap, &mut trace, &mut evaluations);
            let mut throttling = true;
            while iterations < opts.max_iters && lo < hi {
                iterations += 1;
                let next = if throttling {
                    cap + (hi - cap).div_ceil(2)
                } else {
                    cap - (cap - lo).div_ceil(2)
                };
                if next == cap {
                    break;
                }
                let c = measure(next, &mut trace, &mut evaluations);
                if c < best_here {
                    if throttling {
                        lo = cap;
                    } else {
                        hi = cap;
                    }
                    cap = next;
                    best_here = c;
                } else {
                    if throttling {
                        hi = next;
                    } else {
                        lo = next;
                    }
                    throttling = !throttling;
                }
            }
        }
    }
    let (&best_idx, &best_ladder_cycles) = measured
        .iter()
        .min_by_key(|&(_, &c)| c)
        .expect("baseline is always measured");
    let (mut best_n, mut best_m) = ladder[best_idx];
    let mut best_cycles = best_ladder_cycles;

    // Seed candidate: the static CATT compilation (per-loop settings, off
    // the uniform ladder). Measuring it makes `tuned <= static CATT` hold
    // by construction.
    let mut from_static_catt = false;
    let catt_cycles = match harness::run_catt(w, config) {
        Ok((out, _)) => {
            evaluations += 1;
            trace.push(TracePoint {
                what: "catt".to_string(),
                cycles: out.cycles(),
                gated: false,
            });
            if out.cycles() < best_cycles {
                best_cycles = out.cycles();
                (best_n, best_m) = (1, 0);
                from_static_catt = true;
            }
            Some(out.cycles())
        }
        Err(_) => None,
    };

    // CTA-swizzle pass: at the best throttle point, try every applicable
    // policy; a policy is selectable only if its *measured* L2 hit-rate
    // gain over baseline clears the gate and it wins on cycles.
    let mut best_swizzle: Option<(SwizzlePolicy, u64, f64)> = None;
    for policy in SwizzlePolicy::candidates() {
        let applicable = kernels
            .iter()
            .zip(&grids)
            .any(|(k, &g)| cta_swizzle(k, policy, g).is_some());
        if !applicable {
            continue;
        }
        let transformed: Vec<Kernel> = kernels
            .iter()
            .zip(&grids)
            .map(|(k, &g)| {
                let s = swizzle_or_keep(k, policy, g);
                if from_static_catt || (best_n == 1 && best_m == 0) {
                    s
                } else {
                    apply_uniform(
                        &s,
                        best_n,
                        best_m,
                        warps_per_tb,
                        resident_tbs,
                        config.smem_carveout_bytes,
                    )
                }
            })
            .collect();
        let Ok(out) = harness::run_cached(w, &transformed, config, true) else {
            continue;
        };
        evaluations += 1;
        let l2 = out.stats.l2_hit_rate();
        // No measured locality gain ⇒ any cycle win is not attributable to
        // the swizzle; record the point but bar it from selection.
        let gated = l2 < baseline_l2 + opts.min_l2_gain;
        trace.push(TracePoint {
            what: policy.describe(),
            cycles: out.cycles(),
            gated,
        });
        if gated {
            continue;
        }
        if out.cycles() < best_cycles && best_swizzle.is_none_or(|(_, c, _)| out.cycles() < c) {
            best_swizzle = Some((policy, out.cycles(), l2));
        }
    }

    let tuned = match best_swizzle {
        Some((policy, cycles, l2)) => TunedChoice {
            n: if from_static_catt { 1 } else { best_n },
            m: if from_static_catt { 0 } else { best_m },
            swizzle: Some(policy),
            // A swizzle win replaces the static-CATT seed (the swizzled
            // variant was measured against it and won).
            from_static_catt: false,
            cycles,
            l2_hit_rate: l2,
        },
        None => {
            // Re-derive the winner's L2 hit rate from its cached run.
            let l2 = if from_static_catt {
                harness::run_catt(w, config)
                    .map(|(out, _)| out.stats.l2_hit_rate())
                    .unwrap_or(baseline_l2)
            } else if best_n == 1 && best_m == 0 {
                baseline_l2
            } else {
                let transformed: Vec<Kernel> = kernels
                    .iter()
                    .map(|k| {
                        apply_uniform(
                            k,
                            best_n,
                            best_m,
                            warps_per_tb,
                            resident_tbs,
                            config.smem_carveout_bytes,
                        )
                    })
                    .collect();
                harness::run_cached(w, &transformed, config, true)
                    .map(|out| out.stats.l2_hit_rate())
                    .unwrap_or(baseline_l2)
            };
            TunedChoice {
                n: if from_static_catt { 1 } else { best_n },
                m: if from_static_catt { 0 } else { best_m },
                swizzle: None,
                from_static_catt,
                cycles: best_cycles,
                l2_hit_rate: l2,
            }
        }
    };

    // BFTT comparison column (cached like everything else; its sweep is
    // the exhaustive upper bound the tuner tries to approach at a
    // fraction of the evaluations).
    let bftt_cycles = harness::run_bftt(w, config)
        .ok()
        .map(|(out, _)| out.cycles());

    Ok(TuneReport {
        abbrev: w.abbrev,
        baseline_cycles,
        baseline_l2_hit_rate: baseline_l2,
        catt_cycles,
        bftt_cycles,
        tuned,
        observed,
        iterations,
        evaluations,
        trace,
    })
}

/// Reports for a set of workloads plus the aggregate geomeans.
#[derive(Debug, Clone, Default)]
pub struct TuneSummary {
    /// Per-workload reports, registry order.
    pub reports: Vec<TuneReport>,
    /// Workloads whose tuning failed outright, with the error text.
    pub failures: Vec<(String, String)>,
}

impl TuneSummary {
    /// Geomean tuned speedup over baseline.
    pub fn geomean_tuned(&self) -> f64 {
        harness::geomean(
            &self
                .reports
                .iter()
                .map(|r| r.tuned_speedup())
                .collect::<Vec<_>>(),
        )
        .unwrap_or(1.0)
    }

    /// Geomean static-CATT speedup over baseline.
    pub fn geomean_catt(&self) -> f64 {
        harness::geomean(
            &self
                .reports
                .iter()
                .map(|r| r.catt_speedup())
                .collect::<Vec<_>>(),
        )
        .unwrap_or(1.0)
    }

    /// Geomean BFTT speedup over baseline.
    pub fn geomean_bftt(&self) -> f64 {
        harness::geomean(
            &self
                .reports
                .iter()
                .map(|r| r.bftt_speedup())
                .collect::<Vec<_>>(),
        )
        .unwrap_or(1.0)
    }

    /// Render the comparison table (the `catt tune` output).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<6} {:>12} {:>8} {:>8} {:>8}  {:<16} {:>6} {:>6} {:>7}\n",
            "app", "base cyc", "catt", "bftt", "tuned", "tuned config", "iters", "evals", "dL2"
        ));
        for r in &self.reports {
            s.push_str(&format!(
                "{:<6} {:>12} {:>7.3}x {:>7.3}x {:>7.3}x  {:<16} {:>6} {:>6} {:>+7.3}\n",
                r.abbrev,
                r.baseline_cycles,
                r.catt_speedup(),
                r.bftt_speedup(),
                r.tuned_speedup(),
                r.tuned.describe(),
                r.iterations,
                r.evaluations,
                r.tuned.l2_hit_rate - r.baseline_l2_hit_rate,
            ));
        }
        s.push_str(&format!(
            "geomean: catt {:.4}x | bftt {:.4}x | tuned {:.4}x\n",
            self.geomean_catt(),
            self.geomean_bftt(),
            self.geomean_tuned()
        ));
        for (abbrev, err) in &self.failures {
            s.push_str(&format!("FAILED {abbrev}: {err}\n"));
        }
        s
    }

    /// Machine-readable summary (the committed `BENCH_tune.json`).
    pub fn to_json(&self, opts: &TuneOptions) -> String {
        let mut j = String::new();
        j.push_str("{\n");
        j.push_str(&format!(
            "  \"options\": {{ \"seed\": {}, \"max_iters\": {}, \
             \"mem_stall_threshold\": {:.3}, \"min_l2_gain\": {:.3} }},\n",
            opts.seed, opts.max_iters, opts.mem_stall_threshold, opts.min_l2_gain
        ));
        j.push_str(&format!(
            "  \"geomean_catt\": {:.4},\n  \"geomean_bftt\": {:.4},\n  \
             \"geomean_tuned\": {:.4},\n  \"apps\": [\n",
            self.geomean_catt(),
            self.geomean_bftt(),
            self.geomean_tuned()
        ));
        for (i, r) in self.reports.iter().enumerate() {
            let catt = r
                .catt_cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string());
            let bftt = r
                .bftt_cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "null".to_string());
            j.push_str(&format!(
                "    {{ \"app\": \"{}\", \"baseline_cycles\": {}, \"catt_cycles\": {}, \
                 \"bftt_cycles\": {}, \"tuned_cycles\": {}, \"tuned_config\": \"{}\", \
                 \"tuned_speedup\": {:.4}, \"catt_speedup\": {:.4}, \"bftt_speedup\": {:.4}, \
                 \"mem_stall_frac\": {:.4}, \"baseline_l2_hit_rate\": {:.4}, \
                 \"tuned_l2_hit_rate\": {:.4}, \"iterations\": {}, \"evaluations\": {} }}{}\n",
                r.abbrev,
                r.baseline_cycles,
                catt,
                bftt,
                r.tuned.cycles,
                r.tuned.describe(),
                r.tuned_speedup(),
                r.catt_speedup(),
                r.bftt_speedup(),
                r.observed.mem_stall_frac,
                r.baseline_l2_hit_rate,
                r.tuned.l2_hit_rate,
                r.iterations,
                r.evaluations,
                if i + 1 < self.reports.len() { "," } else { "" },
            ));
        }
        j.push_str("  ]\n}\n");
        j
    }
}

/// Tune every given workload; per-workload failures are collected, not
/// fatal (mirrors BFTT's graceful degradation).
pub fn tune_workloads(
    workloads: &[Workload],
    config: &GpuConfig,
    opts: &TuneOptions,
) -> TuneSummary {
    let mut summary = TuneSummary::default();
    for w in workloads {
        match tune_workload(w, config, opts) {
            Ok(r) => summary.reports.push(r),
            Err(e) => summary.failures.push((w.abbrev.to_string(), e.to_string())),
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_workloads::registry;

    fn opts() -> TuneOptions {
        TuneOptions::default()
    }

    #[test]
    fn observe_reduces_counters() {
        let w = registry::find("ATAX").unwrap();
        let cfg = harness::eval_config_max_l1d();
        let (_, profiles) = harness::run_profiled(&w, &cfg).unwrap();
        let o = observe(&profiles);
        assert!(o.mem_stall_frac > 0.0 && o.mem_stall_frac < 1.0);
        assert!(o.l1_hit_rate > 0.0 && o.l1_hit_rate <= 1.0);
    }

    /// On the swizzle-sensitive DM workload the tuner must pick a
    /// CTA-swizzle policy, gate it on a measured L2 hit-rate gain, and
    /// beat every pure-throttling alternative.
    #[test]
    fn dm_tunes_to_a_swizzle_win() {
        let w = registry::find("DM").unwrap();
        let cfg = harness::eval_config_max_l1d();
        let o = opts();
        let r = tune_workload(&w, &cfg, &o).unwrap();
        r.self_check(&o).unwrap();
        assert!(
            r.tuned.swizzle.is_some(),
            "DM must tune to a swizzle: {:?}",
            r.tuned
        );
        assert!(
            r.tuned.l2_hit_rate > r.baseline_l2_hit_rate + o.min_l2_gain,
            "swizzle selection must be backed by a measured L2 gain"
        );
        assert!(r.tuned_speedup() > 1.1, "speedup {:.3}", r.tuned_speedup());
        // Better than BFTT's best fixed throttle (throttling alone cannot
        // fix inter-block traffic).
        let bftt = r.bftt_cycles.expect("bftt sweep runs");
        assert!(r.tuned.cycles < bftt, "{} vs {bftt}", r.tuned.cycles);
    }

    /// A contended throttling-sensitive workload climbs the ladder and
    /// never ends slower than static CATT.
    #[test]
    fn atax_tunes_at_least_to_static_catt() {
        let w = registry::find("ATAX").unwrap();
        let cfg = harness::eval_config_max_l1d();
        let o = opts();
        let r = tune_workload(&w, &cfg, &o).unwrap();
        r.self_check(&o).unwrap();
        assert!(r.iterations <= o.max_iters);
        if let Some(c) = r.catt_cycles {
            assert!(r.tuned.cycles <= c);
        }
    }

    /// Same seed, same trajectory: the report renders identically.
    #[test]
    fn tuning_is_deterministic_under_a_fixed_seed() {
        let w = registry::find("DM").unwrap();
        let cfg = harness::eval_config_max_l1d();
        let o = opts();
        let a = tune_workload(&w, &cfg, &o).unwrap();
        let b = tune_workload(&w, &cfg, &o).unwrap();
        let render = |r: &TuneReport| {
            format!(
                "{} {} {:?} {} {}",
                r.baseline_cycles, r.tuned.cycles, r.tuned.swizzle, r.iterations, r.evaluations
            )
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(
            a.trace
                .iter()
                .map(|t| (&t.what, t.cycles))
                .collect::<Vec<_>>(),
            b.trace
                .iter()
                .map(|t| (&t.what, t.cycles))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn summary_json_is_well_formed() {
        let w = registry::find("DM").unwrap();
        let cfg = harness::eval_config_max_l1d();
        let o = opts();
        let summary = tune_workloads(&[w], &cfg, &o);
        assert_eq!(summary.failures.len(), 0);
        let json = summary.to_json(&o);
        assert!(json.contains("\"app\": \"DM\""));
        assert!(json.contains("\"geomean_tuned\""));
        // Balanced braces/brackets — the cheap structural check the
        // profile crate's JSON validator formalizes.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = summary.render_table();
        assert!(table.contains("DM"));
        assert!(table.contains("geomean"));
    }
}
