//! Recursive-descent parser producing `catt-ir`.
//!
//! The parser *recovers* from errors instead of stopping at the first
//! one: a failed statement synchronizes at the next `;` (or before the
//! enclosing `}`), a failed top-level item synchronizes at the next
//! `__global__` / `#define`, and everything reported lands in one
//! [`catt_diag::Diagnostic`] list with byte spans into the source.
//! [`parse_module_recover`] exposes the full outcome (partial module +
//! all diagnostics); [`parse_module`] / [`parse_kernel`] keep the
//! strict all-or-nothing surface the rest of the workspace uses.
//!
//! While parsing a kernel the parser also fills
//! [`catt_ir::KernelSpans`]: the kernel-name span, one span per
//! `for`/`while` in the same blind pre-order numbering `catt_core`
//! uses for `loop_id`, and one span per `__syncthreads()` — this is
//! what lets legality diagnostics point at the offending loop.

use crate::lexer::{Lexer, Token, TokenKind};
use catt_diag::{codes, Diagnostic, Severity, Span};
use catt_ir::expr::{BinOp, Builtin, Expr, Intrinsic, UnOp};
use catt_ir::kernel::{Kernel, KernelSpans, Module, Param, ParamTy};
use catt_ir::stmt::{LValue, Stmt};
use catt_ir::types::DType;
use std::collections::HashMap;
use std::fmt;

/// Stop reporting after this many error diagnostics: past a certain
/// point the parser is lost and further reports are noise. Shared with
/// the lexer so a pathological input cannot allocate one diagnostic
/// per byte.
pub(crate) const MAX_ERRORS: usize = 25;

/// Result of a recovering parse: a (possibly partial) module plus every
/// diagnostic collected along the way, in emission order, located
/// (line/col filled in) against the source.
#[derive(Debug, Clone)]
pub struct ParseOutcome {
    /// Kernels and defines that parsed; statements a recovery skipped
    /// are simply absent. Only trust this for further compilation when
    /// [`ParseOutcome::is_clean`].
    pub module: Module,
    pub diagnostics: Vec<Diagnostic>,
}

impl ParseOutcome {
    /// `true` iff no error-severity diagnostic was emitted.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Parse error: every diagnostic from the recovering parse, plus the
/// first error's position/message as plain fields for callers that
/// just want one line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub diagnostics: Vec<Diagnostic>,
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl ParseError {
    fn from_diags(diagnostics: Vec<Diagnostic>) -> ParseError {
        let first = diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .cloned()
            .unwrap_or_else(|| Diagnostic::error(codes::UNEXPECTED_TOKEN, "parse failed"));
        ParseError {
            message: first.message,
            line: first.line,
            col: first.col,
            diagnostics,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a translation unit (defines + kernels), reporting *every*
/// error found, not just the first.
pub fn parse_module_recover(src: &str) -> ParseOutcome {
    let (tokens, lex_diags) = Lexer::tokenize_recover(src);
    let mut p = Parser::new(tokens);
    p.diags = lex_diags;
    let module = p.module_recover();
    let mut diagnostics = p.diags;
    catt_diag::locate(&mut diagnostics, src);
    ParseOutcome {
        module,
        diagnostics,
    }
}

/// Parse a translation unit (defines + kernels). Strict: any error
/// fails the whole parse (but the error still carries every diagnostic
/// the recovering parser found).
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let outcome = parse_module_recover(src);
    if outcome.is_clean() {
        Ok(outcome.module)
    } else {
        Err(ParseError::from_diags(outcome.diagnostics))
    }
}

/// Parse a module and return its single / first kernel.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let m = parse_module(src)?;
    m.kernels.into_iter().next().ok_or_else(|| {
        ParseError::from_diags(vec![Diagnostic::error(
            codes::KERNEL_NOT_FOUND,
            "no kernel found in source",
        )
        .at(1, 1)])
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// End offset of the most recently consumed token (for loop spans).
    prev_end: u32,
    defines: HashMap<String, i64>,
    define_order: Vec<(String, i64)>,
    diags: Vec<Diagnostic>,
    /// Per-kernel span recording (reset at each kernel header), in the
    /// blind pre-order `catt_core` uses for `loop_id`.
    loop_spans: Vec<Span>,
    barrier_spans: Vec<Span>,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            prev_end: 0,
            defines: HashMap::new(),
            define_order: Vec::new(),
            diags: Vec::new(),
            loop_spans: Vec::new(),
            barrier_spans: Vec::new(),
        }
    }

    fn cur(&self) -> &Token {
        // The token stream always ends with `Eof`; an empty stream
        // cannot come out of the lexer, but fall back defensively.
        &self.tokens[self.pos.min(self.tokens.len().saturating_sub(1))]
    }

    fn kind(&self) -> &TokenKind {
        &self.cur().kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.kind(), TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.cur().clone();
        self.prev_end = t.span.end;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        self.err_code(codes::UNEXPECTED_TOKEN, msg)
    }

    fn err_code<T>(&self, code: catt_diag::Code, msg: impl Into<String>) -> PResult<T> {
        let t = self.cur();
        Err(Diagnostic::error(code, msg)
            .with_span(t.span)
            .at(t.line, t.col))
    }

    fn push_diag(&mut self, d: Diagnostic) {
        if self.diags.len() < MAX_ERRORS {
            self.diags.push(d);
        }
    }

    fn error_budget_spent(&self) -> bool {
        self.diags.len() >= MAX_ERRORS
    }

    // ----- recovery ----------------------------------------------------

    /// Statement-level synchronization: consume through the next `;` at
    /// brace depth 0, or stop before the enclosing `}` / end of input.
    /// Guarantees progress relative to `before`.
    fn sync_stmt(&mut self, before: usize) {
        let mut depth = 0usize;
        loop {
            match self.kind() {
                TokenKind::Eof => break,
                TokenKind::Punct(";") if depth == 0 => {
                    self.bump();
                    break;
                }
                TokenKind::Punct("{") => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct("}") => {
                    if depth == 0 {
                        break; // the enclosing block consumes it
                    }
                    depth -= 1;
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
        if self.pos == before && !self.at_eof() && !self.at_punct("}") {
            self.bump();
        }
    }

    /// Top-level synchronization: skip to the next `__global__`,
    /// `#define`, or end of input, consuming at least one token.
    fn sync_top_level(&mut self) {
        if !self.at_eof() {
            self.bump();
        }
        loop {
            match self.kind() {
                TokenKind::Eof => break,
                TokenKind::HashDefine => break,
                TokenKind::Ident(s) if s == "__global__" => break,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Swallow the rest of the current block, including its closing
    /// `}` (used once the error budget is spent).
    fn skip_balanced_to_close(&mut self) {
        let mut depth = 1usize;
        loop {
            match self.kind() {
                TokenKind::Eof => return,
                TokenKind::Punct("{") => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct("}") => {
                    self.bump();
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.kind(), TokenKind::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.kind()))
        }
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(self.kind(), TokenKind::Ident(i) if i == s)
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    // ----- types -------------------------------------------------------

    /// If the current tokens start a type, consume and return it.
    fn try_type(&mut self) -> Option<DType> {
        // Skip qualifiers.
        loop {
            if self.at_ident("const") || self.at_ident("volatile") || self.at_ident("__restrict__")
            {
                self.bump();
            } else {
                break;
            }
        }
        if self.at_ident("unsigned") {
            self.bump();
            // optional `int`
            self.eat_ident("int");
            return Some(DType::U32);
        }
        for (name, ty) in [
            ("int", DType::I32),
            ("float", DType::F32),
            ("bool", DType::Bool),
            ("size_t", DType::U32),
            ("long", DType::I32),
        ] {
            if self.at_ident(name) {
                self.bump();
                if name == "long" {
                    self.eat_ident("int");
                }
                return Some(ty);
            }
        }
        None
    }

    fn is_type_start(&self) -> bool {
        matches!(self.kind(), TokenKind::Ident(s) if matches!(
            s.as_str(),
            "int" | "float" | "unsigned" | "bool" | "const" | "size_t" | "long"
        ))
    }

    // ----- module ------------------------------------------------------

    fn module_recover(&mut self) -> Module {
        let mut kernels = Vec::new();
        loop {
            if self.error_budget_spent() {
                break;
            }
            match self.kind().clone() {
                TokenKind::Eof => break,
                TokenKind::HashDefine => {
                    if let Err(d) = self.define() {
                        self.push_diag(d);
                        self.sync_top_level();
                    }
                }
                TokenKind::Ident(s) if s == "__global__" => match self.kernel() {
                    Ok(k) => kernels.push(k),
                    Err(d) => {
                        self.push_diag(d);
                        self.sync_top_level();
                    }
                },
                TokenKind::Ident(s) if s == "extern" => {
                    // `extern "C"` — not in the subset.
                    let d = self
                        .err_code::<()>(
                            codes::UNSUPPORTED,
                            "`extern` declarations are not supported",
                        )
                        .unwrap_err();
                    self.push_diag(d);
                    self.sync_top_level();
                }
                other => {
                    let d = self
                        .err_code::<()>(
                            codes::UNEXPECTED_TOKEN,
                            format!("expected `__global__` or `#define`, found {other}"),
                        )
                        .unwrap_err();
                    self.push_diag(d);
                    self.sync_top_level();
                }
            }
        }
        Module {
            defines: self.define_order.clone(),
            kernels,
        }
    }

    fn define(&mut self) -> PResult<()> {
        self.bump(); // `#define`
        let name = self.expect_ident()?;
        let val_expr = self.expr()?;
        let Some(v) = val_expr.const_int() else {
            return self.err_code(
                codes::BAD_DEFINE,
                format!("#define {name}: value must be an integer constant"),
            );
        };
        self.defines.insert(name.clone(), v);
        self.define_order.push((name, v));
        Ok(())
    }

    fn kernel(&mut self) -> PResult<Kernel> {
        let diags_before = self.diags.len();
        self.loop_spans.clear();
        self.barrier_spans.clear();
        if !self.eat_ident("__global__") {
            return self.err("expected `__global__`");
        }
        if !self.eat_ident("void") {
            return self.err("kernels must return `void`");
        }
        let name_span = self.cur().span;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.at_punct(")") {
            loop {
                let Some(ty) = self.try_type() else {
                    return self.err("expected parameter type");
                };
                let is_ptr = self.eat_punct("*");
                // Skip post-* qualifiers (`__restrict__`, `const`).
                while self.at_ident("__restrict__") || self.at_ident("const") {
                    self.bump();
                }
                let pname = self.expect_ident()?;
                params.push(Param {
                    name: pname,
                    ty: if is_ptr {
                        ParamTy::Ptr(ty)
                    } else {
                        ParamTy::Scalar(ty)
                    },
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let body = self.block_body()?;
        let mut kernel = Kernel::new(name, params, body);
        let mut spans = KernelSpans {
            name: name_span,
            loops: std::mem::take(&mut self.loop_spans),
            barriers: std::mem::take(&mut self.barrier_spans),
        };
        if self.diags.len() > diags_before {
            // Recovery dropped statements, so the recorded pre-order can
            // disagree with the surviving tree — keep only the name span.
            spans.loops.clear();
            spans.barriers.clear();
        }
        kernel.spans = spans;
        Ok(kernel)
    }

    // ----- statements --------------------------------------------------

    /// Parse statements until the matching `}` (which is consumed),
    /// recovering at statement boundaries so one block can report
    /// several errors.
    fn block_body(&mut self) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        loop {
            if self.eat_punct("}") {
                return Ok(out);
            }
            if self.at_eof() {
                return self.err("unexpected end of input inside block");
            }
            if self.error_budget_spent() {
                self.skip_balanced_to_close();
                return Ok(out);
            }
            let before = self.pos;
            if let Err(d) = self.stmt_into(&mut out) {
                if self.at_eof() {
                    // Propagate: let one "unexpected end of input" speak
                    // for the whole unterminated nest.
                    return Err(d);
                }
                self.push_diag(d);
                self.sync_stmt(before);
            }
        }
    }

    /// A single statement or `{ ... }` block, as a statement list.
    fn stmt_or_block(&mut self) -> PResult<Vec<Stmt>> {
        if self.eat_punct("{") {
            self.block_body()
        } else {
            let mut v = Vec::new();
            self.stmt_into(&mut v)?;
            Ok(v)
        }
    }

    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        // Empty statement.
        if self.eat_punct(";") {
            return Ok(());
        }
        if self.at_ident("__shared__") {
            self.bump();
            let Some(elem) = self.try_type() else {
                return self.err_code(
                    codes::BAD_SHARED_DECL,
                    "expected element type after `__shared__`",
                );
            };
            let name = self.expect_ident()?;
            self.expect_punct("[")?;
            let len_span = self.cur().span;
            let len_expr = self.expr()?;
            let Some(len) = len_expr.const_int() else {
                return Err(Diagnostic::error(
                    codes::BAD_SHARED_DECL,
                    "__shared__ array length must be a constant",
                )
                .with_span(len_span));
            };
            if len <= 0 {
                return Err(Diagnostic::error(
                    codes::BAD_SHARED_DECL,
                    "__shared__ array length must be positive",
                )
                .with_span(len_span));
            }
            if len > u32::MAX as i64 {
                return Err(Diagnostic::error(
                    codes::BAD_SHARED_DECL,
                    format!("__shared__ array length {len} is too large"),
                )
                .with_span(len_span));
            }
            self.expect_punct("]")?;
            self.expect_punct(";")?;
            out.push(Stmt::DeclShared {
                name,
                elem,
                len: len as u32,
            });
            return Ok(());
        }
        if self.at_ident("__syncthreads") {
            let kw = self.cur().span;
            self.bump();
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            self.barrier_spans.push(Span::new(kw.start, self.prev_end));
            out.push(Stmt::SyncThreads);
            return Ok(());
        }
        if self.at_ident("if") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.stmt_or_block()?;
            let els = if self.eat_ident("else") {
                self.stmt_or_block()?
            } else {
                vec![]
            };
            out.push(Stmt::If { cond, then, els });
            return Ok(());
        }
        if self.at_ident("for") {
            out.push(self.for_stmt()?);
            return Ok(());
        }
        if self.at_ident("while") {
            let kw = self.cur().span;
            self.bump();
            let slot = self.loop_spans.len();
            self.loop_spans.push(kw);
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.stmt_or_block()?;
            self.loop_spans[slot] = Span::new(kw.start, self.prev_end.max(kw.end));
            out.push(Stmt::While { cond, body });
            return Ok(());
        }
        if self.at_ident("break") {
            self.bump();
            self.expect_punct(";")?;
            out.push(Stmt::Break);
            return Ok(());
        }
        if self.at_ident("return") {
            self.bump();
            self.expect_punct(";")?;
            out.push(Stmt::Return);
            return Ok(());
        }
        if self.is_type_start() {
            // Scalar declaration(s), possibly comma-separated.
            let Some(ty) = self.try_type() else {
                return self.err("expected type");
            };
            loop {
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                out.push(Stmt::DeclScalar { name, ty, init });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
            return Ok(());
        }
        // Assignment / increment.
        out.push(self.assign_stmt(true)?);
        Ok(())
    }

    /// Assignment, `x++`, `x--`; `with_semi` controls whether the trailing
    /// `;` is required (the `for`-update reuses this without it).
    fn assign_stmt(&mut self, with_semi: bool) -> PResult<Stmt> {
        // Prefix increment/decrement.
        if self.at_punct("++") || self.at_punct("--") {
            let delta = if self.at_punct("++") { 1 } else { -1 };
            self.bump();
            let name = self.expect_ident()?;
            if with_semi {
                self.expect_punct(";")?;
            }
            return Ok(Stmt::Assign {
                lhs: LValue::Var(name),
                op: Some(BinOp::Add),
                rhs: Expr::int(delta),
            });
        }
        let name = self.expect_ident()?;
        let lhs = if self.eat_punct("[") {
            let idx = self.expr()?;
            self.expect_punct("]")?;
            LValue::Elem(name, idx)
        } else {
            LValue::Var(name)
        };
        let stmt = if self.eat_punct("++") {
            Stmt::Assign {
                lhs,
                op: Some(BinOp::Add),
                rhs: Expr::int(1),
            }
        } else if self.eat_punct("--") {
            Stmt::Assign {
                lhs,
                op: Some(BinOp::Add),
                rhs: Expr::int(-1),
            }
        } else {
            let op = if self.eat_punct("=") {
                None
            } else if self.eat_punct("+=") {
                Some(BinOp::Add)
            } else if self.eat_punct("-=") {
                Some(BinOp::Sub)
            } else if self.eat_punct("*=") {
                Some(BinOp::Mul)
            } else if self.eat_punct("/=") {
                Some(BinOp::Div)
            } else if self.eat_punct("%=") {
                Some(BinOp::Rem)
            } else if self.eat_punct("&=") {
                Some(BinOp::BitAnd)
            } else if self.eat_punct("|=") {
                Some(BinOp::BitOr)
            } else if self.eat_punct("^=") {
                Some(BinOp::BitXor)
            } else {
                return self.err(format!(
                    "expected assignment operator, found {}",
                    self.kind()
                ));
            };
            let rhs = self.expr()?;
            Stmt::Assign { lhs, op, rhs }
        };
        if with_semi {
            self.expect_punct(";")?;
        }
        Ok(stmt)
    }

    /// Canonical `for` loop.
    fn for_stmt(&mut self) -> PResult<Stmt> {
        let kw = self.cur().span;
        self.bump(); // `for`
        let slot = self.loop_spans.len();
        self.loop_spans.push(kw);
        self.expect_punct("(")?;
        let decl = self.is_type_start();
        if decl {
            let Some(ty) = self.try_type() else {
                return self.err("expected type in for-init");
            };
            if ty != DType::I32 && ty != DType::U32 {
                return self.err_code(
                    codes::NON_CANONICAL_FOR,
                    "for-loop iterator must be an integer",
                );
            }
        }
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let init = self.expr()?;
        self.expect_punct(";")?;
        // Guard must compare the iterator.
        let guard_span = self.cur().span;
        let guard_var = self.expect_ident()?;
        if guard_var != var {
            return Err(Diagnostic::error(
                codes::NON_CANONICAL_FOR,
                format!(
                    "non-canonical for loop: guard tests `{guard_var}` but iterator is `{var}`"
                ),
            )
            .with_span(guard_span));
        }
        let cond_op = if self.eat_punct("<") {
            BinOp::Lt
        } else if self.eat_punct("<=") {
            BinOp::Le
        } else if self.eat_punct(">") {
            BinOp::Gt
        } else if self.eat_punct(">=") {
            BinOp::Ge
        } else if self.eat_punct("!=") {
            BinOp::Ne
        } else {
            return self.err_code(
                codes::NON_CANONICAL_FOR,
                "expected comparison operator in for guard",
            );
        };
        let bound = self.expr()?;
        self.expect_punct(";")?;
        // Update: var++, ++var, var--, var += e, var -= e, var = var + e.
        let step = self.for_update(&var)?;
        self.expect_punct(")")?;
        let body = self.stmt_or_block()?;
        self.loop_spans[slot] = Span::new(kw.start, self.prev_end.max(kw.end));
        Ok(Stmt::For {
            var,
            decl,
            init,
            cond_op,
            bound,
            step,
            body,
        })
    }

    fn for_update(&mut self, var: &str) -> PResult<Expr> {
        let upd = self.assign_stmt(false)?;
        match upd {
            Stmt::Assign {
                lhs: LValue::Var(n),
                op,
                rhs,
            } if n == var => match op {
                Some(BinOp::Add) => Ok(rhs),
                Some(BinOp::Sub) => Ok(Expr::Unary(UnOp::Neg, Box::new(rhs))),
                None => {
                    // var = var + c  or  var = var - c
                    match rhs {
                        Expr::Binary(BinOp::Add, a, b) if *a == Expr::var(var) => Ok(*b),
                        Expr::Binary(BinOp::Sub, a, b) if *a == Expr::var(var) => {
                            Ok(Expr::Unary(UnOp::Neg, b))
                        }
                        Expr::Binary(BinOp::Mul, _, _) | Expr::Binary(BinOp::Shl, _, _) => self
                            .err_code(
                                codes::NON_CANONICAL_FOR,
                                "multiplicative for-updates are not supported",
                            ),
                        _ => self.err_code(
                            codes::NON_CANONICAL_FOR,
                            "non-canonical for-update expression",
                        ),
                    }
                }
                _ => self.err_code(
                    codes::NON_CANONICAL_FOR,
                    "unsupported compound operator in for-update",
                ),
            },
            _ => self.err_code(
                codes::NON_CANONICAL_FOR,
                format!("for-update must assign the iterator `{var}`"),
            ),
        }
    }

    // ----- expressions --------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let c = self.binary(0)?;
        if self.eat_punct("?") {
            let a = self.expr()?;
            self.expect_punct(":")?;
            let b = self.ternary()?;
            Ok(Expr::Select(Box::new(c), Box::new(a), Box::new(b)))
        } else {
            Ok(c)
        }
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let TokenKind::Punct(p) = self.kind() else {
            return None;
        };
        let op = match *p {
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Rem,
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "<<" => BinOp::Shl,
            ">>" => BinOp::Shr,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "==" => BinOp::Eq,
            "!=" => BinOp::Ne,
            "&" => BinOp::BitAnd,
            "^" => BinOp::BitXor,
            "|" => BinOp::BitOr,
            "&&" => BinOp::And,
            "||" => BinOp::Or,
            _ => return None,
        };
        Some((op, op.precedence()))
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        // Cast: `(` type `)` unary — disambiguate from parenthesized expr.
        if self.at_punct("(") {
            let save = self.pos;
            self.bump();
            if let Some(ty) = self.try_type() {
                if self.eat_punct(")") {
                    let inner = self.unary()?;
                    return Ok(Expr::Cast(ty, Box::new(inner)));
                }
            }
            self.pos = save;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.at_punct("[") {
                let Expr::Var(name) = e else {
                    return self.err_code(codes::UNSUPPORTED, "only named arrays can be indexed");
                };
                self.bump();
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(name, Box::new(idx));
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                // Builtin member access.
                if matches!(
                    name.as_str(),
                    "threadIdx" | "blockIdx" | "blockDim" | "gridDim"
                ) {
                    self.expect_punct(".")?;
                    let member_span = self.cur().span;
                    let member = self.expect_ident()?;
                    let b = match (name.as_str(), member.as_str()) {
                        ("threadIdx", "x") => Builtin::ThreadIdxX,
                        ("threadIdx", "y") => Builtin::ThreadIdxY,
                        ("threadIdx", "z") => Builtin::ThreadIdxZ,
                        ("blockIdx", "x") => Builtin::BlockIdxX,
                        ("blockIdx", "y") => Builtin::BlockIdxY,
                        ("blockIdx", "z") => Builtin::BlockIdxZ,
                        ("blockDim", "x") => Builtin::BlockDimX,
                        ("blockDim", "y") => Builtin::BlockDimY,
                        ("blockDim", "z") => Builtin::BlockDimZ,
                        ("gridDim", "x") => Builtin::GridDimX,
                        ("gridDim", "y") => Builtin::GridDimY,
                        ("gridDim", "z") => Builtin::GridDimZ,
                        _ => {
                            return Err(Diagnostic::error(
                                codes::UNKNOWN_MEMBER,
                                format!("unknown member `.{member}`"),
                            )
                            .with_span(member_span))
                        }
                    };
                    return Ok(Expr::Builtin(b));
                }
                // Intrinsic call.
                if self.at_punct("(") {
                    let Some(intr) = Intrinsic::from_name(&name) else {
                        return self.err_code(
                            codes::UNKNOWN_FUNCTION,
                            format!("unknown function `{name}`"),
                        );
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    if args.len() != intr.arity() {
                        return self.err_code(
                            codes::BAD_INTRINSIC_ARITY,
                            format!(
                                "`{name}` expects {} argument(s), got {}",
                                intr.arity(),
                                args.len()
                            ),
                        );
                    }
                    return Ok(Expr::Call(intr, args));
                }
                // #define constant substitution.
                if let Some(v) = self.defines.get(&name) {
                    return Ok(Expr::Int(*v));
                }
                Ok(Expr::Var(name))
            }
            other => self.err_code(
                codes::EXPECTED_EXPRESSION,
                format!("expected expression, found {other}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_ir::printer;

    /// The paper's Fig. 1 kernel parses, with `#define` substitution.
    #[test]
    fn parses_atax_fig1() {
        let src = r#"
            #define NX 40960
            // L1 cache size: 32KB, shared memory size: 96KB
            __global__ void atax_kernel1(float *A, float *B, float *tmp) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < NX) {
                    for (int j = 0; j < NX; j++) {
                        tmp[i] += A[i * NX + j] * B[j];
                    }
                }
            }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.defines, vec![("NX".to_string(), 40960)]);
        let k = &m.kernels[0];
        assert_eq!(k.name, "atax_kernel1");
        assert_eq!(k.params.len(), 3);
        // NX was substituted.
        let printed = printer::kernel_to_string(k);
        assert!(printed.contains("i < 40960"));
        assert!(printed.contains("tmp[i] += A[i * 40960 + j] * B[j];"));
    }

    /// The paper's Fig. 4 warp-throttled kernel parses.
    #[test]
    fn parses_fig4_warp_throttled() {
        let src = r#"
            #define NX 40960
            #define WS 32
            __global__ void atax_kernel1(float *A, float *B, float *tmp) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < NX) {
                    if (threadIdx.x / WS >= 0 && threadIdx.x / WS < 4) {
                        for (int j = 0; j < NX; j++) {
                            tmp[i] += A[i * NX + j] * B[j];
                        }
                    }
                    __syncthreads();
                    if (threadIdx.x / WS >= 4 && threadIdx.x / WS < 8) {
                        for (int j = 0; j < NX; j++) {
                            tmp[i] += A[i * NX + j] * B[j];
                        }
                    }
                    __syncthreads();
                }
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let syncs = {
            let mut n = 0;
            catt_ir::visit::walk_stmts(&k.body, &mut |s| {
                if matches!(s, Stmt::SyncThreads) {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(syncs, 2);
        // The span side table saw both loops and both barriers.
        assert_eq!(k.spans.loops.len(), 2);
        assert_eq!(k.spans.barriers.len(), 2);
    }

    /// The paper's Fig. 5 TB-throttled kernel parses.
    #[test]
    fn parses_fig5_tb_throttled() {
        let src = r#"
            __global__ void atax_kernel1(float *A, float *B, float *tmp) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                __shared__ float dummy_shared[12288];
                dummy_shared[threadIdx.x] = 0.0f;
                if (i < 40960) {
                    for (int j = 0; j < 40960; j++) {
                        tmp[i] += A[i * 40960 + j] * B[j];
                    }
                }
            }
        "#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.shared_mem_bytes(), 48 * 1024);
        assert!(k.is_shared_array("dummy_shared"));
    }

    #[test]
    fn roundtrip_through_printer() {
        let src = r#"
            __global__ void k(float *A, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0f;
                for (int j = 0; j < n; j += 2) {
                    if (j % 4 == 0) {
                        acc += A[i * n + j];
                    } else {
                        acc -= A[j];
                    }
                }
                A[i] = acc;
            }
        "#;
        let k1 = parse_kernel(src).unwrap();
        let printed = printer::kernel_to_string(&k1);
        let k2 = parse_kernel(&printed).unwrap();
        assert_eq!(k1, k2, "parse → print → parse must be a fixed point");
    }

    #[test]
    fn parses_while_and_break() {
        let src = r#"
            __global__ void bfs(int *frontier, int *next, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                int j = 0;
                while (j < n) {
                    if (frontier[j] == i) {
                        next[j] = 1;
                        break;
                    }
                    j++;
                }
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut has_while = false;
        let mut has_break = false;
        catt_ir::visit::walk_stmts(&k.body, &mut |s| {
            has_while |= matches!(s, Stmt::While { .. });
            has_break |= matches!(s, Stmt::Break);
        });
        assert!(has_while && has_break);
    }

    #[test]
    fn parses_casts_and_intrinsics() {
        let src = r#"
            __global__ void k(float *A) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                A[i] = sqrtf(fabsf(A[i])) + (float)i;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let printed = printer::kernel_to_string(&k);
        assert!(printed.contains("sqrtf(fabsf(A[i]))"));
        assert!(printed.contains("(float)i"));
    }

    #[test]
    fn parses_ternary() {
        let src = r#"
            __global__ void k(float *A, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                A[i] = i < n ? A[i] : 0.0f;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        assert!(printer::kernel_to_string(&k).contains('?'));
    }

    #[test]
    fn for_update_variants() {
        for upd in ["j++", "++j", "j += 3", "j = j + 3"] {
            let src = format!(
                "__global__ void k(float *A) {{ for (int j = 0; j < 8; {upd}) {{ A[j] = 0.0f; }} }}"
            );
            let k = parse_kernel(&src).unwrap();
            match &k.body[0] {
                Stmt::For { step, .. } => {
                    let s = step.const_int().unwrap();
                    assert!(s == 1 || s == 3, "{upd}: step {s}");
                }
                other => panic!("expected for, got {other:?}"),
            }
        }
    }

    #[test]
    fn downward_loop() {
        let src = "__global__ void k(float *A) { for (int j = 7; j >= 0; j--) { A[j] = 0.0f; } }";
        let k = parse_kernel(src).unwrap();
        match &k.body[0] {
            Stmt::For { cond_op, step, .. } => {
                assert_eq!(*cond_op, BinOp::Ge);
                assert_eq!(step.const_int(), Some(-1));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_canonical_for() {
        let src = "__global__ void k(float *A) { for (int j = 0; k < 8; j++) { A[j] = 0.0f; } }";
        assert!(parse_kernel(src).is_err());
        let src = "__global__ void k(float *A) { for (int j = 0; j < 8; j *= 2) { A[j] = 0.0f; } }";
        assert!(parse_kernel(src).is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let src = "__global__ void k(float *A) {\n  A[0] = @;\n}";
        let e = parse_module(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(!e.diagnostics.is_empty());
    }

    #[test]
    fn unknown_function_is_error() {
        let src = "__global__ void k(float *A) { A[0] = frobnicate(1); }";
        let e = parse_kernel(src).unwrap_err();
        assert!(e.message.contains("frobnicate"));
        assert_eq!(e.diagnostics[0].code, codes::UNKNOWN_FUNCTION);
    }

    #[test]
    fn braceless_if_and_for_bodies() {
        let src = r#"
            __global__ void k(float *A, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n)
                    for (int j = 0; j < n; j++)
                        A[i] += 1.0f;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        match &k.body[1] {
            Stmt::If { then, .. } => assert!(matches!(then[0], Stmt::For { .. })),
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn multi_declarator_statement() {
        let src = "__global__ void k(float *A) { int i = 0, j = 1; A[i] = (float)j; }";
        let k = parse_kernel(src).unwrap();
        assert!(matches!(&k.body[0], Stmt::DeclScalar { name, .. } if name == "i"));
        assert!(matches!(&k.body[1], Stmt::DeclScalar { name, .. } if name == "j"));
    }

    #[test]
    fn const_restrict_qualifiers_ignored() {
        let src = "__global__ void k(const float * __restrict__ A, float *B) { B[0] = A[0]; }";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.params.len(), 2);
        assert!(matches!(k.params[0].ty, ParamTy::Ptr(DType::F32)));
    }

    #[test]
    fn define_arithmetic_folds() {
        let src = "#define N 1024\n#define M N * 2\n__global__ void k(float *A) { A[M] = 0.0f; }";
        let m = parse_module(src).unwrap();
        assert_eq!(m.defines[1], ("M".to_string(), 2048));
    }

    #[test]
    fn loop_spans_follow_preorder() {
        let src = "\
__global__ void k(float *A, int n) {
    for (int i = 0; i < n; i++) {
        while (i < 4) {
            A[i] = 0.0f;
            break;
        }
    }
    for (int j = 0; j < n; j++) {
        A[j] = 1.0f;
    }
}";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.spans.loops.len(), 3);
        // Pre-order: outer for, inner while, trailing for.
        assert_eq!(&src[k.spans.loops[0].start as usize..][..3], "for");
        assert_eq!(&src[k.spans.loops[1].start as usize..][..5], "while");
        assert_eq!(&src[k.spans.loops[2].start as usize..][..3], "for");
        // Outer loop encloses the inner one; all spans in bounds.
        assert!(k.spans.loops[0].start < k.spans.loops[1].start);
        assert!(k.spans.loops[0].end >= k.spans.loops[1].end);
        for s in &k.spans.loops {
            assert!(s.in_bounds(src.len()));
        }
        assert_eq!(
            &src[k.spans.name.start as usize..k.spans.name.end as usize],
            "k"
        );
    }
}
