//! Tokenizer for the CUDA-C subset.
//!
//! Errors are reported as [`catt_diag::Diagnostic`]s with byte spans
//! into the source; [`Lexer::tokenize_recover`] additionally *recovers*
//! (skip the offending byte or malformed literal and keep lexing) so
//! one submission can surface every lexical error at once. The lexer
//! contains no panic or unwrap sites: arbitrary byte soup — including
//! invalid UTF-8 reached through fuzzing — lexes to tokens plus
//! diagnostics.

use catt_diag::{codes, Diagnostic, Span};
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (`1.5`, `1.0f`, `1e-3`).
    Float(f64),
    /// Punctuation / operator, one of the fixed spellings below.
    Punct(&'static str),
    /// `#define` directive marker (the lexer keeps preprocessor lines as
    /// tokens so the parser can interpret them).
    HashDefine,
    /// End of input.
    Eof,
}

/// All multi- and single-character operator spellings, longest first so the
/// lexer is maximal-munch.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "->", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/",
    "%", "<", ">", "=", "!", "&", "|", "^", "?", ":", ".", "~",
];

/// A token with its source position (1-based line and column) and byte
/// span into the original source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
    pub span: Span,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::HashDefine => write!(f, "`#define`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Streaming tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the entire input, appending a final `Eof` token. Stops
    /// at the first lexical error.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, Diagnostic> {
        let (tokens, mut diags) = Lexer::tokenize_recover(src);
        if diags.is_empty() {
            Ok(tokens)
        } else {
            Err(diags.remove(0))
        }
    }

    /// Tokenize with recovery: every lexical error becomes a diagnostic
    /// and lexing continues past it. The token stream always ends with
    /// `Eof`, so the parser can run over partially-broken input.
    pub fn tokenize_recover(src: &'a str) -> (Vec<Token>, Vec<Diagnostic>) {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        let mut diags = Vec::new();
        loop {
            let before = lx.pos;
            match lx.next_token() {
                Ok(t) => {
                    let is_eof = t.kind == TokenKind::Eof;
                    out.push(t);
                    if is_eof {
                        return (out, diags);
                    }
                }
                Err(d) => {
                    // Same error budget as the parser: past it, keep
                    // consuming (so the token stream stays usable) but
                    // stop accumulating diagnostics — a pathological
                    // input must not allocate one per byte.
                    if diags.len() < crate::parser::MAX_ERRORS {
                        diags.push(d);
                    }
                    // Recovery: every error path in `next_token` consumes
                    // at least the offending byte; the defensive bump
                    // guarantees progress even if one does not.
                    if lx.pos == before {
                        lx.bump();
                    }
                    if lx.pos >= lx.src.len() {
                        let at = lx.pos as u32;
                        out.push(Token {
                            kind: TokenKind::Eof,
                            line: lx.line,
                            col: lx.col,
                            span: Span::point(at),
                        });
                        return (out, diags);
                    }
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Slice `[start, pos)` as text. The lexer only groups ASCII bytes
    /// into multi-byte tokens, so this is normally valid UTF-8; the
    /// lossy fallback keeps arbitrary byte soup panic-free.
    fn text(&self, start: usize) -> std::borrow::Cow<'a, str> {
        String::from_utf8_lossy(&self.src[start..self.pos])
    }

    fn error(
        &self,
        code: catt_diag::Code,
        message: String,
        start: usize,
        line: u32,
        col: u32,
    ) -> Diagnostic {
        let end = self.pos.max(start + 1).min(self.src.len()).max(start);
        Diagnostic::error(code, message)
            .with_span(Span::new(start as u32, end as u32))
            .at(line, col)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (start, line, col) = (self.pos, self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(Diagnostic::error(
                                    codes::UNTERMINATED_COMMENT,
                                    "unterminated block comment",
                                )
                                .with_span(Span::new(start as u32, (start + 2) as u32))
                                .at(line, col));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
                col,
                span: Span::point(start as u32),
            });
        };

        // Preprocessor: only `#define` is meaningful; `#include` and
        // `#pragma` lines are skipped entirely.
        if c == b'#' {
            while let Some(c) = self.peek() {
                if !c.is_ascii_alphanumeric() && c != b'#' {
                    break;
                }
                self.bump();
            }
            let word = self.text(start);
            match word.as_ref() {
                "#define" => {
                    return Ok(Token {
                        kind: TokenKind::HashDefine,
                        line,
                        col,
                        span: Span::new(start as u32, self.pos as u32),
                    })
                }
                _ => {
                    // Skip the rest of the directive line and re-lex.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    return self.next_token();
                }
            }
        }

        if c.is_ascii_alphabetic() || c == b'_' {
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let s = self.text(start).into_owned();
            return Ok(Token {
                kind: TokenKind::Ident(s),
                line,
                col,
                span: Span::new(start as u32, self.pos as u32),
            });
        }

        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.lex_number(start, line, col);
        }

        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Token {
                    kind: TokenKind::Punct(p),
                    line,
                    col,
                    span: Span::new(start as u32, self.pos as u32),
                });
            }
        }

        // `c` may be a stray non-ASCII byte (including bytes that are not
        // valid UTF-8 on their own); render it without assuming anything,
        // and consume it so recovery makes progress.
        self.bump();
        let shown = if c.is_ascii_graphic() {
            format!("`{}`", c as char)
        } else {
            format!("byte 0x{c:02x}")
        };
        Err(Diagnostic::error(
            codes::UNEXPECTED_CHARACTER,
            format!("unexpected character {shown}"),
        )
        .with_span(Span::new(start as u32, (start + 1) as u32))
        .at(line, col))
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) -> Result<Token, Diagnostic> {
        let mut is_float = false;
        // Hex literals.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hstart = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = self.text(hstart);
            let v = i64::from_str_radix(text.as_ref(), 16).map_err(|_| {
                self.error(
                    codes::MALFORMED_INT,
                    format!("malformed hex literal `{}`", self.text(start)),
                    start,
                    line,
                    col,
                )
            })?;
            return Ok(Token {
                kind: TokenKind::Int(v),
                line,
                col,
                span: Span::new(start as u32, self.pos as u32),
            });
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. identifier suffix).
                self.pos = save.0;
                self.line = save.1;
                self.col = save.2;
            }
        }
        let digits_end = self.pos;
        // Trailing f/F (float) or u/U/l/L suffixes.
        let mut suffix_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'f' | b'F' => {
                    suffix_float = true;
                    self.bump();
                }
                b'u' | b'U' | b'l' | b'L' => {
                    self.bump();
                }
                _ => break,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..digits_end]);
        let span = Span::new(start as u32, self.pos as u32);
        if is_float || suffix_float {
            let v: f64 = text.parse().map_err(|_| {
                Diagnostic::error(
                    codes::MALFORMED_FLOAT,
                    format!("malformed float literal `{text}`"),
                )
                .with_span(span)
                .at(line, col)
            })?;
            Ok(Token {
                kind: TokenKind::Float(v),
                line,
                col,
                span,
            })
        } else {
            let v: i64 = text.parse().map_err(|_| {
                Diagnostic::error(
                    codes::MALFORMED_INT,
                    format!("malformed integer literal `{text}`"),
                )
                .with_span(span)
                .at(line, col)
            })?;
            Ok(Token {
                kind: TokenKind::Int(v),
                line,
                col,
                span,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_identifiers_and_ints() {
        let ks = kinds("int x = 42;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_with_suffix() {
        assert_eq!(kinds("1.5f")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("0.0f")[0], TokenKind::Float(0.0));
        assert_eq!(kinds("2.f")[0], TokenKind::Float(2.0));
        assert_eq!(kinds("1e-3")[0], TokenKind::Float(1e-3));
        assert_eq!(kinds("3f")[0], TokenKind::Float(3.0));
    }

    #[test]
    fn int_with_unsigned_suffix() {
        assert_eq!(kinds("42u")[0], TokenKind::Int(42));
        assert_eq!(kinds("0x1F")[0], TokenKind::Int(31));
    }

    #[test]
    fn maximal_munch_operators() {
        let ks = kinds("a <<= b << c <= d < e");
        let puncts: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<<=", "<<", "<=", "<"]);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // comment\n /* multi\nline */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let e = Lexer::tokenize("/* oops").unwrap_err();
        assert_eq!(e.code, catt_diag::codes::UNTERMINATED_COMMENT);
        assert_eq!(e.span, Some(Span::new(0, 2)));
    }

    #[test]
    fn define_token_and_skipped_directives() {
        let ks = kinds("#include <stdio.h>\n#define NX 40960\nx");
        assert_eq!(
            ks,
            vec![
                TokenKind::HashDefine,
                TokenKind::Ident("NX".into()),
                TokenKind::Int(40960),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines_and_spans() {
        let ts = Lexer::tokenize("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
        assert_eq!(ts[0].span, Span::new(0, 1));
        assert_eq!(ts[1].span, Span::new(4, 5));
        assert_eq!(ts[2].span, Span::point(5)); // Eof
    }

    #[test]
    fn member_access_dots() {
        let ks = kinds("threadIdx.x");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("threadIdx".into()),
                TokenKind::Punct("."),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        let e = Lexer::tokenize("a @ b").unwrap_err();
        assert!(e.message.contains('@'));
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 3);
        assert_eq!(e.span, Some(Span::new(2, 3)));
    }

    #[test]
    fn recovery_collects_multiple_errors() {
        let (tokens, diags) = Lexer::tokenize_recover("a @ b $ c");
        assert_eq!(diags.len(), 2);
        assert!(diags
            .iter()
            .all(|d| d.code == catt_diag::codes::UNEXPECTED_CHARACTER));
        let idents: Vec<_> = tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
        assert_eq!(tokens.last().map(|t| t.kind.clone()), Some(TokenKind::Eof));
    }

    #[test]
    fn huge_int_literal_is_a_diagnostic_not_a_panic() {
        let (_, diags) = Lexer::tokenize_recover("x = 99999999999999999999;");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, catt_diag::codes::MALFORMED_INT);
        let s = diags[0].span.unwrap();
        assert!(s.in_bounds("x = 99999999999999999999;".len()));
    }

    #[test]
    fn non_utf8_safe_paths() {
        // Lexer is byte-oriented; drive it with a lossy-decoded string the
        // way the fuzzer does, plus a stray continuation byte.
        let src = String::from_utf8_lossy(&[b'a', 0xC3, 0x28, b'b']).into_owned();
        let (tokens, diags) = Lexer::tokenize_recover(&src);
        assert!(!diags.is_empty());
        for d in &diags {
            assert!(d.span.is_some_and(|s| s.in_bounds(src.len())));
        }
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident("a".into())));
    }
}
