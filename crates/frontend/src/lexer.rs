//! Tokenizer for the CUDA-C subset.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (`1.5`, `1.0f`, `1e-3`).
    Float(f64),
    /// Punctuation / operator, one of the fixed spellings below.
    Punct(&'static str),
    /// `#define` directive marker (the lexer keeps preprocessor lines as
    /// tokens so the parser can interpret them).
    HashDefine,
    /// End of input.
    Eof,
}

/// All multi- and single-character operator spellings, longest first so the
/// lexer is maximal-munch.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "->", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/",
    "%", "<", ">", "=", "!", "&", "|", "^", "?", ":", ".", "~",
];

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::HashDefine => write!(f, "`#define`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexer error (unexpected character / malformed literal).
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the entire input (convenience for the parser), appending a
    /// final `Eof` token.
    pub fn tokenize(src: &'a str) -> Result<Vec<Token>, LexError> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token()?;
            let is_eof = t.kind == TokenKind::Eof;
            out.push(t);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    line,
                                    col,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
                col,
            });
        };

        // Preprocessor: only `#define` is meaningful; `#include` and
        // `#pragma` lines are skipped entirely.
        if c == b'#' {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if !c.is_ascii_alphanumeric() && c != b'#' {
                    break;
                }
                self.bump();
            }
            let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            match word {
                "#define" => {
                    return Ok(Token {
                        kind: TokenKind::HashDefine,
                        line,
                        col,
                    })
                }
                _ => {
                    // Skip the rest of the directive line and re-lex.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                    return self.next_token();
                }
            }
        }

        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.src[start..self.pos])
                .unwrap()
                .to_string();
            return Ok(Token {
                kind: TokenKind::Ident(s),
                line,
                col,
            });
        }

        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.lex_number(line, col);
        }

        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Token {
                    kind: TokenKind::Punct(p),
                    line,
                    col,
                });
            }
        }

        Err(LexError {
            message: format!("unexpected character `{}`", c as char),
            line,
            col,
        })
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Result<Token, LexError> {
        let start = self.pos;
        let mut is_float = false;
        // Hex literals.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hstart = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hstart..self.pos]).unwrap();
            let v = i64::from_str_radix(text, 16).map_err(|_| LexError {
                message: "malformed hex literal".into(),
                line,
                col,
            })?;
            return Ok(Token {
                kind: TokenKind::Int(v),
                line,
                col,
            });
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                // Not an exponent after all (e.g. identifier suffix).
                self.pos = save.0;
                self.line = save.1;
                self.col = save.2;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        // Trailing f/F (float) or u/U/l/L suffixes.
        let mut suffix_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'f' | b'F' => {
                    suffix_float = true;
                    self.bump();
                }
                b'u' | b'U' | b'l' | b'L' => {
                    self.bump();
                }
                _ => break,
            }
        }
        if is_float || suffix_float {
            let v: f64 = text.parse().map_err(|_| LexError {
                message: format!("malformed float literal `{text}`"),
                line,
                col,
            })?;
            Ok(Token {
                kind: TokenKind::Float(v),
                line,
                col,
            })
        } else {
            let v: i64 = text.parse().map_err(|_| LexError {
                message: format!("malformed integer literal `{text}`"),
                line,
                col,
            })?;
            Ok(Token {
                kind: TokenKind::Int(v),
                line,
                col,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_identifiers_and_ints() {
        let ks = kinds("int x = 42;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_with_suffix() {
        assert_eq!(kinds("1.5f")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("0.0f")[0], TokenKind::Float(0.0));
        assert_eq!(kinds("2.f")[0], TokenKind::Float(2.0));
        assert_eq!(kinds("1e-3")[0], TokenKind::Float(1e-3));
        assert_eq!(kinds("3f")[0], TokenKind::Float(3.0));
    }

    #[test]
    fn int_with_unsigned_suffix() {
        assert_eq!(kinds("42u")[0], TokenKind::Int(42));
        assert_eq!(kinds("0x1F")[0], TokenKind::Int(31));
    }

    #[test]
    fn maximal_munch_operators() {
        let ks = kinds("a <<= b << c <= d < e");
        let puncts: Vec<_> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<<=", "<<", "<=", "<"]);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // comment\n /* multi\nline */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::tokenize("/* oops").is_err());
    }

    #[test]
    fn define_token_and_skipped_directives() {
        let ks = kinds("#include <stdio.h>\n#define NX 40960\nx");
        assert_eq!(
            ks,
            vec![
                TokenKind::HashDefine,
                TokenKind::Ident("NX".into()),
                TokenKind::Int(40960),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = Lexer::tokenize("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn member_access_dots() {
        let ks = kinds("threadIdx.x");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("threadIdx".into()),
                TokenKind::Punct("."),
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        let e = Lexer::tokenize("a @ b").unwrap_err();
        assert!(e.message.contains('@'));
        assert_eq!(e.line, 1);
        assert_eq!(e.col, 3);
    }
}
