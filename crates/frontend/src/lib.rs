//! # catt-frontend — CUDA-C subset parser
//!
//! The paper implements its static analyzer and source-to-source compiler
//! on top of Antlr's C parser (§4). This crate plays that role: a
//! hand-written lexer and recursive-descent parser that turn CUDA-C kernel
//! source into the [`catt_ir`] module representation.
//!
//! Supported subset (everything the paper's Polybench/Rodinia workloads
//! need):
//!
//! * `#define NAME <int>` constants, `//` and `/* */` comments;
//! * `__global__ void k(float *A, int n, ...) { ... }` definitions
//!   (`const` / `__restrict__` qualifiers are accepted and ignored);
//! * declarations `int/float/unsigned int x [= e];`,
//!   `__shared__ float buf[N];`;
//! * assignments `x = e;`, `x op= e;`, `x++;`, array stores `A[e] = ...`;
//! * structured control flow: `if`/`else`, canonical `for`, `while`,
//!   `break`, `return`, `__syncthreads();`;
//! * expressions with the usual C precedence, the ternary operator,
//!   builtin variables (`threadIdx.x` ...), casts, and math intrinsics.
//!
//! Errors are [`catt_diag::Diagnostic`]s with byte spans and stable
//! codes; [`parse_module_recover`] reports *every* error in a
//! submission (statement-level recovery at `;` / `}`) instead of just
//! the first, and the lexer/parser are panic-free on arbitrary input
//! (fuzzed continuously by `catt fuzz --frontend`).

pub mod lexer;
pub mod parser;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_kernel, parse_module, parse_module_recover, ParseError, ParseOutcome};
