//! Robustness: the front end must never panic — malformed input produces
//! `Err`, not a crash. Exercised with adversarial mutations of valid
//! source and with raw noise, drawn from a fixed-seed [`catt_prng::Rng`]
//! (plus exhaustive truncation, which is cheap enough to enumerate).

use catt_prng::Rng;

const SEED_SRC: &str = "
#define NX 4096
__global__ void k(float *A, float *B, float *tmp, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    __shared__ float buf[64];
    if (i < NX) {
        for (int j = 0; j < n; j++) {
            tmp[i] += A[i * NX + j] * B[j];
        }
        buf[threadIdx.x % 64] = tmp[i];
        __syncthreads();
        while (i > 0) { break; }
        tmp[i] = buf[0] > 0.5f ? 1.0f : -1.0f;
    }
}
";

/// Truncating valid source anywhere yields Ok or Err, never a panic —
/// exhaustive over every char boundary.
#[test]
fn truncation_never_panics() {
    for cut in 0..=SEED_SRC.len() {
        if SEED_SRC.is_char_boundary(cut) {
            let _ = catt_frontend::parse_module(&SEED_SRC[..cut]);
        }
    }
}

/// Random single-byte substitutions never panic.
#[test]
fn mutation_never_panics() {
    let mut r = Rng::from_tag("no-panic-mutation");
    for _ in 0..512 {
        let mut bytes = SEED_SRC.as_bytes().to_vec();
        let idx = r.range_usize(0, bytes.len());
        bytes[idx] = r.range_u32(0, 128) as u8;
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = catt_frontend::parse_module(s);
        }
    }
}

/// Raw printable noise never panics.
#[test]
fn noise_never_panics() {
    let mut r = Rng::from_tag("no-panic-noise");
    for _ in 0..512 {
        let len = r.range_usize(0, 201);
        let s: String = (0..len)
            .map(|_| {
                if r.bool(0.05) {
                    '\n'
                } else {
                    // Printable ASCII: ' ' ..= '~'.
                    char::from(r.range_u32(0x20, 0x7F) as u8)
                }
            })
            .collect();
        let _ = catt_frontend::parse_module(&s);
    }
}

/// Token soup assembled from real lexemes never panics, and if it happens
/// to parse, lowering it must not panic either.
#[test]
fn token_soup_never_panics() {
    const LEXEMES: [&str; 35] = [
        "__global__",
        "void",
        "k",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        "float",
        "int",
        "*",
        "A",
        "i",
        "=",
        "+",
        "for",
        "if",
        "else",
        "while",
        "break",
        "return",
        "1",
        "0.5f",
        "<",
        "threadIdx",
        ".",
        "x",
        "__syncthreads",
        "__shared__",
        "#define",
        "N",
        ",",
        "%",
    ];
    let mut r = Rng::from_tag("no-panic-token-soup");
    for _ in 0..512 {
        let n = r.range_usize(0, 60);
        let src = (0..n)
            .map(|_| *r.choose(&LEXEMES))
            .collect::<Vec<_>>()
            .join(" ");
        if let Ok(module) = catt_frontend::parse_module(&src) {
            for k in &module.kernels {
                let _ = catt_sim::lower(k);
            }
        }
    }
}
