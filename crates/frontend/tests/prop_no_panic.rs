//! Robustness: the front end must never panic — malformed input produces
//! `Err`, not a crash. Exercised with adversarial mutations of valid
//! source and with raw noise.

use proptest::prelude::*;

const SEED_SRC: &str = "
#define NX 4096
__global__ void k(float *A, float *B, float *tmp, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    __shared__ float buf[64];
    if (i < NX) {
        for (int j = 0; j < n; j++) {
            tmp[i] += A[i * NX + j] * B[j];
        }
        buf[threadIdx.x % 64] = tmp[i];
        __syncthreads();
        while (i > 0) { break; }
        tmp[i] = buf[0] > 0.5f ? 1.0f : -1.0f;
    }
}
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Truncating valid source anywhere yields Ok or Err, never a panic.
    #[test]
    fn truncation_never_panics(cut in 0usize..SEED_SRC.len()) {
        // Cut on a char boundary.
        let mut cut = cut;
        while !SEED_SRC.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = catt_frontend::parse_module(&SEED_SRC[..cut]);
    }

    /// Random single-byte substitutions never panic.
    #[test]
    fn mutation_never_panics(pos in 0usize..SEED_SRC.len(), byte in 0u8..128) {
        let mut bytes = SEED_SRC.as_bytes().to_vec();
        let idx = pos.min(bytes.len() - 1);
        bytes[idx] = byte;
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = catt_frontend::parse_module(s);
        }
    }

    /// Raw printable noise never panics.
    #[test]
    fn noise_never_panics(s in "[ -~\\n]{0,200}") {
        let _ = catt_frontend::parse_module(&s);
    }

    /// Token soup assembled from real lexemes never panics, and if it
    /// happens to parse, lowering it must not panic either.
    #[test]
    fn token_soup_never_panics(
        toks in prop::collection::vec(
            prop::sample::select(vec![
                "__global__", "void", "k", "(", ")", "{", "}", "[", "]", ";",
                "float", "int", "*", "A", "i", "=", "+", "for", "if", "else",
                "while", "break", "return", "1", "0.5f", "<", "threadIdx", ".",
                "x", "__syncthreads", "__shared__", "#define", "N", ",", "%",
            ]),
            0..60,
        )
    ) {
        let src = toks.join(" ");
        if let Ok(module) = catt_frontend::parse_module(&src) {
            for k in &module.kernels {
                let _ = catt_sim::lower(k);
            }
        }
    }
}
