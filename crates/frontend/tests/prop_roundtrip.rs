//! Property test: `print(parse(print(k))) == print(k)` — the printer and
//! parser are mutually inverse on structurally random kernels.

use catt_ir::expr::{BinOp, Expr, Intrinsic, UnOp};
use catt_ir::kernel::{Kernel, Param};
use catt_ir::printer::kernel_to_string;
use catt_ir::stmt::{LValue, Stmt};
use catt_ir::types::DType;
use proptest::prelude::*;

/// Random expression over locals `x` (float) and `n`/`j` (int), array `A`.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::Int),
        (-100i32..100).prop_map(|v| Expr::Float(v as f64 * 0.5)),
        Just(Expr::var("n")),
        Just(Expr::var("j")),
        Just(Expr::linear_tid()),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(a, b, op)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnOp::Neg, Box::new(a))),
            inner.clone().prop_map(|a| Expr::Index(
                "A".into(),
                Box::new(Expr::Binary(
                    BinOp::Rem,
                    Box::new(a),
                    Box::new(Expr::Int(64))
                ))
            )),
            inner.clone().prop_map(|a| Expr::Call(Intrinsic::Fabsf, vec![a])),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::Select(
                Box::new(Expr::Binary(BinOp::Lt, Box::new(c), Box::new(Expr::Int(3)))),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
    .boxed()
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Lt),
        Just(BinOp::Ge),
        Just(BinOp::Eq),
        Just(BinOp::And),
        Just(BinOp::Shl),
    ]
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let simple = prop_oneof![
        arb_expr(2).prop_map(|e| Stmt::Assign {
            lhs: LValue::Var("x".into()),
            op: None,
            rhs: Expr::Cast(DType::F32, Box::new(e)),
        }),
        arb_expr(2).prop_map(|e| Stmt::Assign {
            lhs: LValue::Elem(
                "A".into(),
                Expr::Binary(BinOp::Rem, Box::new(e), Box::new(Expr::Int(64)))
            ),
            op: Some(BinOp::Add),
            rhs: Expr::var("x"),
        }),
        Just(Stmt::SyncThreads),
        Just(Stmt::Return),
    ];
    simple
        .prop_recursive(depth, 16, 3, |inner| {
            prop_oneof![
                (arb_expr(1), prop::collection::vec(inner.clone(), 1..3)).prop_map(
                    |(c, body)| Stmt::If {
                        cond: Expr::Binary(
                            BinOp::Ne,
                            Box::new(c),
                            Box::new(Expr::Int(0))
                        ),
                        then: body,
                        els: vec![],
                    }
                ),
                (1i64..8, prop::collection::vec(inner, 1..3)).prop_map(|(n, body)| {
                    Stmt::For {
                        var: "j".into(),
                        decl: true,
                        init: Expr::Int(0),
                        cond_op: BinOp::Lt,
                        bound: Expr::Int(n),
                        step: Expr::Int(1),
                        body,
                    }
                }),
            ]
        })
        .boxed()
}

fn arb_kernel() -> impl Strategy<Value = Kernel> {
    prop::collection::vec(arb_stmt(3), 1..6).prop_map(|mut body| {
        let mut full = vec![
            Stmt::DeclScalar {
                name: "x".into(),
                ty: DType::F32,
                init: Some(Expr::Float(0.0)),
            },
            Stmt::DeclScalar {
                name: "j".into(),
                ty: DType::I32,
                init: Some(Expr::Int(0)),
            },
        ];
        full.append(&mut body);
        Kernel::new(
            "prop_kernel",
            vec![Param::ptr("A", DType::F32), Param::scalar("n", DType::I32)],
            full,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One parse normalizes literal spellings (e.g. `Neg(0.5)` prints as
    /// `-0.5f`, which re-parses as the literal `-0.5`); from then on,
    /// print ∘ parse must be the identity in both directions.
    #[test]
    fn print_parse_reaches_a_fixed_point(k in arb_kernel()) {
        let printed = kernel_to_string(&k);
        let parsed = catt_frontend::parse_kernel(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- source ---\n{printed}")))?;
        // String fixed point after one round trip…
        let reprinted = kernel_to_string(&parsed);
        prop_assert_eq!(&reprinted, &printed, "--- source ---\n{}", printed);
        // …and AST fixed point from the normalized tree onward.
        let reparsed = catt_frontend::parse_kernel(&reprinted)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- source ---\n{reprinted}")))?;
        prop_assert_eq!(&reparsed, &parsed, "--- source ---\n{}", reprinted);
    }
}
