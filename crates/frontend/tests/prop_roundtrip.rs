//! Randomized test: `print(parse(print(k))) == print(k)` — the printer and
//! parser are mutually inverse on structurally random kernels.
//!
//! Kernels are generated from a fixed-seed [`catt_prng::Rng`] (the offline
//! stand-in for proptest's strategies), so the same cases run every time
//! and failures reproduce exactly.

use catt_ir::expr::{BinOp, Expr, Intrinsic, UnOp};
use catt_ir::kernel::{Kernel, Param};
use catt_ir::printer::kernel_to_string;
use catt_ir::stmt::{LValue, Stmt};
use catt_ir::types::DType;
use catt_prng::Rng;

const BINOPS: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Lt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::And,
    BinOp::Shl,
];

/// Random expression over locals `x` (float) and `n`/`j` (int), array `A`.
fn gen_expr(r: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || r.bool(0.3) {
        // Leaves.
        return match r.range_u32(0, 5) {
            0 => Expr::Int(r.range_i64(-1000, 1000)),
            1 => Expr::Float(r.range_i32(-100, 100) as f64 * 0.5),
            2 => Expr::var("n"),
            3 => Expr::var("j"),
            _ => Expr::linear_tid(),
        };
    }
    match r.range_u32(0, 5) {
        0 => {
            let a = gen_expr(r, depth - 1);
            let b = gen_expr(r, depth - 1);
            Expr::Binary(*r.choose(&BINOPS), Box::new(a), Box::new(b))
        }
        1 => Expr::Unary(UnOp::Neg, Box::new(gen_expr(r, depth - 1))),
        2 => Expr::Index(
            "A".into(),
            Box::new(Expr::Binary(
                BinOp::Rem,
                Box::new(gen_expr(r, depth - 1)),
                Box::new(Expr::Int(64)),
            )),
        ),
        3 => Expr::Call(Intrinsic::Fabsf, vec![gen_expr(r, depth - 1)]),
        _ => Expr::Select(
            Box::new(Expr::Binary(
                BinOp::Lt,
                Box::new(gen_expr(r, depth - 1)),
                Box::new(Expr::Int(3)),
            )),
            Box::new(gen_expr(r, depth - 1)),
            Box::new(gen_expr(r, depth - 1)),
        ),
    }
}

fn gen_stmt(r: &mut Rng, depth: u32) -> Stmt {
    let simple = depth == 0 || r.bool(0.5);
    if simple {
        match r.range_u32(0, 4) {
            0 => Stmt::Assign {
                lhs: LValue::Var("x".into()),
                op: None,
                rhs: Expr::Cast(DType::F32, Box::new(gen_expr(r, 2))),
            },
            1 => Stmt::Assign {
                lhs: LValue::Elem(
                    "A".into(),
                    Expr::Binary(
                        BinOp::Rem,
                        Box::new(gen_expr(r, 2)),
                        Box::new(Expr::Int(64)),
                    ),
                ),
                op: Some(BinOp::Add),
                rhs: Expr::var("x"),
            },
            2 => Stmt::SyncThreads,
            _ => Stmt::Return,
        }
    } else if r.bool(0.5) {
        let body = (0..r.range_u32(1, 3))
            .map(|_| gen_stmt(r, depth - 1))
            .collect();
        Stmt::If {
            cond: Expr::Binary(BinOp::Ne, Box::new(gen_expr(r, 1)), Box::new(Expr::Int(0))),
            then: body,
            els: vec![],
        }
    } else {
        let body = (0..r.range_u32(1, 3))
            .map(|_| gen_stmt(r, depth - 1))
            .collect();
        Stmt::For {
            var: "j".into(),
            decl: true,
            init: Expr::Int(0),
            cond_op: BinOp::Lt,
            bound: Expr::Int(r.range_i64(1, 8)),
            step: Expr::Int(1),
            body,
        }
    }
}

fn gen_kernel(r: &mut Rng) -> Kernel {
    let mut full = vec![
        Stmt::DeclScalar {
            name: "x".into(),
            ty: DType::F32,
            init: Some(Expr::Float(0.0)),
        },
        Stmt::DeclScalar {
            name: "j".into(),
            ty: DType::I32,
            init: Some(Expr::Int(0)),
        },
    ];
    for _ in 0..r.range_u32(1, 6) {
        full.push(gen_stmt(r, 3));
    }
    Kernel::new(
        "prop_kernel",
        vec![Param::ptr("A", DType::F32), Param::scalar("n", DType::I32)],
        full,
    )
}

/// One parse normalizes literal spellings (e.g. `Neg(0.5)` prints as
/// `-0.5f`, which re-parses as the literal `-0.5`); from then on,
/// print ∘ parse must be the identity in both directions.
#[test]
fn print_parse_reaches_a_fixed_point() {
    let mut r = Rng::from_tag("roundtrip-fixed-point");
    for case in 0..128 {
        let k = gen_kernel(&mut r);
        let printed = kernel_to_string(&k);
        let parsed = catt_frontend::parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n--- source ---\n{printed}"));
        // String fixed point after one round trip…
        let reprinted = kernel_to_string(&parsed);
        assert_eq!(reprinted, printed, "case {case}\n--- source ---\n{printed}");
        // …and AST fixed point from the normalized tree onward.
        let reparsed = catt_frontend::parse_kernel(&reprinted)
            .unwrap_or_else(|e| panic!("case {case}: {e}\n--- source ---\n{reprinted}"));
        assert_eq!(reparsed, parsed, "case {case}\n--- source ---\n{reprinted}");
    }
}
