//! Parser error recovery: a submission with several independent
//! mistakes is reported in one pass — every error, with a byte span
//! that lands on the offending token — while everything that *did*
//! parse stays available in the partial module.

use catt_diag::Severity;
use catt_frontend::{parse_module, parse_module_recover};
use catt_prng::Rng;

/// Two independent statement-level errors in one kernel body.
const TWO_ERRORS: &str = "__global__ void k(float *a, int n) {\n\
                          int i = threadIdx.x;\n\
                          a[i] = 1.0f @;\n\
                          int j = 0;\n\
                          a[j] = 2.0f $;\n\
                          }\n";

#[test]
fn multiple_errors_reported_in_one_pass() {
    let outcome = parse_module_recover(TWO_ERRORS);
    assert!(!outcome.is_clean());
    let errors: Vec<_> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.len() >= 2,
        "recovery should reach the second error, got: {:?}",
        errors
    );
    // Distinct errors point at distinct places.
    let spans: Vec<_> = errors.iter().filter_map(|d| d.span).collect();
    assert!(spans.windows(2).all(|w| w[0] != w[1]), "spans collapsed");
}

#[test]
fn strict_parse_carries_the_same_diagnostics() {
    let err = parse_module(TWO_ERRORS).unwrap_err();
    let recovered = parse_module_recover(TWO_ERRORS);
    assert_eq!(err.diagnostics, recovered.diagnostics);
    assert!(err.line > 0 && err.col > 0, "headline error located");
}

#[test]
fn good_kernels_survive_a_broken_sibling() {
    let src = "__global__ void good(float *a, int n) { a[0] = 1.0f; }\n\
               __global__ void bad(float *a, int n) { a[0] = @; }\n\
               __global__ void also_good(float *a, int n) { a[1] = 2.0f; }\n";
    let outcome = parse_module_recover(src);
    assert!(!outcome.is_clean());
    let names: Vec<_> = outcome
        .module
        .kernels
        .iter()
        .map(|k| k.name.as_str())
        .collect();
    assert!(names.contains(&"good"), "first kernel lost: {names:?}");
    assert!(
        names.contains(&"also_good"),
        "recovery never resumed: {names:?}"
    );
}

#[test]
fn spans_land_on_the_offending_token() {
    let src = "__global__ void k(float *a, int n) { a[0] = 1.0f @; }";
    let outcome = parse_module_recover(src);
    let d = outcome
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error)
        .expect("an error");
    let span = d.span.expect("spanned");
    assert_eq!(&src[span.start as usize..span.end as usize], "@");
    assert!(
        d.line == 1 && d.col > 0,
        "line/col backfilled: {}:{}",
        d.line,
        d.col
    );
}

#[test]
fn error_budget_caps_a_pathological_submission() {
    // 200 bad statements; the parser must stop reporting at its budget
    // rather than drown the user (and must still terminate).
    let mut src = String::from("__global__ void k(float *a, int n) {\n");
    for _ in 0..200 {
        src.push_str("a[0] = @;\n");
    }
    src.push('}');
    let outcome = parse_module_recover(&src);
    let errors = outcome
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    assert!(errors >= 10, "budget too tight: {errors}");
    assert!(errors <= 30, "error budget not applied: {errors}");
}

/// Property: under random byte mutations of a real kernel, every
/// diagnostic span (and note span) stays inside the mutated source.
#[test]
fn prop_mutated_sources_keep_spans_in_bounds() {
    let base = "#define N 64\n\
                __global__ void k(float *a, float *b, int n) {\n\
                int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                if (i < N) { for (int j = 0; j < N; j++) { a[i] += b[j]; } }\n\
                }\n";
    let mut rng = Rng::seed(0xC0FFEE);
    for _ in 0..400 {
        let mut bytes = base.as_bytes().to_vec();
        for _ in 0..rng.range_u32(1, 5) {
            match rng.bounded_u64(3) {
                0 => {
                    let at = rng.bounded_u64(bytes.len() as u64) as usize;
                    bytes[at] = rng.bounded_u64(256) as u8;
                }
                1 => {
                    let at = rng.bounded_u64(bytes.len() as u64) as usize;
                    bytes.truncate(at);
                }
                _ => {
                    let at = rng.bounded_u64(bytes.len() as u64 + 1) as usize;
                    bytes.splice(at..at, *b"@#`");
                }
            }
            if bytes.is_empty() {
                bytes.push(b'{');
            }
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let outcome = parse_module_recover(&src);
        for d in &outcome.diagnostics {
            if let Some(span) = d.span {
                assert!(
                    span.in_bounds(src.len()),
                    "[{}] span {}..{} outside {}-byte source:\n{src}",
                    d.code,
                    span.start,
                    span.end,
                    src.len()
                );
            }
            for note in &d.notes {
                if let Some(span) = note.span {
                    assert!(span.in_bounds(src.len()), "note span out of bounds");
                }
            }
        }
    }
}
