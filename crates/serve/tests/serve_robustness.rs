//! End-to-end robustness suite for the serve daemon (DESIGN.md
//! "catt-serve: service architecture & failure model"). Each scenario
//! drives a real [`Server`] — worker pool, reaper, and all — and checks
//! the contract the load harness enforces at scale: every submission
//! ends in exactly one typed response, and overload, deadlines, faults,
//! and shutdown all degrade into *typed* outcomes, never hangs.
//!
//! Chaos comes from the engine's fault plan (the same `CATT_FAULT_PLAN`
//! grammar, injected via [`Engine::with_fault_plan`] so parallel tests
//! don't race on process environment): `delay-job=<ms>` makes workers
//! slow enough to observe queueing, shedding, and cancellation
//! deterministically.

use catt_core::engine::Engine;
use catt_core::fault::FaultPlan;
use catt_serve::proto::{ErrorKind, Response, SubmitRequest};
use catt_serve::server::{fuel_cost, ServeConfig, Server};
use std::sync::mpsc;
use std::time::Duration;

/// A small, valid kernel; `tag` varies a constant so tests get distinct
/// content digests (no cross-test cache or single-flight interference —
/// every test also builds its own engine).
fn kernel(tag: u32) -> String {
    format!(
        "__global__ void k(float *a, float *b, int n) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < n) {{ b[i] = a[i] * {tag}.0f; }}
         }}"
    )
}

/// Generous baseline: big quotas and queue so individual tests tighten
/// only the knob they exercise.
fn base_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_high_water: 64,
        quota_rate: u64::MAX / 4,
        quota_burst: u64::MAX / 4,
        default_deadline_ms: 30_000,
        breaker_threshold: 100,
        breaker_cooldown_ms: 1_000,
        drain_grace_ms: 5_000,
        quantum: 1 << 26,
    }
}

fn server_with(config: ServeConfig, fault_plan: &str) -> Server {
    let engine = Engine::new().with_fault_plan(FaultPlan::parse(fault_plan));
    Server::new(config, engine)
}

fn req(tenant: &str, source: &str, deadline_ms: Option<u64>) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_string(),
        kernel_source: source.to_string(),
        name: String::new(),
        grid: 2,
        block: 32,
        args: "f:64,f:64,si:64".to_string(),
        deadline_ms,
        weight: 1,
        emit: false,
    }
}

fn recv(rx: &mpsc::Receiver<Response>, what: &str) -> Response {
    rx.recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|_| panic!("no response within 60s for {what} — a request hung"))
}

fn error_kind(resp: &Response) -> Option<ErrorKind> {
    match resp {
        Response::Error(e) => Some(e.kind),
        _ => None,
    }
}

/// Overload: with one slow worker and a tiny queue, a burst sheds with
/// `overloaded` + retry-after — and still answers every submission.
#[test]
fn overload_sheds_typed_and_answers_every_submission() {
    let server = server_with(
        ServeConfig {
            workers: 1,
            queue_high_water: 2,
            ..base_config()
        },
        "delay-job=100",
    );
    let src = kernel(1);
    let receivers: Vec<_> = (0..10)
        .map(|i| {
            let (tx, rx) = mpsc::channel();
            server.submit(format!("r{i}"), req("t", &src, Some(20_000)), tx);
            rx
        })
        .collect();
    let responses: Vec<Response> = receivers
        .iter()
        .enumerate()
        .map(|(i, rx)| recv(rx, &format!("burst request r{i}")))
        .collect();
    assert_eq!(responses.len(), 10, "every submission answered");
    let shed = responses
        .iter()
        .filter(|r| error_kind(r) == Some(ErrorKind::Overloaded))
        .count();
    assert!(
        shed >= 4,
        "tiny queue must shed most of a 10-burst, shed {shed}"
    );
    for r in &responses {
        if let Response::Error(e) = r {
            if e.kind == ErrorKind::Overloaded {
                assert!(
                    e.retry_after_ms.is_some(),
                    "overload shed must carry retry-after backpressure"
                );
            }
        }
    }
    let ok = responses
        .iter()
        .filter(|r| matches!(r, Response::Result(_)))
        .count();
    assert!(
        ok >= 1,
        "the worker should complete the admitted head of the burst"
    );
    server.drain();
}

/// A request whose deadline lapses while queued is answered
/// `deadline-exceeded` without ever simulating.
#[test]
fn deadline_expired_in_queue_is_never_simulated() {
    let server = server_with(
        ServeConfig {
            workers: 1,
            ..base_config()
        },
        "delay-job=150",
    );
    let (tx_a, rx_a) = mpsc::channel();
    server.submit("a".into(), req("t", &kernel(2), Some(20_000)), tx_a);
    let (tx_b, rx_b) = mpsc::channel();
    server.submit("b".into(), req("t", &kernel(3), Some(1)), tx_b);

    let b = recv(&rx_b, "queued request with 1ms deadline");
    match b {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::DeadlineExceeded);
            assert!(e.message.contains("queued"), "{}", e.message);
        }
        other => panic!("want deadline-exceeded, got {other:?}"),
    }
    assert!(
        matches!(recv(&rx_a, "head-of-line request"), Response::Result(_)),
        "the in-deadline request still completes"
    );
    server.drain();
}

/// A running simulation is cancelled by the reaper at its deadline —
/// cancelled, not completed late.
#[test]
fn running_simulation_is_cancelled_at_its_deadline() {
    let server = server_with(
        ServeConfig {
            workers: 1,
            ..base_config()
        },
        "delay-job=150",
    );
    let (tx, rx) = mpsc::channel();
    server.submit("slow".into(), req("t", &kernel(4), Some(30)), tx);
    let resp = recv(&rx, "30ms-deadline request against a 150ms-delay engine");
    assert_eq!(
        error_kind(&resp),
        Some(ErrorKind::DeadlineExceeded),
        "got {resp:?}"
    );
    server.drain();
}

/// Quota: a burst-sized first request drains the tenant's bucket; the
/// immediate second request sheds `quota-exhausted` with a refill hint.
#[test]
fn quota_exhaustion_sheds_with_retry_after() {
    let r1 = req("quota-tenant", &kernel(5), Some(20_000));
    let cost = fuel_cost(&r1);
    let server = server_with(
        ServeConfig {
            quota_burst: cost,
            quota_rate: 1_000,
            ..base_config()
        },
        "",
    );
    let (tx1, rx1) = mpsc::channel();
    server.submit("q1".into(), r1, tx1);
    let (tx2, rx2) = mpsc::channel();
    server.submit(
        "q2".into(),
        req("quota-tenant", &kernel(6), Some(20_000)),
        tx2,
    );

    let second = recv(&rx2, "over-quota request");
    match second {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::QuotaExhausted);
            assert!(e.retry_after_ms.unwrap_or(0) > 0, "refill hint missing");
        }
        other => panic!("want quota-exhausted, got {other:?}"),
    }
    assert!(
        matches!(recv(&rx1, "in-quota request"), Response::Result(_)),
        "the first request fits the burst"
    );
    server.drain();
}

/// An overload shed must not charge the tenant's quota: a submission the
/// server never accepted is free, so once the backlog clears the tenant
/// still has the fuel the shed request would have cost.
#[test]
fn overload_shed_does_not_charge_quota() {
    let probe = req("ot", &kernel(20), Some(20_000));
    let cost = fuel_cost(&probe);
    let server = server_with(
        ServeConfig {
            workers: 1,
            queue_high_water: 1,
            // Exactly three requests' worth of fuel, negligible refill:
            // r1 + r2 admitted (2×cost charged), r3 shed as overloaded
            // (must charge nothing), r4 must still fit the bucket.
            quota_burst: 3 * cost,
            quota_rate: 1,
            ..base_config()
        },
        "delay-job=100",
    );
    let (tx1, rx1) = mpsc::channel();
    server.submit("r1".into(), req("ot", &kernel(20), Some(20_000)), tx1);
    // Let the worker pick r1 up so r2 queues and r3 overflows.
    std::thread::sleep(Duration::from_millis(40));
    let (tx2, rx2) = mpsc::channel();
    server.submit("r2".into(), req("ot", &kernel(21), Some(20_000)), tx2);
    let (tx3, rx3) = mpsc::channel();
    server.submit("r3".into(), req("ot", &kernel(22), Some(20_000)), tx3);
    assert_eq!(
        error_kind(&recv(&rx3, "overflow request")),
        Some(ErrorKind::Overloaded),
        "r3 must shed at the full queue"
    );
    // Drain the backlog, then spend the third request's worth of fuel.
    assert!(matches!(recv(&rx1, "r1"), Response::Result(_)));
    assert!(matches!(recv(&rx2, "r2"), Response::Result(_)));
    let (tx4, rx4) = mpsc::channel();
    server.submit("r4".into(), req("ot", &kernel(23), Some(20_000)), tx4);
    let fourth = recv(&rx4, "post-overload request");
    assert!(
        matches!(fourth, Response::Result(_)),
        "the overloaded shed must not have drained the bucket, got {fourth:?}"
    );
    server.drain();
}

/// A half-open probe that is shed by a later admission gate (queue full)
/// must not consume the probe slot: the breaker stays open and the next
/// submission after the backlog clears still gets the probe — it is never
/// wedged half-open with no probe in flight.
#[test]
fn shed_probe_does_not_wedge_the_breaker() {
    let server = server_with(
        ServeConfig {
            workers: 1,
            queue_high_water: 1,
            breaker_threshold: 1,
            breaker_cooldown_ms: 100,
            ..base_config()
        },
        // Job 0 (the breaker-tenant's first request) panics; every job is
        // slow enough to observe queue overflow deterministically.
        "panic-job=0,delay-job=100",
    );
    // Trip the breaker with one fault.
    let (tx, rx) = mpsc::channel();
    server.submit("f1".into(), req("bt", &kernel(30), Some(20_000)), tx);
    assert_eq!(
        error_kind(&recv(&rx, "injected fault")),
        Some(ErrorKind::Fault)
    );
    let (tx, rx) = mpsc::channel();
    server.submit("f2".into(), req("bt", &kernel(31), Some(20_000)), tx);
    assert_eq!(
        error_kind(&recv(&rx, "open-breaker submission")),
        Some(ErrorKind::CircuitOpen)
    );
    // Cooldown expires; fill the queue from another tenant so the probe
    // is shed by the depth gate.
    std::thread::sleep(Duration::from_millis(150));
    let (tx_b1, rx_b1) = mpsc::channel();
    server.submit("b1".into(), req("other", &kernel(32), Some(20_000)), tx_b1);
    std::thread::sleep(Duration::from_millis(40));
    let (tx_b2, rx_b2) = mpsc::channel();
    server.submit("b2".into(), req("other", &kernel(33), Some(20_000)), tx_b2);
    let (tx, rx) = mpsc::channel();
    server.submit("probe1".into(), req("bt", &kernel(34), Some(20_000)), tx);
    assert_eq!(
        error_kind(&recv(&rx, "probe into a full queue")),
        Some(ErrorKind::Overloaded),
        "the probe past its cooldown reaches the depth gate, not circuit-open"
    );
    // Backlog clears; the probe slot must still be available.
    assert!(matches!(recv(&rx_b1, "blocker b1"), Response::Result(_)));
    assert!(matches!(recv(&rx_b2, "blocker b2"), Response::Result(_)));
    let (tx, rx) = mpsc::channel();
    server.submit("probe2".into(), req("bt", &kernel(35), Some(20_000)), tx);
    let resp = recv(&rx, "retried probe");
    assert!(
        matches!(resp, Response::Result(_)),
        "the shed probe must not have consumed the half-open slot, got {resp:?}"
    );
    server.drain();
}

/// Identical submissions from different tenants coalesce onto one
/// simulation (single-flight) or hit its cached result — exactly one
/// actually computes.
#[test]
fn identical_submissions_coalesce_to_one_simulation() {
    let server = server_with(base_config(), "delay-job=100");
    let src = kernel(7);
    let (tx1, rx1) = mpsc::channel();
    server.submit("dup1".into(), req("tenant-a", &src, Some(20_000)), tx1);
    let (tx2, rx2) = mpsc::channel();
    server.submit("dup2".into(), req("tenant-b", &src, Some(20_000)), tx2);

    let first = recv(&rx1, "dup submission 1");
    let second = recv(&rx2, "dup submission 2");
    let bodies: Vec<_> = [first, second]
        .into_iter()
        .map(|r| match r {
            Response::Result(b) => b,
            other => panic!("want ok, got {other:?}"),
        })
        .collect();
    let computed = bodies.iter().filter(|b| b.source == "computed").count();
    assert_eq!(computed, 1, "exactly one of two identical jobs computes");
    assert!(
        bodies
            .iter()
            .any(|b| b.source == "coalesced" || b.source == "cache"),
        "the other is coalesced (in flight) or served from cache"
    );
    assert_eq!(bodies[0].cycles, bodies[1].cycles, "same result either way");
    server.drain();
}

/// Graceful drain: a short grace period, then queued jobs are answered
/// (`deadline-exceeded`), running simulations cancelled, the simcache
/// flushed uncorrupted — and later submissions shed as draining.
#[test]
fn graceful_drain_answers_backlog_and_keeps_cache_valid() {
    let dir = std::env::temp_dir().join(format!("catt-serve-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine = Engine::persistent(&dir).with_fault_plan(FaultPlan::parse("delay-job=100"));
    let server = Server::new(
        ServeConfig {
            workers: 1,
            drain_grace_ms: 50,
            ..base_config()
        },
        engine,
    );
    let receivers: Vec<_> = (0..5)
        .map(|i| {
            let (tx, rx) = mpsc::channel();
            server.submit(format!("d{i}"), req("t", &kernel(8 + i), Some(20_000)), tx);
            rx
        })
        .collect();
    server.drain();
    for (i, rx) in receivers.iter().enumerate() {
        let resp = rx
            .try_recv()
            .unwrap_or_else(|_| panic!("request d{i} unanswered after drain returned"));
        assert!(
            matches!(resp, Response::Result(_))
                || error_kind(&resp) == Some(ErrorKind::DeadlineExceeded),
            "drain must finish or cancel d{i}, got {resp:?}"
        );
    }
    // Post-drain submissions shed immediately with the draining message.
    let (tx, rx) = mpsc::channel();
    server.submit("late".into(), req("t", &kernel(99), None), tx);
    match recv(&rx, "post-drain submission") {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::Overloaded);
            assert!(e.message.contains("draining"), "{}", e.message);
        }
        other => panic!("want overloaded/draining, got {other:?}"),
    }
    // The flushed cache file loads cleanly in a fresh engine.
    let fresh = Engine::persistent(&dir);
    assert_eq!(
        fresh.cache_counters().skipped,
        0,
        "drain left corrupt lines in the simcache"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The NDJSON front door: malformed lines, bad ops, probes, and
/// shutdown all produce exactly one typed line each.
#[test]
fn protocol_lines_always_get_one_typed_reply() {
    let server = server_with(base_config(), "");
    let (tx, rx) = mpsc::channel();

    assert!(server.handle_line(r#"{"id":"p1","op":"ping"}"#, &tx));
    let resp = recv(&rx, "ping");
    assert!(matches!(resp, Response::Info { ref id, .. } if id == "p1"));

    // Malformed JSON still correlates via the recovered id.
    assert!(server.handle_line(r#"{"id":"bad1", not json"#, &tx));
    match recv(&rx, "malformed line") {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::BadRequest);
            assert_eq!(e.id, "bad1");
        }
        other => panic!("want bad-request, got {other:?}"),
    }

    // A kernel name missing from the unit is a compile error, not a hang.
    let line = format!(
        r#"{{"id":"miss","kernel":"{}","name":"nope","grid":1,"block":32}}"#,
        "__global__ void k(float *a, int n) { }".replace('"', "\\\"")
    );
    assert!(server.handle_line(&line, &tx));
    match recv(&rx, "unknown kernel name") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::CompileError),
        other => panic!("want compile-error, got {other:?}"),
    }

    assert!(server.handle_line(r#"{"id":"s1","op":"stats"}"#, &tx));
    assert!(matches!(recv(&rx, "stats"), Response::Info { .. }));

    // Shutdown drains and tells the transport to stop reading.
    assert!(!server.handle_line(r#"{"id":"bye","op":"shutdown"}"#, &tx));
    assert!(matches!(recv(&rx, "shutdown ack"), Response::Info { .. }));
    assert!(server.is_draining());
}
