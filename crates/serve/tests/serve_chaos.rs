//! Chaos integration tests: the serve daemon under a process-wide
//! `CATT_FAULT_PLAN` (the same knob CI's chaos bench uses). Every test
//! in this binary runs with the SAME plan — `fuel=2000,delay-job=20` —
//! set once before any engine is built (tests inside one binary share
//! the process environment; own binary = no racing the clean suite).
//!
//! `fuel=2000` makes cache-straining kernels exhaust their cycle budget
//! (a fatal simulation fault), `delay-job=20` injects deterministic
//! latency. Under that weather the contracts still hold: every
//! submission ends in exactly one typed response, repeated faults trip
//! the tenant's breaker (and a cooldown half-opens it), and healthy
//! kernels that fit the budget keep completing.

use catt_core::engine::Engine;
use catt_serve::proto::{ErrorKind, Response, SubmitRequest};
use catt_serve::server::{ServeConfig, Server};
use std::sync::mpsc;
use std::sync::Once;
use std::time::Duration;

static PLAN: Once = Once::new();

/// Arm the fault plan (idempotent; every test calls this first, before
/// building an engine, so `Engine::new()` and `GpuConfig::fuel_budget`
/// both see it).
fn arm_chaos() {
    PLAN.call_once(|| std::env::set_var("CATT_FAULT_PLAN", "fuel=2000,delay-job=20"));
}

/// Exhausts any 2000-cycle budget: one warp grinds a long loop while the
/// other parks at the barrier (the guardrails suite's starvation shape).
const STARVING_KERNEL: &str = "__global__ void starve(float *a, int n) {
         int w = threadIdx.x / 32;
         if (w == 0) {
             for (int j = 0; j < n; j++) { a[j % 32] += 1.0; }
         }
         __syncthreads();
         a[threadIdx.x] = 2.0;
     }";

/// Small enough to finish inside 2000 cycles even under chaos; `tag`
/// varies the content digest.
fn tiny_kernel(tag: u32) -> String {
    format!(
        "__global__ void t(float *a, int n) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < n) {{ a[i] = a[i] + {tag}.0f; }}
         }}"
    )
}

fn config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_high_water: 64,
        quota_rate: u64::MAX / 4,
        quota_burst: u64::MAX / 4,
        default_deadline_ms: 30_000,
        breaker_threshold: 2,
        breaker_cooldown_ms: 200,
        drain_grace_ms: 5_000,
        quantum: 1 << 26,
    }
}

fn starve_req(tenant: &str) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_string(),
        kernel_source: STARVING_KERNEL.to_string(),
        name: String::new(),
        grid: 1,
        block: 64,
        args: "f:64,si:1000000".to_string(),
        deadline_ms: Some(20_000),
        weight: 1,
        emit: false,
    }
}

fn tiny_req(tenant: &str, tag: u32) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_string(),
        kernel_source: tiny_kernel(tag),
        name: String::new(),
        grid: 1,
        block: 32,
        args: "f:32,si:32".to_string(),
        deadline_ms: Some(20_000),
        weight: 1,
        emit: false,
    }
}

fn recv(rx: &mpsc::Receiver<Response>, what: &str) -> Response {
    rx.recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|_| panic!("no response within 60s for {what} — a request hung"))
}

fn error_kind(resp: &Response) -> Option<ErrorKind> {
    match resp {
        Response::Error(e) => Some(e.kind),
        _ => None,
    }
}

/// Repeated fuel-exhaustion faults open the tenant's breaker; after the
/// cooldown exactly one probe is admitted (half-open), and its failure
/// re-opens the breaker.
#[test]
fn breaker_trips_then_half_opens_one_probe() {
    arm_chaos();
    let server = Server::new(
        ServeConfig {
            workers: 1,
            ..config()
        },
        Engine::new(),
    );
    let one = |label: &str| {
        let (tx, rx) = mpsc::channel();
        server.submit(label.to_string(), starve_req("chaos-tenant"), tx);
        recv(&rx, label)
    };
    assert_eq!(error_kind(&one("f1")), Some(ErrorKind::Fault));
    assert_eq!(error_kind(&one("f2")), Some(ErrorKind::Fault));
    // Threshold reached: shed at admission with a retry hint, no quota
    // charged, no simulation run.
    let shed = one("f3");
    assert_eq!(error_kind(&shed), Some(ErrorKind::CircuitOpen));
    if let Response::Error(e) = &shed {
        assert!(e.retry_after_ms.is_some(), "open breaker must hint retry");
    }
    // Cooldown elapses: one probe goes through (and faults again)...
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(error_kind(&one("probe")), Some(ErrorKind::Fault));
    // ...which re-opens the breaker immediately.
    assert_eq!(error_kind(&one("f4")), Some(ErrorKind::CircuitOpen));
    server.drain();
}

/// A faulting tenant's breaker does not leak onto other tenants, and
/// kernels that fit the chaotic fuel budget still complete.
#[test]
fn chaos_is_contained_per_tenant() {
    arm_chaos();
    let server = Server::new(config(), Engine::new());
    // Trip tenant `noisy`'s breaker with serial faults.
    for i in 0..2 {
        let (tx, rx) = mpsc::channel();
        server.submit(format!("n{i}"), starve_req("noisy"), tx);
        assert_eq!(
            error_kind(&recv(&rx, "noisy fault")),
            Some(ErrorKind::Fault)
        );
    }
    let (tx, rx) = mpsc::channel();
    server.submit("n2".into(), starve_req("noisy"), tx);
    assert_eq!(
        error_kind(&recv(&rx, "noisy post-trip")),
        Some(ErrorKind::CircuitOpen)
    );
    // A healthy tenant's small kernel still completes under the plan.
    let (tx, rx) = mpsc::channel();
    server.submit("h0".into(), tiny_req("healthy", 1), tx);
    assert!(
        matches!(recv(&rx, "healthy tenant"), Response::Result(_)),
        "another tenant's faults must not shed healthy work"
    );
    server.drain();
}

/// The zero-hung / zero-lost contract under chaos: a mixed burst of
/// starving and healthy submissions across tenants gets exactly one
/// typed response each.
#[test]
fn every_chaotic_submission_gets_one_typed_response() {
    arm_chaos();
    let server = Server::new(config(), Engine::new());
    let receivers: Vec<_> = (0..12)
        .map(|i| {
            let (tx, rx) = mpsc::channel();
            let tenant = format!("t{}", i % 3);
            let req = if i % 2 == 0 {
                starve_req(&tenant)
            } else {
                tiny_req(&tenant, i as u32)
            };
            server.submit(format!("c{i}"), req, tx);
            rx
        })
        .collect();
    let mut ok = 0;
    let mut typed_errors = 0;
    for (i, rx) in receivers.iter().enumerate() {
        match recv(rx, &format!("chaos burst c{i}")) {
            Response::Result(_) => ok += 1,
            Response::Error(_) => typed_errors += 1,
            Response::Info { .. } => panic!("submit answered with info"),
        }
    }
    assert_eq!(ok + typed_errors, 12, "exactly one response per submission");
    assert!(ok >= 1, "healthy kernels should complete under the plan");
    assert!(
        typed_errors >= 1,
        "starving kernels should fault under fuel=2000"
    );
    server.drain();
}

/// Malformed-source clients under the same chaos plan: every submission
/// still finishes (zero hangs), every compile rejection is typed
/// `compile-error`, and every one carries ≥1 structured diagnostic with
/// a stable code and an in-bounds span — on the wire, through a full
/// render/parse round trip.
#[test]
fn malformed_sources_are_rejected_with_spanned_diagnostics() {
    arm_chaos();
    let server = Server::new(config(), Engine::new());
    let malformed: Vec<String> = vec![
        // Statement-level garbage: two separate errors to recover past.
        "__global__ void k(float *a, int n) { a[0] = ; int x = @; }".to_string(),
        // Truncated mid-body.
        "__global__ void k(float *a, int n) { for (int i = 0; i < n; i++) {".to_string(),
        // Unterminated comment.
        "__global__ void k(float *a) { /* never closed".to_string(),
        // Lexer garbage bytes.
        "__global__ void k(float *a) { a[0] = 1.0; } \u{1}\u{2}$$".to_string(),
        // Parses fine, but the requested kernel name is absent.
        tiny_kernel(7),
    ];
    let receivers: Vec<_> = malformed
        .iter()
        .enumerate()
        .map(|(i, src)| {
            let (tx, rx) = mpsc::channel();
            server.submit(
                format!("m{i}"),
                SubmitRequest {
                    tenant: "mangler".to_string(),
                    kernel_source: src.clone(),
                    // The last source is valid but we ask for a kernel
                    // that is not there.
                    name: if i == 4 {
                        "ghost".to_string()
                    } else {
                        String::new()
                    },
                    grid: 1,
                    block: 32,
                    args: String::new(),
                    deadline_ms: Some(20_000),
                    weight: 1,
                    emit: false,
                },
                tx,
            );
            rx
        })
        .collect();
    for (i, rx) in receivers.iter().enumerate() {
        let resp = recv(rx, &format!("malformed m{i}"));
        // Round-trip through the NDJSON wire form: the structured
        // diagnostics must survive serialization.
        let wire = resp.render();
        let back = catt_serve::proto::parse_response(&wire)
            .unwrap_or_else(|e| panic!("m{i}: response line unparseable: {e}\n{wire}"));
        let Response::Error(e) = back else {
            panic!("m{i}: malformed source must be rejected, got {wire}");
        };
        assert_eq!(e.kind, ErrorKind::CompileError, "m{i}: {}", e.message);
        assert!(
            !e.diagnostics.is_empty(),
            "m{i}: rejection must carry structured diagnostics: {}",
            e.message
        );
        for d in &e.diagnostics {
            assert!(!d.code.as_str().is_empty(), "m{i}: stable code");
            if let Some(span) = d.span {
                assert!(
                    span.in_bounds(malformed[i].len()),
                    "m{i}: span {}..{} out of bounds for {}-byte source",
                    span.start,
                    span.end,
                    malformed[i].len()
                );
            }
        }
        // At least one diagnostic pins a source location.
        assert!(
            e.diagnostics.iter().any(|d| d.span.is_some()),
            "m{i}: at least one diagnostic must carry a span"
        );
    }
    server.drain();
}
