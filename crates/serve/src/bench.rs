//! `catt serve-bench`: the chaos-driven load harness.
//!
//! Spawns thousands of synthetic clients (default 1000) against an
//! in-process serve daemon — either calling the admission path directly
//! (`--transport inproc`) or through real TCP connections multiplexed by
//! response id (`--transport tcp`, a handful of sockets shared by all
//! clients so the harness never exhausts file descriptors). Kernel
//! popularity is Zipf-distributed over a generated corpus, so the
//! content-addressed cache and single-flight layers see a realistic
//! skewed workload.
//!
//! Chaos runs are the same harness under `CATT_FAULT_PLAN` (e.g.
//! `delay-job=2,panic-job=7,fuel=2000`): the engine injects latency,
//! panics, and fuel exhaustion, and the harness checks the contract that
//! matters — **every request ends in exactly one typed response**, shed
//! or served, never hung or silently dropped. The run fails (non-zero
//! exit) on any hung/lost request.
//!
//! Output: `BENCH_serve.json` with latency percentiles, throughput, shed
//! rate, per-tenant fairness spread, and cache/coalesce hit rates.

use crate::json::{obj, Json};
use crate::proto::{parse_response, ErrorKind, Response, SubmitRequest};
use crate::server::{engine_from_env, ServeConfig, Server};
use catt_prng::Rng;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Harness options (see `catt serve-bench --help`).
pub struct BenchOptions {
    pub clients: usize,
    pub requests_per_client: usize,
    pub kernels: usize,
    pub tenants: usize,
    pub transport: Transport,
    pub out_path: String,
    pub seed: u64,
    /// Percentage of requests that submit a deliberately mangled source
    /// (lexer garbage spliced in). Exercises the compile-error path: the
    /// harness hard-fails if any rejection arrives without structured
    /// diagnostics or with an out-of-bounds span.
    pub malformed_pct: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Clients call the admission path directly (measures the serve core).
    Inproc,
    /// Clients share a small pool of real TCP connections.
    Tcp,
}

impl Default for BenchOptions {
    fn default() -> BenchOptions {
        BenchOptions {
            clients: 1000,
            requests_per_client: 2,
            kernels: 8,
            tenants: 8,
            transport: Transport::Inproc,
            out_path: "BENCH_serve.json".to_string(),
            seed: 0xCA77,
            malformed_pct: 10,
        }
    }
}

/// Generate the kernel corpus: `count` distinct kernels (different
/// constants → different content digests), each with a cache-straining
/// inner loop so CATT has something to throttle.
fn corpus(count: usize) -> Vec<(String, String)> {
    (0..count)
        .map(|i| {
            let name = format!("bk{i}");
            let src = format!(
                "__global__ void {name}(float *a, float *b, int n) {{
                     int i = blockIdx.x * blockDim.x + threadIdx.x;
                     if (i < n) {{
                         float acc = 0.0f;
                         for (int j = 0; j < 8; j++) {{
                             acc += a[(i * 7 + j * {step}) % n] * {scale}.0f;
                         }}
                         b[i] = acc;
                     }}
                 }}",
                step = 13 + i,
                scale = i + 2,
            );
            (name, src)
        })
        .collect()
}

/// Zipf(s=1) cumulative distribution over `n` ranks.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_zipf(cdf: &[f64], rng: &mut Rng) -> usize {
    let u = rng.f64();
    cdf.iter().position(|&c| u <= c).unwrap_or(cdf.len() - 1)
}

/// One client's record of one request.
struct Sample {
    tenant: usize,
    latency_us: u64,
    outcome: &'static str,
    source: Option<&'static str>,
    /// A `compile-error` response arrived without structured diagnostics.
    diag_missing: bool,
    /// A diagnostic span fell outside the submitted source.
    span_oob: bool,
}

/// Splice lexer garbage into a source at a PRNG-chosen byte (always a
/// guaranteed `E001`, so a mangled submission is always a compile error).
fn mangle(src: &str, rng: &mut Rng) -> String {
    let at = rng.bounded_u64(src.len().max(1) as u64) as usize;
    // Snap to a char boundary (corpus is ASCII, but stay safe).
    let at = (0..=at)
        .rev()
        .find(|&i| src.is_char_boundary(i))
        .unwrap_or(0);
    format!("{}@{}", &src[..at], &src[at..])
}

/// A TCP connection shared by many clients: writer guarded by a mutex,
/// one demux thread routing response lines by id.
struct SharedConn {
    writer: Mutex<TcpStream>,
    pending: Arc<Mutex<HashMap<String, mpsc::Sender<Response>>>>,
}

impl SharedConn {
    fn connect(addr: &str) -> std::io::Result<SharedConn> {
        let stream = TcpStream::connect(addr)?;
        let pending: Arc<Mutex<HashMap<String, mpsc::Sender<Response>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let demux_pending = Arc::clone(&pending);
        let read_half = stream.try_clone()?;
        std::thread::spawn(move || {
            let reader = BufReader::new(read_half);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if let Ok(resp) = parse_response(&line) {
                    let tx = demux_pending.lock().unwrap().remove(resp.id());
                    if let Some(tx) = tx {
                        let _ = tx.send(resp);
                    }
                }
            }
        });
        Ok(SharedConn {
            writer: Mutex::new(stream),
            pending,
        })
    }

    fn request(&self, id: &str, line: &str, timeout: Duration) -> Option<Response> {
        let (tx, rx) = mpsc::channel();
        self.pending.lock().unwrap().insert(id.to_string(), tx);
        {
            let mut w = self.writer.lock().unwrap();
            if writeln!(w, "{line}").is_err() {
                self.pending.lock().unwrap().remove(id);
                return None;
            }
        }
        match rx.recv_timeout(timeout) {
            Ok(resp) => Some(resp),
            Err(_) => {
                self.pending.lock().unwrap().remove(id);
                None
            }
        }
    }
}

fn outcome_token(resp: &Response) -> &'static str {
    match resp {
        Response::Result(_) => "ok",
        Response::Error(e) => e.kind.token(),
        Response::Info { .. } => "info",
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the harness. Returns `Err` with a diagnostic when the zero-hung /
/// zero-lost contract is violated (the CLI exits non-zero).
pub fn run(opts: &BenchOptions) -> Result<Json, String> {
    let fault_plan = std::env::var("CATT_FAULT_PLAN").unwrap_or_default();
    let server = Arc::new(Server::new(ServeConfig::from_env(), engine_from_env()));
    let kernels = Arc::new(corpus(opts.kernels));
    let cdf = Arc::new(zipf_cdf(opts.kernels));
    let total_requests = opts.clients * opts.requests_per_client;
    eprintln!(
        "[serve-bench] {} clients x {} requests over {} kernels, {} tenants, {}% malformed, \
         {:?} transport{}",
        opts.clients,
        opts.requests_per_client,
        opts.kernels,
        opts.tenants,
        opts.malformed_pct,
        opts.transport,
        if fault_plan.is_empty() {
            " (clean)".to_string()
        } else {
            format!(" (chaos: {fault_plan})")
        }
    );

    // TCP mode: host the daemon on a loopback listener and share a small
    // connection pool across all clients (bounded fds).
    let conns: Arc<Vec<SharedConn>> = if opts.transport == Transport::Tcp {
        let listener =
            std::net::TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .to_string();
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        {
            let server = Arc::clone(&server);
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let server = Arc::clone(&server);
                        std::thread::spawn(move || crate::front::conn_for_bench(server, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            });
        }
        let pool = (0..16.min(opts.clients.max(1)))
            .map(|_| SharedConn::connect(&addr))
            .collect::<std::io::Result<Vec<_>>>()
            .map_err(|e| format!("connect: {e}"))?;
        Arc::new(pool)
    } else {
        Arc::new(Vec::new())
    };

    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let hung: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let mut handles = Vec::new();
    for client in 0..opts.clients {
        let server = Arc::clone(&server);
        let kernels = Arc::clone(&kernels);
        let cdf = Arc::clone(&cdf);
        let samples = Arc::clone(&samples);
        let hung = Arc::clone(&hung);
        let conns = Arc::clone(&conns);
        let (requests, tenants, seed, transport, malformed_pct) = (
            opts.requests_per_client,
            opts.tenants,
            opts.seed,
            opts.transport,
            opts.malformed_pct,
        );
        let handle = std::thread::Builder::new()
            .name(format!("bench-client-{client}"))
            .stack_size(128 * 1024)
            .spawn(move || {
                let mut rng = Rng::seed(seed ^ (client as u64).wrapping_mul(0x9E37_79B9));
                let tenant = client % tenants;
                for r in 0..requests {
                    let ki = sample_zipf(&cdf, &mut rng);
                    let (name, src) = &kernels[ki];
                    let grid = if rng.bool(0.5) { 4 } else { 8 };
                    let id = format!("c{client}-r{r}");
                    let mangled = rng.bool(malformed_pct as f64 / 100.0);
                    let sent_src = if mangled {
                        mangle(src, &mut rng)
                    } else {
                        src.clone()
                    };
                    let req = SubmitRequest {
                        tenant: format!("tenant-{tenant}"),
                        kernel_source: sent_src.clone(),
                        name: if mangled { String::new() } else { name.clone() },
                        grid,
                        block: 64,
                        args: "f:1024,f:1024,si:1024".to_string(),
                        deadline_ms: Some(30_000),
                        weight: 1,
                        emit: false,
                    };
                    let t0 = Instant::now();
                    let resp = match transport {
                        Transport::Inproc => {
                            let (tx, rx) = mpsc::channel();
                            server.submit(id.clone(), req, tx);
                            rx.recv_timeout(Duration::from_secs(120)).ok()
                        }
                        Transport::Tcp => {
                            let line = submit_line(&id, &req);
                            let conn = &conns[client % conns.len()];
                            conn.request(&id, &line, Duration::from_secs(120))
                        }
                    };
                    let latency_us = t0.elapsed().as_micros() as u64;
                    match resp {
                        Some(resp) => {
                            let source = match &resp {
                                Response::Result(r) => Some(r.source),
                                _ => None,
                            };
                            let (mut diag_missing, mut span_oob) = (false, false);
                            if let Response::Error(e) = &resp {
                                if e.kind == ErrorKind::CompileError {
                                    diag_missing = e.diagnostics.is_empty();
                                    span_oob = e
                                        .diagnostics
                                        .iter()
                                        .filter_map(|d| d.span)
                                        .any(|s| !s.in_bounds(sent_src.len()));
                                }
                            }
                            samples.lock().unwrap().push(Sample {
                                tenant,
                                latency_us,
                                outcome: outcome_token(&resp),
                                source,
                                diag_missing,
                                span_oob,
                            });
                        }
                        None => hung.lock().unwrap().push(id),
                    }
                }
            })
            .map_err(|e| format!("spawn client {client}: {e}"))?;
        handles.push(handle);
    }
    for h in handles {
        h.join().map_err(|_| "client thread panicked".to_string())?;
    }
    let wall = started.elapsed();
    server.drain();

    let samples = Arc::try_unwrap(samples)
        .map_err(|_| "samples still shared")?
        .into_inner()
        .unwrap();
    let hung = hung.lock().unwrap().clone();

    // The contract: every request produced exactly one typed response.
    if !hung.is_empty() {
        return Err(format!(
            "{} of {} requests hung (no response within timeout): {:?}...",
            hung.len(),
            total_requests,
            &hung[..hung.len().min(5)]
        ));
    }
    if samples.len() != total_requests {
        return Err(format!(
            "response count {} != request count {total_requests} (lost requests)",
            samples.len()
        ));
    }
    // The diagnostics contract: every compile-error rejection carries
    // structured diagnostics with in-bounds spans.
    let compile_errors = samples
        .iter()
        .filter(|s| s.outcome == "compile-error")
        .count() as u64;
    let diag_missing = samples.iter().filter(|s| s.diag_missing).count() as u64;
    let span_oob = samples.iter().filter(|s| s.span_oob).count() as u64;
    if diag_missing > 0 || span_oob > 0 {
        return Err(format!(
            "{diag_missing} compile-error responses lacked structured diagnostics, \
             {span_oob} carried out-of-bounds spans (of {compile_errors} compile errors)"
        ));
    }

    // Aggregate.
    let mut outcome_counts: HashMap<&'static str, u64> = HashMap::new();
    let mut per_tenant_ok: HashMap<usize, u64> = HashMap::new();
    let mut source_counts: HashMap<&'static str, u64> = HashMap::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(samples.len());
    let mut ok_latencies: Vec<u64> = Vec::new();
    for s in &samples {
        *outcome_counts.entry(s.outcome).or_insert(0) += 1;
        latencies.push(s.latency_us);
        if s.outcome == "ok" {
            ok_latencies.push(s.latency_us);
            *per_tenant_ok.entry(s.tenant).or_insert(0) += 1;
            if let Some(src) = s.source {
                *source_counts.entry(src).or_insert(0) += 1;
            }
        }
    }
    latencies.sort_unstable();
    ok_latencies.sort_unstable();
    let completed = ok_latencies.len() as u64;
    let shed = outcome_counts.get("overloaded").copied().unwrap_or(0)
        + outcome_counts.get("quota-exhausted").copied().unwrap_or(0)
        + outcome_counts.get("circuit-open").copied().unwrap_or(0);
    let (fair_min, fair_max) = per_tenant_ok
        .values()
        .fold((u64::MAX, 0u64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let fairness_spread = if completed > 0 && fair_min > 0 && fair_min != u64::MAX {
        fair_max as f64 / fair_min as f64
    } else {
        0.0
    };
    let cache = server.engine().cache_counters();
    let served_from_cache = source_counts.get("cache").copied().unwrap_or(0)
        + source_counts.get("coalesced").copied().unwrap_or(0);

    let mut outcome_fields: Vec<(String, Json)> = outcome_counts
        .iter()
        .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
        .collect();
    outcome_fields.sort_by(|a, b| a.0.cmp(&b.0));
    let mut tenant_fields: Vec<(String, Json)> = per_tenant_ok
        .iter()
        .map(|(t, v)| (format!("tenant-{t}"), Json::Num(*v as f64)))
        .collect();
    tenant_fields.sort_by(|a, b| a.0.cmp(&b.0));

    let report = obj(vec![
        ("bench", Json::Str("serve".to_string())),
        (
            "transport",
            Json::Str(
                match opts.transport {
                    Transport::Inproc => "inproc",
                    Transport::Tcp => "tcp",
                }
                .to_string(),
            ),
        ),
        ("fault_plan", Json::Str(fault_plan)),
        ("clients", Json::Num(opts.clients as f64)),
        ("requests", Json::Num(total_requests as f64)),
        ("kernels", Json::Num(opts.kernels as f64)),
        ("tenants", Json::Num(opts.tenants as f64)),
        ("wall_ms", Json::Num(wall.as_millis() as f64)),
        (
            "throughput_rps",
            Json::Num(total_requests as f64 / wall.as_secs_f64().max(1e-9)),
        ),
        ("completed", Json::Num(completed as f64)),
        ("shed_rate", Json::Num(shed as f64 / total_requests as f64)),
        ("hung", Json::Num(0.0)),
        ("malformed_pct", Json::Num(opts.malformed_pct as f64)),
        (
            "diagnostics",
            obj(vec![
                ("compile_errors", Json::Num(compile_errors as f64)),
                ("missing", Json::Num(diag_missing as f64)),
                ("span_out_of_bounds", Json::Num(span_oob as f64)),
            ]),
        ),
        ("outcomes", Json::Obj(outcome_fields)),
        (
            "latency_us",
            obj(vec![
                ("p50", Json::Num(percentile(&latencies, 0.50) as f64)),
                ("p95", Json::Num(percentile(&latencies, 0.95) as f64)),
                ("p99", Json::Num(percentile(&latencies, 0.99) as f64)),
                (
                    "max",
                    Json::Num(latencies.last().copied().unwrap_or(0) as f64),
                ),
            ]),
        ),
        (
            "ok_latency_us",
            obj(vec![
                ("p50", Json::Num(percentile(&ok_latencies, 0.50) as f64)),
                ("p95", Json::Num(percentile(&ok_latencies, 0.95) as f64)),
                ("p99", Json::Num(percentile(&ok_latencies, 0.99) as f64)),
            ]),
        ),
        (
            "fairness",
            obj(vec![
                ("per_tenant_completed", Json::Obj(tenant_fields)),
                ("spread_max_over_min", Json::Num(fairness_spread)),
            ]),
        ),
        (
            "cache",
            obj(vec![
                ("hits", Json::Num(cache.hits as f64)),
                ("misses", Json::Num(cache.misses as f64)),
                ("coalesced", Json::Num(cache.coalesced as f64)),
                (
                    "served_from_cache_or_coalesced",
                    Json::Num(served_from_cache as f64),
                ),
                (
                    "hit_rate",
                    Json::Num(if completed > 0 {
                        served_from_cache as f64 / completed as f64
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ]);
    Ok(report)
}

fn submit_line(id: &str, req: &SubmitRequest) -> String {
    obj(vec![
        ("id", Json::Str(id.to_string())),
        ("tenant", Json::Str(req.tenant.clone())),
        ("kernel", Json::Str(req.kernel_source.clone())),
        ("name", Json::Str(req.name.clone())),
        ("grid", Json::Num(req.grid as f64)),
        ("block", Json::Num(req.block as f64)),
        ("args", Json::Str(req.args.clone())),
        (
            "deadline_ms",
            req.deadline_ms.map_or(Json::Null, |d| Json::Num(d as f64)),
        ),
    ])
    .render()
}

/// CLI entry for `catt serve-bench`. Returns the process exit code.
pub fn bench_main(args: &[String]) -> u8 {
    let mut opts = BenchOptions::default();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).map(String::as_str);
        match args[i].as_str() {
            "--clients" => match need(i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    opts.clients = n;
                    i += 2;
                }
                None => return usage(),
            },
            "--requests" => match need(i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    opts.requests_per_client = n;
                    i += 2;
                }
                None => return usage(),
            },
            "--kernels" => match need(i).and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                Some(n) => {
                    opts.kernels = n;
                    i += 2;
                }
                None => return usage(),
            },
            "--tenants" => match need(i).and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                Some(n) => {
                    opts.tenants = n;
                    i += 2;
                }
                None => return usage(),
            },
            "--transport" => match need(i) {
                Some("inproc") => {
                    opts.transport = Transport::Inproc;
                    i += 2;
                }
                Some("tcp") => {
                    opts.transport = Transport::Tcp;
                    i += 2;
                }
                _ => return usage(),
            },
            "--out" => match need(i) {
                Some(p) => {
                    opts.out_path = p.to_string();
                    i += 2;
                }
                None => return usage(),
            },
            "--seed" => match need(i).and_then(|v| v.parse().ok()) {
                Some(s) => {
                    opts.seed = s;
                    i += 2;
                }
                None => return usage(),
            },
            "--malformed" => match need(i).and_then(|v| v.parse().ok()).filter(|&p| p <= 100) {
                Some(p) => {
                    opts.malformed_pct = p;
                    i += 2;
                }
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match run(&opts) {
        Ok(report) => {
            let text = report.render();
            if let Err(e) = std::fs::write(&opts.out_path, format!("{text}\n")) {
                eprintln!("serve-bench: cannot write {}: {e}", opts.out_path);
                return 1;
            }
            eprintln!("[serve-bench] wrote {}", opts.out_path);
            println!("{text}");
            0
        }
        Err(e) => {
            eprintln!("serve-bench: FAILED: {e}");
            1
        }
    }
}

fn usage() -> u8 {
    eprintln!(
        "usage: catt serve-bench [--clients N] [--requests N] [--kernels K] [--tenants T] \
         [--transport inproc|tcp] [--out FILE] [--seed S] [--malformed PCT]"
    );
    2
}
