//! Per-tenant circuit breaker over simulation faults.
//!
//! A tenant repeatedly submitting kernels that panic the simulator (or
//! trip fatal `SimError`s) burns worker time that well-behaved tenants
//! paid for. After `threshold` consecutive fatal faults the tenant's
//! breaker opens: submissions are rejected instantly with `circuit-open`
//! and a retry-after. After `cooldown_ms` the breaker half-opens — one
//! probe request is admitted; success closes the breaker, another fatal
//! fault re-opens it for a fresh cooldown.
//!
//! Time is caller-supplied (`now_ms`) for deterministic tests, matching
//! [`crate::quota::TokenBucket`].

/// Breaker state (exposed for tests and the `stats` op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive-fault counter armed.
    Closed,
    /// Tripped: rejecting until the cooldown expires.
    Open,
    /// Cooldown expired: exactly one probe is in flight.
    HalfOpen,
}

/// A per-tenant circuit breaker.
#[derive(Debug, Clone)]
pub struct Breaker {
    threshold: u32,
    cooldown_ms: u64,
    state: BreakerState,
    /// Consecutive fatal faults while closed.
    fails: u32,
    /// When an open breaker may half-open.
    reopen_at_ms: u64,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive fatal
    /// faults, cooling down for `cooldown_ms`.
    pub fn new(threshold: u32, cooldown_ms: u64) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown_ms: cooldown_ms.max(1),
            state: BreakerState::Closed,
            fails: 0,
            reopen_at_ms: 0,
        }
    }

    /// Current state (advancing Open → HalfOpen is done by
    /// [`Breaker::commit`], not here — observation must not consume the
    /// probe slot).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a request from this tenant proceed at `now_ms`? `Err` carries
    /// the suggested retry-after in milliseconds. Non-consuming: an
    /// expired cooldown answers `Ok` for the would-be probe but the
    /// half-open slot is only taken by [`Breaker::commit`] — a request
    /// that passes this check and is then shed by a later admission gate
    /// (quota, queue depth) must not leak the probe, or the breaker
    /// would wedge half-open with no probe ever reporting back.
    pub fn check(&self, now_ms: u64) -> Result<(), u64> {
        match self.state {
            BreakerState::Closed => Ok(()),
            BreakerState::HalfOpen => Err(self.cooldown_ms),
            BreakerState::Open => {
                if now_ms >= self.reopen_at_ms {
                    Ok(())
                } else {
                    Err(self.reopen_at_ms - now_ms)
                }
            }
        }
    }

    /// Consume the half-open probe slot for a request that passed
    /// [`Breaker::check`] *and* every later admission gate — i.e. it is
    /// actually going to run, so [`Breaker::on_success`] or
    /// [`Breaker::on_fatal`] will eventually report back. A no-op unless
    /// the breaker is open with its cooldown expired.
    pub fn commit(&mut self, now_ms: u64) {
        if self.state == BreakerState::Open && now_ms >= self.reopen_at_ms {
            self.state = BreakerState::HalfOpen;
        }
    }

    /// [`Breaker::check`] + [`Breaker::commit`] in one step, for callers
    /// with no admission gates between the check and the enqueue.
    pub fn admit(&mut self, now_ms: u64) -> Result<(), u64> {
        self.check(now_ms)?;
        self.commit(now_ms);
        Ok(())
    }

    /// A request completed without a fatal simulation fault (typed
    /// rejections — quota, deadline, compile errors — also count as
    /// success: they prove the *service* is healthy for this tenant).
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.fails = 0;
    }

    /// A fatal simulation fault (worker panic or fatal `SimError`).
    pub fn on_fatal(&mut self, now_ms: u64) {
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open, fresh cooldown.
                self.state = BreakerState::Open;
                self.reopen_at_ms = now_ms + self.cooldown_ms;
            }
            BreakerState::Closed => {
                self.fails += 1;
                if self.fails >= self.threshold {
                    self.state = BreakerState::Open;
                    self.reopen_at_ms = now_ms + self.cooldown_ms;
                    self.fails = 0;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_faults() {
        let mut b = Breaker::new(3, 100);
        for _ in 0..2 {
            b.on_fatal(0);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // A success in between resets the run.
        b.on_success();
        b.on_fatal(0);
        b.on_fatal(0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_fatal(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(50), Err(50));
    }

    #[test]
    fn half_opens_on_timer_and_admits_one_probe() {
        let mut b = Breaker::new(1, 100);
        b.on_fatal(0);
        assert_eq!(b.admit(99), Err(1));
        // Cooldown expired: first admit is the probe, the second waits.
        assert_eq!(b.admit(100), Ok(()));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(100).is_err());
        // Probe succeeds → closed and clean.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(100), Ok(()));
    }

    #[test]
    fn checked_but_uncommitted_probe_is_not_consumed() {
        let mut b = Breaker::new(1, 100);
        b.on_fatal(0);
        // Cooldown expired: the check passes, but the request is shed by
        // a later admission gate, so commit never runs — the breaker
        // stays open and the probe slot survives for the next request.
        assert_eq!(b.check(100), Ok(()));
        assert_eq!(b.check(100), Ok(()));
        assert_eq!(b.state(), BreakerState::Open);
        // The next request takes the probe for real.
        assert_eq!(b.admit(100), Ok(()));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.check(100).is_err());
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let mut b = Breaker::new(1, 100);
        b.on_fatal(0);
        assert_eq!(b.admit(100), Ok(()));
        b.on_fatal(100);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(150), Err(50));
        assert_eq!(b.admit(200), Ok(()));
    }
}
