//! A minimal JSON reader/writer for the serve wire protocol.
//!
//! The workspace is dependency-free (offline build), so the NDJSON
//! protocol runs on this ~200-line recursive-descent parser instead of
//! `serde_json`. It covers the full JSON grammar — nested values, string
//! escapes including `\uXXXX` with surrogate pairs, exponent-form
//! numbers — with a recursion-depth guard so a hostile request cannot
//! blow the daemon's stack. Numbers are carried as `f64` (the protocol
//! never needs more than 53 bits of integer precision).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered (the writer round-trips field order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as `u64` (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render compactly (no whitespace), suitable for one NDJSON line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience: build an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the honest rendering
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document. Trailing non-whitespace is an error (NDJSON
/// lines carry exactly one value).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    const MAX_DEPTH: u32 = 64;

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.depth += 1;
        if self.depth > Self::MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        };
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00).ok_or("bad low surrogate")?;
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| "bad \\u escape".to_string())?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"id":"r1","n":3,"ok":true,"xs":[1,2.5,null],"s":"a\"b\\c\nd"}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("r1"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = parse(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, Json::Str("é😀".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"\\u12\"").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth guard");
    }

    #[test]
    fn control_chars_escape_on_write() {
        let s = Json::Str("a\u{1}b".to_string()).render();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("a\u{1}b".to_string()));
    }
}
