//! Weighted-fair dequeue: deficit round-robin over per-tenant queues.
//!
//! FIFO admission lets one chatty tenant starve everyone behind it. The
//! serve queue instead keeps one FIFO per tenant and dequeues by deficit
//! round-robin (Shreedhar & Varghese): each visit credits a tenant's
//! deficit counter with `quantum × weight`, and the tenant may dequeue
//! jobs while their cost fits the deficit. Over any busy interval each
//! tenant's served cost is then proportional to its weight, within an
//! additive bound of one quantum plus one maximum job cost — the classic
//! DRR fairness bound, checked by the property test below.

use std::collections::VecDeque;

struct TenantQueue<T> {
    tenant: String,
    weight: u64,
    deficit: u64,
    /// `(cost, item)` in arrival order.
    items: VecDeque<(u64, T)>,
}

/// A multi-tenant queue with weighted-fair dequeue. Not internally
/// synchronized — the server wraps it in its admission mutex.
pub struct FairQueue<T> {
    queues: Vec<TenantQueue<T>>,
    /// Round-robin cursor into `queues`.
    cursor: usize,
    /// Deficit credit per visit (multiplied by the tenant's weight).
    quantum: u64,
    len: usize,
}

impl<T> FairQueue<T> {
    /// A queue crediting `quantum` cost units per tenant visit.
    pub fn new(quantum: u64) -> FairQueue<T> {
        FairQueue {
            queues: Vec::new(),
            cursor: 0,
            quantum: quantum.max(1),
            len: 0,
        }
    }

    /// Total queued items across tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueue `item` for `tenant` with the given `cost` (same unit as
    /// the quantum; the serve layer uses estimated simulation fuel).
    /// `weight` updates the tenant's weight on every push (last wins).
    pub fn push(&mut self, tenant: &str, weight: u64, cost: u64, item: T) {
        let weight = weight.max(1);
        match self.queues.iter_mut().find(|q| q.tenant == tenant) {
            Some(q) => {
                q.weight = weight;
                q.items.push_back((cost, item));
            }
            None => self.queues.push(TenantQueue {
                tenant: tenant.to_string(),
                weight,
                deficit: 0,
                items: VecDeque::from([(cost, item)]),
            }),
        }
        self.len += 1;
    }

    /// Dequeue the next item under DRR. Returns `(tenant, cost, item)`.
    pub fn pop(&mut self) -> Option<(String, u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Each full round over the queues grows every nonempty tenant's
        // deficit by quantum×weight, so some front item becomes servable
        // in at most ceil(max_cost / quantum) rounds — the loop is finite.
        loop {
            if self.queues.is_empty() {
                return None;
            }
            if self.cursor >= self.queues.len() {
                self.cursor = 0;
            }
            let q = &mut self.queues[self.cursor];
            match q.items.front() {
                None => {
                    // Idle tenant: retire its queue (and its deficit —
                    // credit must not accumulate while idle, or a tenant
                    // could bank unfairness for later).
                    self.queues.swap_remove(self.cursor);
                    continue;
                }
                Some((cost, _)) => {
                    if q.deficit >= *cost {
                        let (cost, item) = q.items.pop_front().expect("front checked");
                        q.deficit -= cost;
                        let tenant = q.tenant.clone();
                        if q.items.is_empty() {
                            self.queues.swap_remove(self.cursor);
                        }
                        self.len -= 1;
                        return Some((tenant, cost, item));
                    }
                    q.deficit = q.deficit.saturating_add(self.quantum * q.weight);
                    self.cursor += 1;
                }
            }
        }
    }

    /// Drain everything (tenant order, arrival order within a tenant) —
    /// used by graceful drain to answer queued requests on shutdown.
    pub fn drain_all(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for q in &mut self.queues {
            out.extend(q.items.drain(..).map(|(_, item)| item));
        }
        self.queues.clear();
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_prng::Rng;
    use std::collections::HashMap;

    /// Property (DRR fairness bound): tenants kept continuously busy are
    /// served cost proportional to weight, within an additive slack of
    /// one quantum + one max job cost per tenant.
    #[test]
    fn served_cost_tracks_weights_within_the_drr_bound() {
        for trial in 0..20u64 {
            let mut rng = Rng::seed(0xD88 + trial);
            let quantum = rng.range_u32(10, 200) as u64;
            let max_cost = rng.range_u32(1, 300) as u64;
            let mut fq = FairQueue::new(quantum);
            let tenants: Vec<(String, u64)> = (0..rng.range_usize(2, 6))
                .map(|i| (format!("t{i}"), rng.range_u32(1, 5) as u64))
                .collect();
            // Keep every tenant saturated for the whole measured
            // interval: more items each than total pops, so no queue can
            // drain (the DRR bound is for continuously-backlogged
            // tenants).
            for (name, w) in &tenants {
                for _ in 0..700 {
                    fq.push(name, *w, rng.bounded_u64(max_cost) + 1, ());
                }
            }
            let mut served: HashMap<String, u64> = HashMap::new();
            // Serve a long busy interval but leave every queue nonempty
            // (the bound is for continuously-backlogged tenants).
            for _ in 0..600 {
                let (tenant, cost, ()) = fq.pop().expect("queues stay backlogged");
                *served.entry(tenant).or_insert(0) += cost;
            }
            // DRR bound: deficit_i stays below max_cost + quantum·w_i,
            // and visit counts differ by at most one round, so normalized
            // service (served/weight) differs by at most roughly
            // max_cost + quantum·(w_max + 1) between backlogged tenants.
            let w_max = tenants.iter().map(|(_, w)| *w).max().unwrap();
            let slack = (max_cost + quantum * (w_max + 1)) as f64;
            for (a, wa) in &tenants {
                for (b, wb) in &tenants {
                    let sa = served.get(a).copied().unwrap_or(0) as f64 / *wa as f64;
                    let sb = served.get(b).copied().unwrap_or(0) as f64 / *wb as f64;
                    // Normalized service may differ by at most one visit's
                    // worth of credit per unit weight, give or take one job.
                    assert!(
                        (sa - sb).abs() <= 2.0 * slack,
                        "trial {trial}: unfair split {a}:{sa:.0} vs {b}:{sb:.0} \
                         (slack {slack}, quantum {quantum}, max_cost {max_cost})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut fq = FairQueue::new(10);
        for i in 0..5 {
            fq.push("t", 1, 3, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| fq.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn idle_tenants_bank_no_credit() {
        let mut fq = FairQueue::new(10);
        fq.push("a", 1, 10, 'a');
        assert_eq!(fq.pop().unwrap().2, 'a');
        // `a` went idle; its queue (and deficit) retire. A burst later
        // must round-robin from scratch, not burn banked credit.
        fq.push("b", 1, 10, 'b');
        fq.push("a", 1, 10, 'x');
        let first = fq.pop().unwrap();
        let second = fq.pop().unwrap();
        assert_eq!(fq.len(), 0);
        assert_ne!(first.0, second.0, "both tenants served exactly once");
    }

    #[test]
    fn drain_returns_everything() {
        let mut fq = FairQueue::new(5);
        fq.push("a", 1, 1, 1);
        fq.push("b", 2, 1, 2);
        fq.push("a", 1, 1, 3);
        let drained = fq.drain_all();
        assert_eq!(drained.len(), 3);
        assert!(fq.is_empty());
        assert!(fq.pop().is_none());
    }
}
