//! The serve core: admission control, weighted-fair scheduling, worker
//! pool, deadline propagation, circuit breakers, and graceful drain.
//!
//! Request lifecycle (see DESIGN.md "catt-serve: service architecture &
//! failure model"):
//!
//! ```text
//! line ──parse──▶ admission ──▶ fair queue ──▶ worker ──▶ response
//!                  │ drain?  ──▶ overloaded (draining)
//!                  │ breaker ──▶ circuit-open (+retry-after)
//!                  │ depth   ──▶ overloaded (+retry-after)
//!                  │ quota   ──▶ quota-exhausted (+retry-after)
//! ```
//!
//! Gate order matters: the breaker is *checked* first (an open breaker
//! must not charge quota) but its half-open probe slot is only
//! *committed* after every other gate passes, and depth precedes quota so
//! a shed-as-overloaded submission never drains the tenant's bucket.
//!
//! Every admitted request terminates in exactly one typed response: the
//! worker answers expired jobs without simulating, the deadline reaper
//! cancels running simulations through their [`CancelToken`], and drain
//! answers whatever is still queued. Identical submissions (same kernel,
//! launch, arguments — tenant excluded) coalesce through the engine's
//! single-flight layer onto one simulation.

use crate::breaker::Breaker;
use crate::fair::FairQueue;
use crate::json::{obj, Json};
use crate::proto::{
    parse_request, ErrorBody, ErrorKind, Op, Request, Response, ResultBody, SubmitRequest,
};
use crate::quota::TokenBucket;
use catt_core::engine::{Engine, JobError, SimSource};
use catt_core::pipeline::{CompiledKernel, Pipeline};
use catt_diag::{codes, Diagnostic};
use catt_frontend::parse_module;
use catt_ir::kernel::{Kernel, LaunchConfig, ParamTy};
use catt_ir::types::DType;
use catt_sim::{Arg, CancelToken, GlobalMem, Gpu, GpuConfig, SimError, FUEL_BASE, FUEL_PER_BYTE};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serve tuning knobs, each with a `CATT_SERVE_*` environment override
/// (documented in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulation worker threads (`CATT_SERVE_WORKERS`).
    pub workers: usize,
    /// Admission-queue high-water mark: submissions past this depth shed
    /// with `overloaded` (`CATT_SERVE_QUEUE`).
    pub queue_high_water: usize,
    /// Per-tenant token-bucket refill, fuel units/second
    /// (`CATT_SERVE_QUOTA_RATE`).
    pub quota_rate: u64,
    /// Per-tenant burst capacity, fuel units (`CATT_SERVE_QUOTA_BURST`).
    pub quota_burst: u64,
    /// Deadline applied when a request names none, ms
    /// (`CATT_SERVE_DEADLINE_MS`).
    pub default_deadline_ms: u64,
    /// Consecutive fatal faults before a tenant's breaker opens
    /// (`CATT_SERVE_BREAKER_THRESHOLD`).
    pub breaker_threshold: u32,
    /// Open-breaker cooldown before the half-open probe, ms
    /// (`CATT_SERVE_BREAKER_COOLDOWN_MS`).
    pub breaker_cooldown_ms: u64,
    /// Graceful-drain grace period before in-flight work is cancelled,
    /// ms (`CATT_SERVE_DRAIN_MS`).
    pub drain_grace_ms: u64,
    /// DRR quantum, fuel units per tenant visit (`CATT_SERVE_QUANTUM`).
    pub quantum: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig::from_env()
    }
}

impl ServeConfig {
    /// Defaults with `CATT_SERVE_*` overrides applied.
    pub fn from_env() -> ServeConfig {
        ServeConfig {
            workers: env_u64("CATT_SERVE_WORKERS", 2) as usize,
            queue_high_water: env_u64("CATT_SERVE_QUEUE", 64) as usize,
            quota_rate: env_u64("CATT_SERVE_QUOTA_RATE", 64 * FUEL_BASE),
            quota_burst: env_u64("CATT_SERVE_QUOTA_BURST", 256 * FUEL_BASE),
            default_deadline_ms: env_u64("CATT_SERVE_DEADLINE_MS", 10_000),
            breaker_threshold: env_u64("CATT_SERVE_BREAKER_THRESHOLD", 5) as u32,
            breaker_cooldown_ms: env_u64("CATT_SERVE_BREAKER_COOLDOWN_MS", 1_000),
            drain_grace_ms: env_u64("CATT_SERVE_DRAIN_MS", 5_000),
            quantum: env_u64("CATT_SERVE_QUANTUM", 4 * FUEL_BASE),
        }
    }
}

/// Estimated simulation fuel for a submission — the quota and fairness
/// cost unit. Footprint comes from the argument spec (buffer lengths);
/// requests with derived arguments are charged the default footprint.
pub fn fuel_cost(req: &SubmitRequest) -> u64 {
    let mut bytes = 0u64;
    for part in req.args.split(',').filter(|p| !p.is_empty()) {
        if let Some((ty, val)) = part.split_once(':') {
            if matches!(ty, "f" | "i") {
                bytes = bytes.saturating_add(val.trim().parse::<u64>().unwrap_or(0) * 4);
            }
        }
    }
    if bytes == 0 {
        bytes = DERIVED_BUF_LEN as u64 * 4;
    }
    FUEL_BASE.saturating_add(bytes.saturating_mul(FUEL_PER_BYTE))
}

/// Buffer length used when a request derives arguments from parameter
/// types instead of supplying an `args` spec.
const DERIVED_BUF_LEN: u32 = 1024;

/// Hard ceiling on a request deadline (5 minutes).
const MAX_DEADLINE_MS: u64 = 300_000;

/// One admitted job, queued for a worker.
struct Job {
    id: String,
    req: SubmitRequest,
    admitted: Instant,
    deadline: Instant,
    cancel: CancelToken,
    reply: mpsc::Sender<Response>,
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_quota: AtomicU64,
    shed_breaker: AtomicU64,
    bad_request: AtomicU64,
    compile_error: AtomicU64,
    deadline_exceeded: AtomicU64,
    faults: AtomicU64,
}

struct QueueState {
    queue: FairQueue<Job>,
    quotas: HashMap<String, TokenBucket>,
    breakers: HashMap<String, Breaker>,
    /// Jobs currently held by workers.
    running: usize,
    /// Cancel tokens of running jobs (for hard drain).
    running_tokens: Vec<CancelToken>,
    /// Worker threads alive (drain waits for them to finish).
    workers_alive: usize,
}

/// Deadline reaper bookkeeping: `(fire_at, token)` for running sims.
struct ReaperState {
    entries: Vec<(Instant, CancelToken)>,
    stop: bool,
}

struct Inner {
    config: ServeConfig,
    engine: Engine,
    pipe: Pipeline,
    base_config: GpuConfig,
    state: Mutex<QueueState>,
    /// Signals workers: queue non-empty or draining.
    work_cv: Condvar,
    /// Signals drain: a job finished / a worker exited.
    idle_cv: Condvar,
    reaper: Mutex<ReaperState>,
    reaper_cv: Condvar,
    epoch: Instant,
    draining: AtomicBool,
    counters: Counters,
}

/// The daemon core. Construction spawns the worker pool and the deadline
/// reaper; [`Server::drain`] (idempotent) winds everything down.
pub struct Server {
    inner: Arc<Inner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// A server over `engine` (callers pick the cache mode — see
    /// [`engine_from_env`]) with the given tuning.
    pub fn new(config: ServeConfig, engine: Engine) -> Server {
        let base_config = GpuConfig::titan_v_1sm();
        let workers = config.workers.max(1);
        let inner = Arc::new(Inner {
            pipe: Pipeline::new(base_config.clone()),
            base_config,
            state: Mutex::new(QueueState {
                queue: FairQueue::new(config.quantum),
                quotas: HashMap::new(),
                breakers: HashMap::new(),
                running: 0,
                running_tokens: Vec::new(),
                workers_alive: workers,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            reaper: Mutex::new(ReaperState {
                entries: Vec::new(),
                stop: false,
            }),
            reaper_cv: Condvar::new(),
            epoch: Instant::now(),
            draining: AtomicBool::new(false),
            counters: Counters::default(),
            config,
            engine,
        });
        let mut threads = Vec::new();
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-reaper".to_string())
                    .spawn(move || reaper_loop(&inner))
                    .expect("spawn serve reaper"),
            );
        }
        Server {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Milliseconds since server start (the quota/breaker clock).
    fn now_ms(&self) -> u64 {
        self.inner.epoch.elapsed().as_millis() as u64
    }

    /// Parse and dispatch one request line. Responses (exactly one per
    /// line, including unparseable ones) go to `reply`. Returns `false`
    /// after a `shutdown` op completed its drain — the caller should stop
    /// reading.
    pub fn handle_line(&self, line: &str, reply: &mpsc::Sender<Response>) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        match parse_request(line) {
            Err((id, message)) => {
                self.inner
                    .counters
                    .bad_request
                    .fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Response::Error(ErrorBody {
                    id,
                    kind: ErrorKind::BadRequest,
                    message,
                    retry_after_ms: None,
                    diagnostics: Vec::new(),
                }));
                true
            }
            Ok(Request { id, op }) => match op {
                Op::Ping => {
                    let _ = reply.send(Response::Info {
                        id,
                        fields: obj(vec![("pong", Json::Bool(true))]),
                    });
                    true
                }
                Op::Stats => {
                    let _ = reply.send(Response::Info {
                        id,
                        fields: self.stats_json(),
                    });
                    true
                }
                Op::Shutdown => {
                    self.drain();
                    let _ = reply.send(Response::Info {
                        id,
                        fields: obj(vec![("drained", Json::Bool(true))]),
                    });
                    false
                }
                Op::Submit(req) => {
                    self.submit(id, req, reply.clone());
                    true
                }
            },
        }
    }

    /// Admission control: drain gate, circuit breaker, queue depth,
    /// quota — in that order — then weighted-fair enqueue. Rejections
    /// reply immediately; admissions reply from a worker later. The
    /// breaker's half-open probe slot is consumed only once the request
    /// is actually enqueued, so a probe shed by the depth or quota gate
    /// cannot wedge the breaker half-open with no probe in flight.
    pub fn submit(&self, id: String, req: SubmitRequest, reply: mpsc::Sender<Response>) {
        let c = &self.inner.counters;
        if self.inner.draining.load(Ordering::SeqCst) {
            c.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Error(ErrorBody {
                id,
                kind: ErrorKind::Overloaded,
                message: "server is draining (shutdown in progress)".to_string(),
                retry_after_ms: None,
                diagnostics: Vec::new(),
            }));
            return;
        }
        let now_ms = self.now_ms();
        let cost = fuel_cost(&req);
        let cfg = &self.inner.config;
        let mut st = self.inner.state.lock().unwrap();
        // Breaker first (check only: an open breaker must not charge
        // quota, and the half-open probe slot is committed below, after
        // every other gate passes).
        let breaker = st
            .breakers
            .entry(req.tenant.clone())
            .or_insert_with(|| Breaker::new(cfg.breaker_threshold, cfg.breaker_cooldown_ms));
        if let Err(retry_ms) = breaker.check(now_ms) {
            drop(st);
            c.shed_breaker.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Error(ErrorBody {
                id,
                kind: ErrorKind::CircuitOpen,
                message: format!(
                    "tenant `{}` circuit breaker is open after repeated simulation faults",
                    req.tenant
                ),
                retry_after_ms: Some(retry_ms),
                diagnostics: Vec::new(),
            }));
            return;
        }
        // Depth before quota: a submission the server never accepts must
        // not drain the tenant's bucket, or sustained overload would
        // follow up with spurious quota-exhausted once the backlog clears.
        if st.queue.len() >= cfg.queue_high_water {
            drop(st);
            c.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            // Retry-after scales with backlog per worker — honest
            // backpressure instead of a constant.
            let per_worker = cfg.queue_high_water / cfg.workers.max(1);
            let _ = reply.send(Response::Error(ErrorBody {
                id,
                kind: ErrorKind::Overloaded,
                message: format!("admission queue full ({} queued)", cfg.queue_high_water),
                retry_after_ms: Some((10 * per_worker.max(1) as u64).min(5_000)),
                diagnostics: Vec::new(),
            }));
            return;
        }
        let quota = st
            .quotas
            .entry(req.tenant.clone())
            .or_insert_with(|| TokenBucket::new(cfg.quota_burst, cfg.quota_rate, now_ms));
        if let Err(retry_ms) = quota.try_take(cost, now_ms) {
            drop(st);
            c.shed_quota.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Error(ErrorBody {
                id,
                kind: ErrorKind::QuotaExhausted,
                message: format!(
                    "tenant `{}` fuel quota exhausted (request cost {cost})",
                    req.tenant
                ),
                retry_after_ms: Some(retry_ms),
                diagnostics: Vec::new(),
            }));
            return;
        }
        // All gates passed — the request will run and report back, so the
        // half-open probe slot (if any) can safely be consumed now.
        if let Some(b) = st.breakers.get_mut(&req.tenant) {
            b.commit(now_ms);
        }
        let deadline_ms = req
            .deadline_ms
            .unwrap_or(cfg.default_deadline_ms)
            .clamp(1, MAX_DEADLINE_MS);
        let admitted = Instant::now();
        let job = Job {
            id,
            deadline: admitted + Duration::from_millis(deadline_ms),
            admitted,
            cancel: CancelToken::new(),
            reply,
            req,
        };
        c.admitted.fetch_add(1, Ordering::Relaxed);
        let (tenant, weight) = (job.req.tenant.clone(), job.req.weight);
        st.queue.push(&tenant, weight, cost, job);
        drop(st);
        self.inner.work_cv.notify_one();
    }

    /// Daemon counters as a JSON object (the `stats` op payload).
    pub fn stats_json(&self) -> Json {
        let c = &self.inner.counters;
        let cache = self.inner.engine.cache_counters();
        let st = self.inner.state.lock().unwrap();
        obj(vec![
            ("queue_depth", Json::Num(st.queue.len() as f64)),
            ("running", Json::Num(st.running as f64)),
            (
                "draining",
                Json::Bool(self.inner.draining.load(Ordering::SeqCst)),
            ),
            (
                "admitted",
                Json::Num(c.admitted.load(Ordering::Relaxed) as f64),
            ),
            (
                "completed",
                Json::Num(c.completed.load(Ordering::Relaxed) as f64),
            ),
            (
                "shed_overloaded",
                Json::Num(c.shed_overloaded.load(Ordering::Relaxed) as f64),
            ),
            (
                "shed_quota",
                Json::Num(c.shed_quota.load(Ordering::Relaxed) as f64),
            ),
            (
                "shed_breaker",
                Json::Num(c.shed_breaker.load(Ordering::Relaxed) as f64),
            ),
            (
                "bad_request",
                Json::Num(c.bad_request.load(Ordering::Relaxed) as f64),
            ),
            (
                "compile_error",
                Json::Num(c.compile_error.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_exceeded",
                Json::Num(c.deadline_exceeded.load(Ordering::Relaxed) as f64),
            ),
            ("faults", Json::Num(c.faults.load(Ordering::Relaxed) as f64)),
            ("cache_hits", Json::Num(cache.hits as f64)),
            ("cache_misses", Json::Num(cache.misses as f64)),
            ("coalesced", Json::Num(cache.coalesced as f64)),
        ])
    }

    /// Graceful drain (idempotent): stop admitting, give in-flight and
    /// queued work `drain_grace_ms` to finish, then cancel what remains
    /// (queued jobs answered `deadline-exceeded`, running simulations
    /// cancelled through their tokens), flush the simcache, and join the
    /// pool. Every admitted request still gets its one response.
    pub fn drain(&self) {
        let first = !self.inner.draining.swap(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        let grace_until = Instant::now() + Duration::from_millis(self.inner.config.drain_grace_ms);
        let mut st = self.inner.state.lock().unwrap();
        let mut aborted = false;
        while st.workers_alive > 0 {
            if !aborted && Instant::now() >= grace_until {
                aborted = true;
                // Grace expired: answer the backlog and cancel running sims.
                for job in st.queue.drain_all() {
                    self.inner
                        .counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = job.reply.send(Response::Error(ErrorBody {
                        id: job.id,
                        kind: ErrorKind::DeadlineExceeded,
                        message: "cancelled by shutdown drain".to_string(),
                        retry_after_ms: None,
                        diagnostics: Vec::new(),
                    }));
                }
                for tok in &st.running_tokens {
                    tok.cancel();
                }
                self.inner.work_cv.notify_all();
            }
            let wait = if aborted {
                Duration::from_millis(50)
            } else {
                grace_until
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1))
            };
            let (guard, _) = self.inner.idle_cv.wait_timeout(st, wait).unwrap();
            st = guard;
        }
        drop(st);
        if first {
            // Stop the reaper and flush acknowledged results to disk.
            let mut r = self.inner.reaper.lock().unwrap();
            r.stop = true;
            drop(r);
            self.inner.reaper_cv.notify_all();
            self.inner.engine.flush_cache();
            let threads = std::mem::take(&mut *self.threads.lock().unwrap());
            for t in threads {
                let _ = t.join();
            }
        }
    }

    /// The engine (tests read cache counters through this).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Whether drain has begun.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }
}

/// Build the serve engine per `CATT_SIMCACHE`: a directory path gives the
/// persistent JSONL cache (multi-writer safe), `mem`/unset the in-memory
/// cache, `off` no cache.
pub fn engine_from_env() -> Engine {
    match std::env::var("CATT_SIMCACHE").as_deref() {
        Ok("off") => Engine::uncached(),
        Ok(dir) if !dir.is_empty() && dir != "mem" => Engine::persistent(dir),
        _ => Engine::new(),
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some((_, _, job)) = st.queue.pop() {
                    st.running += 1;
                    st.running_tokens.push(job.cancel.clone());
                    break job;
                }
                if inner.draining.load(Ordering::SeqCst) {
                    st.workers_alive -= 1;
                    drop(st);
                    inner.idle_cv.notify_all();
                    return;
                }
                st = inner.work_cv.wait(st).unwrap();
            }
        };
        let cancel = job.cancel.clone();
        let reply = job.reply.clone();
        let tenant = job.req.tenant.clone();
        let response = process_job(inner, job);
        // Breaker bookkeeping: only genuine simulation faults count —
        // typed rejections prove the service is healthy for the tenant.
        {
            let now_ms = inner.epoch.elapsed().as_millis() as u64;
            let mut st = inner.state.lock().unwrap();
            if let Some(b) = st.breakers.get_mut(&tenant) {
                match &response {
                    Response::Error(e) if e.kind == ErrorKind::Fault => b.on_fatal(now_ms),
                    _ => b.on_success(),
                }
            }
            st.running -= 1;
            st.running_tokens.retain(|t| t != &cancel);
        }
        let _ = reply.send(response);
        inner.idle_cv.notify_all();
    }
}

/// Parsed `--args`-style spec entry.
enum ArgSpec {
    FBuf(u32),
    IBuf(u32),
    F32(f32),
    I32(i32),
}

fn parse_arg_spec(spec: &str) -> Result<Vec<ArgSpec>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (ty, val) = part
            .split_once(':')
            .ok_or_else(|| format!("bad arg spec `{part}` (want type:value)"))?;
        let val = val.trim();
        let arg = match ty {
            "f" => ArgSpec::FBuf(val.parse().map_err(|_| format!("bad length `{val}`"))?),
            "i" => ArgSpec::IBuf(val.parse().map_err(|_| format!("bad length `{val}`"))?),
            "sf" => ArgSpec::F32(val.parse().map_err(|_| format!("bad f32 `{val}`"))?),
            "si" => ArgSpec::I32(val.parse().map_err(|_| format!("bad i32 `{val}`"))?),
            other => return Err(format!("unknown arg type `{other}` (want f|i|sf|si)")),
        };
        out.push(arg);
    }
    Ok(out)
}

/// Derive a default argument spec from the kernel's parameter types
/// (buffers of [`DERIVED_BUF_LEN`], scalar bounds matching them).
fn derive_arg_spec(kernel: &Kernel) -> Result<Vec<ArgSpec>, String> {
    kernel
        .params
        .iter()
        .map(|p| match p.ty {
            ParamTy::Ptr(DType::F32) => Ok(ArgSpec::FBuf(DERIVED_BUF_LEN)),
            ParamTy::Ptr(_) => Ok(ArgSpec::IBuf(DERIVED_BUF_LEN)),
            ParamTy::Scalar(DType::F32) => Ok(ArgSpec::F32(1.0)),
            ParamTy::Scalar(_) => Ok(ArgSpec::I32(DERIVED_BUF_LEN as i32)),
        })
        .collect()
}

/// Canonical rendering of a spec (part of the cache scope, so derived
/// and explicit-but-identical specs share entries).
fn render_spec(spec: &[ArgSpec]) -> String {
    spec.iter()
        .map(|a| match a {
            ArgSpec::FBuf(n) => format!("f:{n}"),
            ArgSpec::IBuf(n) => format!("i:{n}"),
            ArgSpec::F32(v) => format!("sf:{v}"),
            ArgSpec::I32(v) => format!("si:{v}"),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Materialize the deterministic argument values (same patterns as
/// `catt run`, so results are reproducible from the spec alone).
fn materialize_args(spec: &[ArgSpec], mem: &mut GlobalMem) -> Vec<Arg> {
    spec.iter()
        .enumerate()
        .map(|(ai, a)| match a {
            ArgSpec::FBuf(len) => {
                let data: Vec<f32> = (0..*len)
                    .map(|v| ((v * 7 + ai as u32) % 13) as f32)
                    .collect();
                Arg::Buf(mem.alloc_f32(&data))
            }
            ArgSpec::IBuf(len) => {
                let data: Vec<i32> = (0..*len as i32).map(|v| (v * 5 + ai as i32) % 17).collect();
                Arg::Buf(mem.alloc_i32(&data))
            }
            ArgSpec::F32(v) => Arg::F32(*v),
            ArgSpec::I32(v) => Arg::I32(*v),
        })
        .collect()
}

fn err(id: &str, kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error(ErrorBody {
        id: id.to_string(),
        kind,
        message: message.into(),
        retry_after_ms: None,
        diagnostics: Vec::new(),
    })
}

/// A `compile-error` response carrying its structured diagnostics
/// (stable code + byte span into the submitted source).
fn compile_err(id: &str, message: impl Into<String>, diagnostics: Vec<Diagnostic>) -> Response {
    Response::Error(ErrorBody {
        id: id.to_string(),
        kind: ErrorKind::CompileError,
        message: message.into(),
        retry_after_ms: None,
        diagnostics,
    })
}

/// Compile and simulate one admitted job. Always returns a typed
/// response; never panics (simulation panics are caught by the engine).
fn process_job(inner: &Arc<Inner>, job: Job) -> Response {
    let c = &inner.counters;
    let id = job.id.clone();
    let now = Instant::now();
    if now >= job.deadline || job.cancel.is_cancelled() {
        c.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        return err(
            &id,
            ErrorKind::DeadlineExceeded,
            "deadline expired while queued",
        );
    }
    let queue_ms = now.duration_since(job.admitted).as_millis() as u64;

    // Compile: parse the unit, pick the kernel, run the CATT pipeline.
    let module = match parse_module(&job.req.kernel_source) {
        Ok(m) => m,
        Err(e) => {
            c.compile_error.fetch_add(1, Ordering::Relaxed);
            return compile_err(&id, e.to_string(), e.diagnostics);
        }
    };
    let kernel = if job.req.name.is_empty() {
        module.kernels.first()
    } else {
        module.kernels.iter().find(|k| k.name == job.req.name)
    };
    let Some(kernel) = kernel else {
        c.compile_error.fetch_add(1, Ordering::Relaxed);
        let message = format!(
            "kernel `{}` not found in the translation unit",
            job.req.name
        );
        let diag = Diagnostic::error(codes::KERNEL_NOT_FOUND, message.clone())
            .with_span(catt_diag::Span::point(0))
            .at(1, 1);
        return compile_err(&id, message, vec![diag]);
    };
    let launch = LaunchConfig::d1(job.req.grid, job.req.block);
    let compiled: CompiledKernel = match inner.pipe.compile_kernel(kernel, launch) {
        Ok(ck) => ck,
        Err(mut e) => {
            c.compile_error.fetch_add(1, Ordering::Relaxed);
            catt_diag::locate(&mut e.diagnostics, &job.req.kernel_source);
            let message = e.to_string();
            return compile_err(&id, message, e.diagnostics);
        }
    };

    // Arguments: explicit spec (validated against the parameter count) or
    // derived from the parameter types.
    let spec = if job.req.args.is_empty() {
        match derive_arg_spec(kernel) {
            Ok(s) => s,
            Err(e) => {
                c.bad_request.fetch_add(1, Ordering::Relaxed);
                return err(&id, ErrorKind::BadRequest, e);
            }
        }
    } else {
        match parse_arg_spec(&job.req.args) {
            Ok(s) if s.len() == kernel.params.len() => s,
            Ok(s) => {
                c.bad_request.fetch_add(1, Ordering::Relaxed);
                return err(
                    &id,
                    ErrorKind::BadRequest,
                    format!(
                        "arg spec has {} entries, kernel `{}` has {} parameters",
                        s.len(),
                        kernel.name,
                        kernel.params.len()
                    ),
                );
            }
            Err(e) => {
                c.bad_request.fetch_add(1, Ordering::Relaxed);
                return err(&id, ErrorKind::BadRequest, e);
            }
        }
    };

    // Simulate the throttled kernel with the deadline token wired in. The
    // scope excludes the tenant, so identical cross-tenant submissions
    // share cache entries and single-flight slots.
    let mut config = inner.base_config.clone();
    config.cancel = Some(job.cancel.clone());
    let scope = format!("catt-serve:{}", render_spec(&spec));
    let transformed = compiled.transformed.clone();
    let label = format!("serve `{}`", kernel.name);
    // Register with the deadline reaper for the duration of the sim.
    reaper_register(inner, job.deadline, job.cancel.clone());
    let outcome = inner.engine.sim_app_shared(
        &scope,
        std::slice::from_ref(&transformed),
        &[launch],
        &config,
        Some(job.deadline),
        || {
            let mut mem = GlobalMem::new();
            let args = materialize_args(&spec, &mut mem);
            let mut gpu = Gpu::new(config.clone());
            gpu.launch(&transformed, launch, &args, &mut mem)
                .map_err(|e| match &e {
                    SimError::Cancelled { .. } => {
                        JobError::fatal(&label, e.to_string()).with_code("cancelled")
                    }
                    _ => JobError::fatal(&label, e.to_string()).with_code(e.code()),
                })
        },
    );
    reaper_unregister(inner, &job.cancel);

    match outcome {
        Ok(out) => {
            c.completed.fetch_add(1, Ordering::Relaxed);
            let a = &compiled.analysis;
            let n = a
                .loops
                .iter()
                .map(|l| l.decision.n)
                .max()
                .unwrap_or(1)
                .max(1);
            let stats = out.stats;
            let miss_rate = if stats.l1_accesses > 0 {
                1.0 - stats.l1_hits as f64 / stats.l1_accesses as f64
            } else {
                0.0
            };
            Response::Result(ResultBody {
                id,
                kernel: kernel.name.clone(),
                n,
                m: a.tb_throttle_m(),
                transformed: compiled.is_transformed(),
                cycles: stats.cycles,
                miss_rate,
                source: match out.source {
                    SimSource::Computed => "computed",
                    SimSource::CacheHit => "cache",
                    SimSource::Coalesced => "coalesced",
                },
                queue_ms,
                total_ms: job.admitted.elapsed().as_millis() as u64,
                emitted_source: job.req.emit.then(|| compiled.emitted_source.clone()),
                fallback: compiled.fallback_diagnostic.clone().map(|fb| {
                    let mut one = vec![fb];
                    catt_diag::locate(&mut one, &job.req.kernel_source);
                    one.pop().unwrap()
                }),
            })
        }
        Err(e) if matches!(e.code, Some("cancelled" | "deadline")) => {
            c.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            err(&id, ErrorKind::DeadlineExceeded, e.message)
        }
        Err(e) => {
            c.faults.fetch_add(1, Ordering::Relaxed);
            Response::Error(ErrorBody {
                id,
                kind: ErrorKind::Fault,
                message: format!(
                    "simulation fault{}: {}",
                    e.code.map(|c| format!(" [{c}]")).unwrap_or_default(),
                    e.message
                ),
                retry_after_ms: None,
                diagnostics: Vec::new(),
            })
        }
    }
}

fn reaper_register(inner: &Arc<Inner>, fire_at: Instant, token: CancelToken) {
    let mut r = inner.reaper.lock().unwrap();
    r.entries.push((fire_at, token));
    drop(r);
    inner.reaper_cv.notify_all();
}

fn reaper_unregister(inner: &Arc<Inner>, token: &CancelToken) {
    let mut r = inner.reaper.lock().unwrap();
    r.entries.retain(|(_, t)| t != token);
}

/// The deadline reaper: sleeps until the earliest registered deadline and
/// fires the corresponding cancel tokens, bounding every running
/// simulation's wall-clock time.
fn reaper_loop(inner: &Arc<Inner>) {
    let mut r = inner.reaper.lock().unwrap();
    loop {
        if r.stop {
            return;
        }
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        r.entries.retain(|(fire_at, token)| {
            if *fire_at <= now {
                token.cancel();
                false
            } else {
                next = Some(next.map_or(*fire_at, |n: Instant| n.min(*fire_at)));
                true
            }
        });
        let wait = next
            .map(|n| n.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(200))
            .min(Duration::from_millis(200));
        let (guard, _) = inner.reaper_cv.wait_timeout(r, wait).unwrap();
        r = guard;
    }
}
