//! Per-tenant token-bucket quotas over submitted simulation fuel.
//!
//! Admission control needs a rate limit whose unit tracks *cost*, not
//! request count: one tenant's ATAX sweep burns orders of magnitude more
//! simulator cycles than another's unit kernel. The bucket is therefore
//! denominated in fuel units (the simulator's own cycle-budget currency,
//! see `GpuConfig::fuel_budget`): capacity `burst`, refilled at `rate`
//! fuel/second, and a request costs its estimated fuel.
//!
//! Time is passed in explicitly (`now_ms`) rather than read from the
//! clock, so the property tests drive the bucket deterministically.

/// A token bucket. All methods take `now_ms`, a monotonic millisecond
/// timestamp supplied by the caller.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Maximum (and initial) token balance.
    capacity: f64,
    /// Refill rate in tokens per millisecond.
    rate_per_ms: f64,
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket holding at most `burst` tokens, refilling at `per_sec`
    /// tokens per second, born full at `now_ms`.
    pub fn new(burst: u64, per_sec: u64, now_ms: u64) -> TokenBucket {
        TokenBucket {
            capacity: burst as f64,
            rate_per_ms: per_sec as f64 / 1000.0,
            tokens: burst as f64,
            last_ms: now_ms,
        }
    }

    fn refill(&mut self, now_ms: u64) {
        // Monotonic guard: a caller handing timestamps out of order must
        // not mint tokens from the wrap-around.
        let elapsed = now_ms.saturating_sub(self.last_ms);
        if elapsed > 0 {
            self.tokens = (self.tokens + elapsed as f64 * self.rate_per_ms).min(self.capacity);
            self.last_ms = now_ms;
        }
    }

    /// Current balance (after refilling to `now_ms`).
    pub fn available(&mut self, now_ms: u64) -> f64 {
        self.refill(now_ms);
        self.tokens
    }

    /// Spend `cost` tokens, or report how many milliseconds until the
    /// balance could cover it. A cost above the burst capacity can never
    /// succeed; it is charged as a full bucket so one oversized request
    /// still pays (and the caller's retry-after stays finite).
    pub fn try_take(&mut self, cost: u64, now_ms: u64) -> Result<(), u64> {
        self.refill(now_ms);
        let cost = (cost as f64).min(self.capacity);
        if self.tokens >= cost {
            self.tokens -= cost;
            Ok(())
        } else {
            let deficit = cost - self.tokens;
            let ms = if self.rate_per_ms > 0.0 {
                (deficit / self.rate_per_ms).ceil() as u64
            } else {
                u64::MAX
            };
            Err(ms.max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_prng::Rng;

    /// Property: over any schedule of takes, the total granted fuel never
    /// exceeds `burst + rate × elapsed` — the bucket's defining invariant.
    #[test]
    fn never_exceeds_budget() {
        for trial in 0..50u64 {
            let mut rng = Rng::seed(0xB0C4 + trial);
            let burst = rng.range_u32(100, 10_000) as u64;
            let per_sec = rng.range_u32(100, 50_000) as u64;
            let mut bucket = TokenBucket::new(burst, per_sec, 0);
            let mut now_ms = 0u64;
            let mut granted = 0u64;
            for _ in 0..200 {
                now_ms += rng.bounded_u64(50);
                let cost = rng.bounded_u64(burst * 2) + 1;
                if bucket.try_take(cost, now_ms).is_ok() {
                    granted += cost.min(burst);
                }
                let ceiling = burst as f64 + now_ms as f64 * per_sec as f64 / 1000.0;
                assert!(
                    granted as f64 <= ceiling + 1.0,
                    "granted {granted} fuel exceeds budget {ceiling} \
                     (burst {burst}, rate {per_sec}/s, t {now_ms}ms, trial {trial})"
                );
            }
        }
    }

    /// Property: the balance refills monotonically while idle and never
    /// exceeds the burst capacity.
    #[test]
    fn refills_monotonically_up_to_capacity() {
        for trial in 0..50u64 {
            let mut rng = Rng::seed(0xF111 + trial);
            let burst = rng.range_u32(100, 10_000) as u64;
            let per_sec = rng.range_u32(100, 50_000) as u64;
            let mut bucket = TokenBucket::new(burst, per_sec, 0);
            // Drain it, then watch it climb.
            assert!(bucket.try_take(burst, 0).is_ok());
            let mut now_ms = 0u64;
            let mut prev = bucket.available(0);
            for _ in 0..100 {
                now_ms += rng.bounded_u64(30) + 1;
                let avail = bucket.available(now_ms);
                assert!(
                    avail >= prev,
                    "balance shrank while idle: {prev} -> {avail} (trial {trial})"
                );
                assert!(
                    avail <= burst as f64 + 1e-9,
                    "overfilled: {avail} > {burst}"
                );
                prev = avail;
            }
        }
    }

    #[test]
    fn retry_after_is_honest() {
        let mut bucket = TokenBucket::new(1000, 1000, 0); // 1 token/ms
        assert!(bucket.try_take(1000, 0).is_ok());
        let wait = bucket.try_take(500, 0).unwrap_err();
        assert_eq!(wait, 500);
        // Waiting the advertised time makes the take succeed.
        assert!(bucket.try_take(500, wait).is_ok());
    }

    #[test]
    fn oversized_cost_is_clamped_to_burst() {
        let mut bucket = TokenBucket::new(100, 1000, 0);
        // Cost 10× the burst: charged as one full bucket, not rejected
        // forever.
        assert!(bucket.try_take(1000, 0).is_ok());
        assert_eq!(bucket.available(0), 0.0);
        let wait = bucket.try_take(1000, 0).unwrap_err();
        assert!(wait <= 100, "finite retry-after, got {wait}ms");
    }

    #[test]
    fn out_of_order_timestamps_mint_nothing() {
        let mut bucket = TokenBucket::new(100, 1_000_000, 1000);
        assert!(bucket.try_take(100, 1000).is_ok());
        // A timestamp in the past must not refill.
        assert_eq!(bucket.available(500), 0.0);
    }
}
