//! # catt-serve — overload-safe multi-tenant compile-and-simulate daemon
//!
//! The paper's pipeline is batch-shaped: compile a kernel, search the
//! throttling factors, simulate. `catt serve` wraps it in a long-lived
//! service so many tenants can share one simulator fleet — and makes the
//! *robustness* properties first-class:
//!
//! * **Bounded admission with backpressure** — a weighted-fair queue with
//!   a high-water mark; past it, submissions shed instantly with
//!   `overloaded` + retry-after instead of growing an unbounded backlog
//!   ([`server::ServeConfig::queue_high_water`]).
//! * **Per-tenant quotas** — token buckets denominated in simulation
//!   fuel, the simulator's own cost currency ([`quota::TokenBucket`]).
//! * **Weighted-fair dequeue** — deficit round-robin over tenants, so a
//!   chatty tenant cannot starve the rest ([`fair::FairQueue`]).
//! * **Deadline propagation** — a request past its wall-clock budget is
//!   *cancelled* (through the simulator's [`catt_sim::CancelToken`]),
//!   never completed late.
//! * **Circuit breakers** — repeated fatal simulation faults open a
//!   tenant's breaker; a cooldown later one probe half-opens it
//!   ([`breaker::Breaker`]).
//! * **Graceful drain** — SIGTERM/`shutdown` stops admission, finishes
//!   or cancels in-flight work, answers everything queued, and flushes
//!   the simcache atomically ([`server::Server::drain`]).
//! * **Single-flight dedupe** — identical submissions (tenant excluded)
//!   coalesce onto one simulation through the engine's content-addressed
//!   cache ([`catt_core::engine::Engine::sim_app_shared`]).
//!
//! The wire protocol is newline-delimited JSON over stdio or TCP
//! ([`proto`]); every request ends in exactly one typed response. The
//! [`bench`] module is the chaos-driven load harness behind
//! `catt serve-bench` (BENCH_serve.json).

pub mod bench;
pub mod breaker;
pub mod fair;
pub mod front;
pub mod json;
pub mod proto;
pub mod quota;
pub mod server;

pub use breaker::{Breaker, BreakerState};
pub use fair::FairQueue;
pub use proto::{ErrorKind, Op, Request, Response, SubmitRequest};
pub use quota::TokenBucket;
pub use server::{engine_from_env, ServeConfig, Server};
