//! Daemon front-ends: NDJSON over stdio and over a TCP listener, plus
//! SIGTERM/SIGINT-triggered graceful drain.
//!
//! Both transports share the line discipline: one request object per
//! line in, one response object per line out, multiplexed by `id` —
//! responses may be reordered relative to requests (a cheap `ping`
//! overtakes a queued `submit`), so clients must correlate by `id`.

use crate::proto::Response;
use crate::server::Server;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Set by the signal handler; polled by the drain watcher.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Install SIGTERM/SIGINT handlers that request a graceful drain. Uses
/// raw `signal(2)` through the libc already linked by std — the handler
/// only stores to an atomic, which is async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Whether a signal asked for shutdown (tests may also set this via
/// [`request_shutdown`]).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Programmatic equivalent of SIGTERM (used by tests).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Spawn the watcher that turns a signal into `server.drain()` and a
/// clean exit. Runs for the life of the process.
fn spawn_signal_watcher(server: &Arc<Server>) {
    let server = Arc::clone(server);
    std::thread::Builder::new()
        .name("serve-signal-watcher".to_string())
        .spawn(move || loop {
            if shutdown_requested() {
                server.drain();
                // Drain flushed the cache and answered everything that
                // was admitted; responses already handed to transport
                // writers flush on their own threads.
                std::thread::sleep(Duration::from_millis(100));
                std::process::exit(0);
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}

/// Serve NDJSON over stdin/stdout until EOF, a `shutdown` op, or a
/// signal. Returns after the drain completes.
pub fn serve_stdio(server: Arc<Server>) {
    install_signal_handlers();
    spawn_signal_watcher(&server);
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("serve-stdout".to_string())
        .spawn(move || {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for resp in rx {
                let _ = writeln!(out, "{}", resp.render());
                let _ = out.flush();
            }
        })
        .expect("spawn stdout writer");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if !server.handle_line(&line, &tx) {
            // `shutdown` op: drain already ran inside handle_line.
            drop(tx);
            let _ = writer.join();
            return;
        }
    }
    // EOF: drain, then let the writer finish the backlog.
    server.drain();
    drop(tx);
    let _ = writer.join();
}

/// Serve NDJSON over a TCP listener. Each connection gets a reader and a
/// writer thread; a `shutdown` op (or signal) drains the daemon and
/// stops accepting. Returns after the drain completes.
pub fn serve_tcp(server: Arc<Server>, addr: &str) -> std::io::Result<()> {
    install_signal_handlers();
    spawn_signal_watcher(&server);
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    eprintln!("[serve] listening on {}", listener.local_addr()?);
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if server.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                conns.push(
                    std::thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || handle_conn(server, stream))
                        .expect("spawn connection handler"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
        conns.retain(|c| !c.is_finished());
    }
    server.drain();
    for c in conns {
        let _ = c.join();
    }
    Ok(())
}

/// Connection handler reused by the load harness's self-hosted listener.
pub fn conn_for_bench(server: Arc<Server>, stream: TcpStream) {
    handle_conn(server, stream)
}

fn handle_conn(server: Arc<Server>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::spawn(move || {
        let mut out = std::io::BufWriter::new(write_half);
        for resp in rx {
            if writeln!(out, "{}", resp.render()).is_err() {
                break;
            }
            let _ = out.flush();
        }
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if !server.handle_line(&line, &tx) {
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
}
