//! The serve wire protocol: newline-delimited JSON, one request or
//! response object per line, multiplexed by client-chosen `id`.
//!
//! ## Requests
//!
//! ```json
//! {"id":"r1","op":"submit","tenant":"team-a","kernel":"__global__ void k(float *a, int n){...}",
//!  "name":"k","grid":320,"block":256,"args":"f:1024,si:1024","deadline_ms":5000,
//!  "weight":2,"emit":true}
//! ```
//!
//! * `op` — `submit` (default), `ping`, `stats`, `shutdown`.
//! * `tenant` — quota/fairness/breaker identity (default `"anon"`).
//! * `kernel` — CUDA-C translation unit; `name` picks the kernel when the
//!   unit holds several (default: the only kernel / the first).
//! * `grid`/`block` — 1-D launch geometry (required for `submit`).
//! * `args` — optional `catt run`-style argument spec
//!   (`f:<len>,i:<len>,sf:<val>,si:<val>`, one per kernel parameter);
//!   omitted arguments are derived from the parameter types.
//! * `deadline_ms` — wall-clock budget; past it the simulation is
//!   *cancelled*, never completed late.
//! * `weight` — weighted-fair share (1–100, default 1).
//! * `emit` — include the throttled CUDA source in the response.
//!
//! ## Responses
//!
//! Success: `{"id":"r1","ok":true,"kernel":"k","n":2,"m":1,"transformed":true,
//! "cycles":...,"miss_rate":0.31,"source":"computed","queue_ms":1,"total_ms":17}`.
//!
//! Failure: `{"id":"r1","ok":false,"kind":"overloaded","retry_after_ms":40,
//! "message":"..."}` — `kind` is one of [`ErrorKind`]'s wire tokens; every
//! admitted request gets exactly one response, whatever happens.

use crate::json::{obj, parse, Json};
use catt_diag::{codes, Diagnostic, Note, Severity, Span};

/// Operations a request line can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    Submit(SubmitRequest),
    /// Liveness probe; answered immediately, never queued.
    Ping,
    /// Daemon counters (queue depth, cache counters, shed counts).
    Stats,
    /// Begin graceful drain, answer when drained.
    Shutdown,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: String,
    pub op: Op,
}

/// A `submit` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    pub tenant: String,
    pub kernel_source: String,
    /// Kernel name within the translation unit (empty = first kernel).
    pub name: String,
    pub grid: u32,
    pub block: u32,
    /// `catt run`-style argument spec; empty = derive from parameters.
    pub args: String,
    /// Wall-clock budget in milliseconds (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// Weighted-fair share, clamped to 1..=100.
    pub weight: u64,
    /// Include the emitted (throttled) source in the response.
    pub emit: bool,
}

/// Typed failure classes, mirroring the robustness taxonomy in DESIGN.md
/// ("catt-serve: service architecture & failure model").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable line / missing required fields.
    BadRequest,
    /// The CATT pipeline rejected the kernel (parse/lower/launch error).
    CompileError,
    /// Admission queue past its high-water mark (or draining).
    Overloaded,
    /// Tenant's fuel token-bucket is empty.
    QuotaExhausted,
    /// The request's deadline passed (queued too long, cancelled
    /// mid-simulation, or cut off by shutdown drain).
    DeadlineExceeded,
    /// Tenant's circuit breaker is open after repeated fatal faults.
    CircuitOpen,
    /// The simulation itself faulted (panic or fatal `SimError`).
    Fault,
}

impl ErrorKind {
    /// Wire token (also the key in BENCH_serve.json outcome counts).
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::CompileError => "compile-error",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::QuotaExhausted => "quota-exhausted",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::CircuitOpen => "circuit-open",
            ErrorKind::Fault => "fault",
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Result(ResultBody),
    Error(ErrorBody),
    /// `ping` / `stats` / `shutdown` acknowledgement with free-form fields.
    Info {
        id: String,
        fields: Json,
    },
}

/// Success payload for a `submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultBody {
    pub id: String,
    pub kernel: String,
    /// Chosen warp-throttling factor N (max over throttled loops; 1 when
    /// nothing needed throttling).
    pub n: u32,
    /// Chosen TB-throttling factor M (0 = no TB throttling).
    pub m: u32,
    /// Whether CATT changed the kernel.
    pub transformed: bool,
    /// Predicted cycles of the throttled kernel on the target.
    pub cycles: u64,
    /// Predicted L1D miss rate of the throttled kernel.
    pub miss_rate: f64,
    /// `"computed"`, `"cache"`, or `"coalesced"` (single-flight).
    pub source: &'static str,
    /// Milliseconds spent queued before a worker picked the job up.
    pub queue_ms: u64,
    /// Milliseconds from admission to response.
    pub total_ms: u64,
    /// Emitted throttled CUDA source (only when requested via `emit`).
    pub emitted_source: Option<String>,
    /// The transform fell back to the original code: the typed fallback
    /// diagnostic (`W001`/`W002`, code + span) travels with the result.
    pub fallback: Option<Diagnostic>,
}

/// Failure payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    pub id: String,
    pub kind: ErrorKind,
    pub message: String,
    /// When retrying could help (overload, quota, open breaker).
    pub retry_after_ms: Option<u64>,
    /// Structured diagnostics for `compile-error` rejections: every one
    /// carries a stable code (`E0xx`/`W0xx`) and, where known, a byte
    /// span + line/col into the submitted source. Empty for other kinds.
    pub diagnostics: Vec<Diagnostic>,
}

/// Wire form of one diagnostic (same shape as `Diagnostic::to_json`).
fn diag_to_json(d: &Diagnostic) -> Json {
    let mut f: Vec<(&str, Json)> = vec![
        ("severity", Json::Str(d.severity.label().to_string())),
        ("code", Json::Str(d.code.as_str().to_string())),
        ("message", Json::Str(d.message.clone())),
    ];
    if let Some(s) = d.span {
        f.push((
            "span",
            obj(vec![
                ("start", Json::Num(s.start as f64)),
                ("end", Json::Num(s.end as f64)),
            ]),
        ));
    }
    if d.line > 0 {
        f.push(("line", Json::Num(d.line as f64)));
        f.push(("col", Json::Num(d.col as f64)));
    }
    if let Some(p) = d.pass {
        f.push(("pass", Json::Str(p.to_string())));
    }
    if !d.notes.is_empty() {
        f.push((
            "notes",
            Json::Arr(
                d.notes
                    .iter()
                    .map(|n| {
                        let mut nf = vec![("message", Json::Str(n.message.clone()))];
                        if let Some(s) = n.span {
                            nf.push((
                                "span",
                                obj(vec![
                                    ("start", Json::Num(s.start as f64)),
                                    ("end", Json::Num(s.end as f64)),
                                ]),
                            ));
                        }
                        obj(nf)
                    })
                    .collect(),
            ),
        ));
    }
    obj(f)
}

fn span_from_json(v: &Json) -> Option<Span> {
    Some(Span::new(
        v.get("start")?.as_u64()? as u32,
        v.get("end")?.as_u64()? as u32,
    ))
}

/// Parse a diagnostic back off the wire. Codes resolve through the
/// stable registry; unknown codes and severities are rejected (the
/// harness treats that as a malformed response).
fn diag_from_json(v: &Json) -> Option<Diagnostic> {
    let code = codes::lookup(v.get("code")?.as_str()?)?;
    let severity = match v.get("severity")?.as_str()? {
        "error" => Severity::Error,
        "warning" => Severity::Warning,
        "note" => Severity::Note,
        _ => return None,
    };
    let mut d = match severity {
        Severity::Error => Diagnostic::error(code, v.get("message")?.as_str()?),
        _ => Diagnostic::warning(code, v.get("message")?.as_str()?),
    };
    d.severity = severity;
    d.span = v.get("span").and_then(span_from_json);
    d.line = v.get("line").and_then(Json::as_u64).unwrap_or(0) as u32;
    d.col = v.get("col").and_then(Json::as_u64).unwrap_or(0) as u32;
    // Pass names are static strings; resolve through the known set.
    d.pass = v.get("pass").and_then(Json::as_str).and_then(|p| {
        ["parse", "analyze", "legalize", "transform", "emit"]
            .iter()
            .find(|k| **k == p)
            .copied()
    });
    if let Some(Json::Arr(notes)) = v.get("notes") {
        for n in notes {
            let msg = n.get("message").and_then(Json::as_str)?;
            d.notes.push(Note {
                message: msg.to_string(),
                span: n.get("span").and_then(span_from_json),
            });
        }
    }
    Some(d)
}

impl Response {
    /// The correlation id this response answers.
    pub fn id(&self) -> &str {
        match self {
            Response::Result(r) => &r.id,
            Response::Error(e) => &e.id,
            Response::Info { id, .. } => id,
        }
    }

    /// Render as one NDJSON line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Result(r) => {
                let mut fields = vec![
                    ("id", Json::Str(r.id.clone())),
                    ("ok", Json::Bool(true)),
                    ("kernel", Json::Str(r.kernel.clone())),
                    ("n", Json::Num(r.n as f64)),
                    ("m", Json::Num(r.m as f64)),
                    ("transformed", Json::Bool(r.transformed)),
                    ("cycles", Json::Num(r.cycles as f64)),
                    ("miss_rate", Json::Num(r.miss_rate)),
                    ("source", Json::Str(r.source.to_string())),
                    ("queue_ms", Json::Num(r.queue_ms as f64)),
                    ("total_ms", Json::Num(r.total_ms as f64)),
                ];
                if let Some(src) = &r.emitted_source {
                    fields.push(("emitted_source", Json::Str(src.clone())));
                }
                if let Some(fb) = &r.fallback {
                    fields.push(("fallback", diag_to_json(fb)));
                }
                obj(fields).render()
            }
            Response::Error(e) => {
                let mut fields = vec![
                    ("id", Json::Str(e.id.clone())),
                    ("ok", Json::Bool(false)),
                    ("kind", Json::Str(e.kind.token().to_string())),
                    ("message", Json::Str(e.message.clone())),
                ];
                if let Some(ms) = e.retry_after_ms {
                    fields.push(("retry_after_ms", Json::Num(ms as f64)));
                }
                if !e.diagnostics.is_empty() {
                    fields.push((
                        "diagnostics",
                        Json::Arr(e.diagnostics.iter().map(diag_to_json).collect()),
                    ));
                }
                obj(fields).render()
            }
            Response::Info { id, fields } => {
                let mut all = vec![
                    ("id".to_string(), Json::Str(id.clone())),
                    ("ok".to_string(), Json::Bool(true)),
                ];
                if let Json::Obj(extra) = fields {
                    all.extend(extra.clone());
                }
                Json::Obj(all).render()
            }
        }
    }
}

/// Parse one request line. `Err` carries `(id, message)` — the id is
/// recovered from the malformed line when possible so the client can
/// still correlate the `bad-request` response.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let v = match parse(line) {
        Ok(v) => v,
        Err(e) => {
            // Best-effort id recovery from broken JSON for correlation.
            let id = recover_id(line).unwrap_or_default();
            return Err((id, format!("malformed JSON: {e}")));
        }
    };
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let op = v.get("op").and_then(Json::as_str).unwrap_or("submit");
    let op = match op {
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        "submit" => {
            let kernel_source = match v.get("kernel").and_then(Json::as_str) {
                Some(s) if !s.trim().is_empty() => s.to_string(),
                _ => return Err((id, "missing required field `kernel`".to_string())),
            };
            let grid = match v.get("grid").and_then(Json::as_u64) {
                Some(g) if (1..=1 << 20).contains(&g) => g as u32,
                _ => {
                    return Err((
                        id,
                        "missing or invalid `grid` (want 1..=1048576)".to_string(),
                    ))
                }
            };
            let block = match v.get("block").and_then(Json::as_u64) {
                Some(b) if (1..=1024).contains(&b) => b as u32,
                _ => return Err((id, "missing or invalid `block` (want 1..=1024)".to_string())),
            };
            Op::Submit(SubmitRequest {
                tenant: v
                    .get("tenant")
                    .and_then(Json::as_str)
                    .unwrap_or("anon")
                    .to_string(),
                kernel_source,
                name: v
                    .get("name")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                grid,
                block,
                args: v
                    .get("args")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
                deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
                weight: v
                    .get("weight")
                    .and_then(Json::as_u64)
                    .unwrap_or(1)
                    .clamp(1, 100),
                emit: v.get("emit").and_then(Json::as_bool).unwrap_or(false),
            })
        }
        other => return Err((id, format!("unknown op `{other}`"))),
    };
    Ok(Request { id, op })
}

/// Fish an `"id":"..."` out of a line that failed to parse as JSON.
fn recover_id(line: &str) -> Option<String> {
    let start = line.find("\"id\"")? + 4;
    let rest = line.get(start..)?;
    let open = rest.find('"')?;
    let rest = rest.get(open + 1..)?;
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Parse one response line back into a [`Response`] (used by the load
/// harness and tests; `source` strings outside the known set map to
/// `"computed"`).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = parse(line)?;
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing `ok`")?;
    if !ok {
        let kind = match v.get("kind").and_then(Json::as_str).unwrap_or("") {
            "bad-request" => ErrorKind::BadRequest,
            "compile-error" => ErrorKind::CompileError,
            "overloaded" => ErrorKind::Overloaded,
            "quota-exhausted" => ErrorKind::QuotaExhausted,
            "deadline-exceeded" => ErrorKind::DeadlineExceeded,
            "circuit-open" => ErrorKind::CircuitOpen,
            "fault" => ErrorKind::Fault,
            other => return Err(format!("unknown error kind `{other}`")),
        };
        let diagnostics = match v.get("diagnostics") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(diag_from_json)
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed diagnostic in response")?,
            _ => Vec::new(),
        };
        return Ok(Response::Error(ErrorBody {
            id,
            kind,
            message: v
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            retry_after_ms: v.get("retry_after_ms").and_then(Json::as_u64),
            diagnostics,
        }));
    }
    match v.get("kernel").and_then(Json::as_str) {
        Some(kernel) => Ok(Response::Result(ResultBody {
            id,
            kernel: kernel.to_string(),
            n: v.get("n").and_then(Json::as_u64).unwrap_or(1) as u32,
            m: v.get("m").and_then(Json::as_u64).unwrap_or(0) as u32,
            transformed: v
                .get("transformed")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            cycles: v.get("cycles").and_then(Json::as_u64).unwrap_or(0),
            miss_rate: v.get("miss_rate").and_then(Json::as_f64).unwrap_or(0.0),
            source: match v.get("source").and_then(Json::as_str) {
                Some("cache") => "cache",
                Some("coalesced") => "coalesced",
                _ => "computed",
            },
            queue_ms: v.get("queue_ms").and_then(Json::as_u64).unwrap_or(0),
            total_ms: v.get("total_ms").and_then(Json::as_u64).unwrap_or(0),
            emitted_source: v
                .get("emitted_source")
                .and_then(Json::as_str)
                .map(str::to_string),
            fallback: v.get("fallback").and_then(diag_from_json),
        })),
        None => Ok(Response::Info { id, fields: v }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let line = r#"{"id":"r1","tenant":"a","kernel":"__global__ void k(float *x, int n){}","grid":4,"block":64,"deadline_ms":500,"weight":3}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.id, "r1");
        let Op::Submit(s) = req.op else {
            panic!("want submit")
        };
        assert_eq!((s.grid, s.block, s.weight), (4, 64, 3));
        assert_eq!(s.deadline_ms, Some(500));
        assert_eq!(s.tenant, "a");
    }

    #[test]
    fn missing_kernel_is_bad_request_with_id() {
        let err = parse_request(r#"{"id":"r9","grid":1,"block":32}"#).unwrap_err();
        assert_eq!(err.0, "r9");
        assert!(err.1.contains("kernel"), "{}", err.1);
    }

    #[test]
    fn id_recovered_from_malformed_json() {
        let err = parse_request(r#"{"id":"r7","kernel": <<<"#).unwrap_err();
        assert_eq!(err.0, "r7");
    }

    #[test]
    fn responses_round_trip() {
        let r = Response::Result(ResultBody {
            id: "x".into(),
            kernel: "k".into(),
            n: 2,
            m: 1,
            transformed: true,
            cycles: 12345,
            miss_rate: 0.25,
            source: "coalesced",
            queue_ms: 3,
            total_ms: 40,
            emitted_source: None,
            fallback: None,
        });
        assert_eq!(parse_response(&r.render()).unwrap(), r);
        let e = Response::Error(ErrorBody {
            id: "y".into(),
            kind: ErrorKind::Overloaded,
            message: "queue full".into(),
            retry_after_ms: Some(40),
            diagnostics: Vec::new(),
        });
        assert_eq!(parse_response(&e.render()).unwrap(), e);
    }

    #[test]
    fn diagnostics_round_trip_on_the_wire() {
        let d = Diagnostic::error(codes::UNEXPECTED_TOKEN, "expected `;`")
            .with_span(Span::new(10, 13))
            .at(2, 4)
            .in_pass("parse")
            .note("while parsing the kernel body", None);
        let e = Response::Error(ErrorBody {
            id: "z".into(),
            kind: ErrorKind::CompileError,
            message: "expected `;`".into(),
            retry_after_ms: None,
            diagnostics: vec![d.clone()],
        });
        let back = parse_response(&e.render()).unwrap();
        let Response::Error(eb) = back else {
            panic!("want error")
        };
        assert_eq!(eb.diagnostics, vec![d]);

        let fb = Diagnostic::warning(codes::TRANSFORM_FALLBACK, "transform panicked: boom")
            .with_span(Span::new(17, 18));
        let r = Response::Result(ResultBody {
            id: "w".into(),
            kernel: "k".into(),
            n: 1,
            m: 0,
            transformed: false,
            cycles: 1,
            miss_rate: 0.0,
            source: "computed",
            queue_ms: 0,
            total_ms: 1,
            emitted_source: None,
            fallback: Some(fb.clone()),
        });
        let Response::Result(rb) = parse_response(&r.render()).unwrap() else {
            panic!("want result")
        };
        assert_eq!(rb.fallback, Some(fb));
    }
}
