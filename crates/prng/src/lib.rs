//! # catt-prng — deterministic, dependency-free pseudo-randomness
//!
//! The build environment is offline, so this crate replaces the external
//! `rand` / `proptest` dependencies for the two places the repository
//! needs randomness:
//!
//! 1. **Workload input generation** (`catt-workloads::data`) — fixed-seed
//!    streams so every run and every throttling variant sees identical
//!    data.
//! 2. **Randomized tests** — the former property tests draw their cases
//!    from a seeded [`Rng`], so failures reproduce exactly and CI is
//!    deterministic.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — both public
//! domain algorithms (Blackman & Vigna, <https://prng.di.unimi.it/>),
//! implemented from the reference description. Not cryptographic; never
//! use for secrets.

/// A deterministic 64-bit PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed the generator. Equal seeds produce equal streams, forever.
    pub fn seed(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed from a string tag (decorrelated streams per tag): FNV-1a of
    /// the tag bytes feeds [`Rng::seed`].
    pub fn from_tag(tag: &str) -> Rng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in tag.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Rng::seed(h)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
    /// `bound` must be nonzero.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64: zero bound");
        // Rejection threshold: multiples of `bound` fitting in 2^64.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `i64` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64: empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.bounded_u64(span) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "range_u32: empty range {lo}..{hi}");
        lo + self.bounded_u64((hi - lo) as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` (24 mantissa bits).
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniformly choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose: empty slice");
        &xs[self.range_usize(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn tags_decorrelate() {
        let a: Vec<u64> = {
            let mut r = Rng::from_tag("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::from_tag("b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed(7);
        for _ in 0..10_000 {
            let v = r.range_i64(-5, 17);
            assert!((-5..17).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.f32();
            assert!((0.0..1.0).contains(&g));
            let u = r.range_u32(3, 9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Rng::seed(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.bounded_u64(10) as usize] += 1;
        }
        for c in counts {
            // 10k expected per bucket; allow generous slack.
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = Rng::seed(3);
        let trues = (0..100_000).filter(|_| r.bool(0.3)).count();
        assert!((25_000..35_000).contains(&trues), "{trues}");
    }
}
