//! nvprof-style text reports: stall-reason breakdown and per-set L1D
//! heat map.

use catt_sim::profile::{LaunchProfile, StallReason};
use std::fmt::Write as _;

/// Intensity ramp for the heat map, coolest to hottest.
const RAMP: [char; 8] = [' ', '.', ':', '-', '=', '+', '*', '#'];

/// Sets per heat-map row.
const HEAT_COLS: usize = 64;

/// The launch's stall breakdown: issue-slot utilization and the share of
/// lost slots per [`StallReason`], nvprof's `stall_*` metrics in text.
pub fn stall_report(p: &LaunchProfile) -> String {
    let mut out = String::new();
    let cycles = p.sms.iter().map(|s| s.cycles).max().unwrap_or(0);
    let slots = p.issue_slots();
    let instructions = p.instructions();
    let _ = writeln!(
        out,
        "kernel `{}`  grid {}x{}  block {}x{}  ({} SM shard{}, {} cycles{})",
        p.kernel,
        p.launch.grid.x,
        p.launch.grid.y,
        p.launch.block.x,
        p.launch.block.y,
        p.sms.len(),
        if p.sms.len() == 1 { "" } else { "s" },
        cycles,
        if p.complete { "" } else { ", PARTIAL" },
    );
    let _ = writeln!(
        out,
        "  issue slots {slots}  issued {instructions}  utilization {:.1}%",
        pct(instructions, slots)
    );
    let totals = p.stall_totals();
    let stalled: u64 = totals.iter().sum();
    let _ = writeln!(out, "  stall breakdown ({stalled} slots lost):");
    for r in StallReason::ALL {
        let v = totals[r as usize];
        if v == 0 && r == StallReason::Fuel {
            continue; // only meaningful for fuel-cut launches
        }
        let share = pct(v, slots);
        let bar_len = (share / 2.0).round() as usize;
        let _ = writeln!(
            out,
            "    {:<10} {:>12}  {:>5.1}%  {}",
            r.name(),
            v,
            share,
            "#".repeat(bar_len.min(50))
        );
    }
    out
}

/// Per-set L1D heat map over load accesses, one character per set,
/// [`HEAT_COLS`] sets per row, with per-row set ranges and the hottest
/// set called out. The XOR-folded set hash should keep this flat; hot
/// rows reveal conflict pathologies the aggregate hit rate hides.
pub fn heat_map(p: &LaunchProfile) -> String {
    let totals = p.set_totals();
    let max = totals.iter().map(|t| t.accesses).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  L1D heat map ({} sets, {}-way, {} B lines; ramp \"{}\" scaled to max {} accesses/set):",
        totals.len(),
        p.l1.assoc,
        p.l1.line_bytes,
        RAMP.iter().collect::<String>(),
        max
    );
    for (row, chunk) in totals.chunks(HEAT_COLS).enumerate() {
        let cells: String = chunk
            .iter()
            .map(|t| {
                // Top ramp level is reserved for the maximum itself; an
                // all-zero map (max == 0) renders blank.
                let level = (t.accesses * (RAMP.len() as u64 - 1))
                    .checked_div(max)
                    .unwrap_or(0);
                RAMP[level as usize]
            })
            .collect();
        let lo = row * HEAT_COLS;
        let _ = writeln!(
            out,
            "    set {:>4}..{:>4} |{}|",
            lo,
            lo + chunk.len(),
            cells
        );
    }
    if let Some((hot, t)) = totals
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| (t.accesses, t.misses))
    {
        let _ = writeln!(
            out,
            "  hottest set {hot}: {} accesses, {} hits, {} misses, {} evictions, {} stores",
            t.accesses, t.hits, t.misses, t.evictions, t.stores
        );
    }
    out
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_sim::config::L1Config;
    use catt_sim::profile::{ProfileSink, SmProfile};

    fn profile_with_activity() -> LaunchProfile {
        let l1 = L1Config {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            assoc: 4,
        };
        let mut sm = SmProfile::for_sm(0, l1, 4, 2, true);
        for i in 0..300u32 {
            sm.l1_load(i % 7, i, i % 3 == 0, false);
        }
        sm.l1_store(2, 1000);
        sm.stall(StallReason::Memory, 40);
        sm.stall(StallReason::Scoreboard, 10);
        sm.sm_end(100, 4, 350);
        let mut p = LaunchProfile::new("k".into(), catt_ir::LaunchConfig::d1(4, 64), l1);
        p.complete = true;
        sm.finish_into(&mut p);
        p
    }

    #[test]
    fn stall_report_mentions_reasons_and_utilization() {
        let r = stall_report(&profile_with_activity());
        assert!(r.contains("kernel `k`"));
        assert!(r.contains("memory"));
        assert!(r.contains("scoreboard"));
        assert!(r.contains("utilization"));
        assert!(!r.contains("fuel"), "fuel row hidden when zero");
    }

    #[test]
    fn heat_map_covers_every_set_once() {
        let p = profile_with_activity();
        let h = heat_map(&p);
        let cells: usize = h
            .lines()
            .filter_map(|l| Some(l.split('|').nth(1)?.chars().count()))
            .sum();
        assert_eq!(cells, p.l1.num_sets() as usize);
        assert!(h.contains("hottest set"));
    }

    #[test]
    fn pct_handles_zero_denominator() {
        assert_eq!(pct(5, 0), 0.0);
        assert!((pct(1, 4) - 25.0).abs() < 1e-12);
    }
}
