//! Eq. 8 model validation: static footprint prediction vs observed
//! working set.
//!
//! The paper's central claim is that the compile-time footprint estimate
//! (`SIZE_req`, Eq. 8) predicts cache contention well enough to drive
//! throttling decisions. This module closes that loop per workload: for
//! every analyzable loop it pairs the static per-SM footprint (in cache
//! lines) with what the profiled run actually observed — the per-SM
//! unique-line working set and the L1D miss rates (cold and warm).
//!
//! Granularity caveat, stated rather than hidden: predictions are
//! per-*loop*, observations are per-*kernel launch* (the sink does not
//! attribute accesses to source loops). For the paper's workloads each
//! kernel's traffic is dominated by one loop nest, so the comparison is
//! meaningful; multi-loop kernels repeat the same observed columns
//! against each loop's prediction.

use catt_sim::profile::LaunchProfile;
use catt_sim::GpuConfig;
use catt_workloads::registry::Workload;
use std::fmt::Write as _;

/// One prediction-vs-observation row (one analyzable loop).
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Kernel the loop belongs to.
    pub kernel: String,
    /// Loop id within the kernel (1-based, as `catt analyze` prints).
    pub loop_id: usize,
    /// Eq. 8 static per-SM footprint, in cache lines.
    pub predicted_lines: u64,
    /// L1D capacity in lines the prediction was compared against.
    pub l1d_lines: u64,
    /// Whether the analysis predicted contention (footprint > capacity
    /// with regular divergence and locality).
    pub contended: bool,
    /// Observed: largest per-SM unique-line working set over the profiled
    /// launches of this kernel.
    pub observed_lines: usize,
    /// Observed: overall L1D load miss rate of this kernel's launches.
    pub miss_rate: f64,
    /// Observed: miss rate excluding each SM's first miss-curve window
    /// (the compulsory-miss warm-up). A fitting working set goes low; a
    /// thrashing one stays near the cold rate.
    pub warm_miss_rate: f64,
}

/// Per-kernel observed aggregates from the captured profiles.
struct Observed {
    max_unique_lines: usize,
    accesses: u64,
    misses: u64,
    warm_accesses: u64,
    warm_misses: u64,
}

fn observe(kernel: &str, profiles: &[LaunchProfile]) -> Observed {
    let mut o = Observed {
        max_unique_lines: 0,
        accesses: 0,
        misses: 0,
        warm_accesses: 0,
        warm_misses: 0,
    };
    for p in profiles.iter().filter(|p| p.kernel == kernel) {
        o.max_unique_lines = o.max_unique_lines.max(p.max_unique_lines_per_sm());
        for sm in &p.sms {
            for (wi, w) in sm.miss_curve.iter().enumerate() {
                o.accesses += w.accesses as u64;
                o.misses += w.misses as u64;
                if wi > 0 {
                    o.warm_accesses += w.accesses as u64;
                    o.warm_misses += w.misses as u64;
                }
            }
        }
    }
    o
}

/// Pair every analyzable loop of `w`'s kernels with the observations in
/// `profiles` (as captured by `run_profiled` for the same config).
/// Kernels the analysis cannot plan for (unlaunchable geometry) are
/// skipped.
pub fn model_rows(w: &Workload, config: &GpuConfig, profiles: &[LaunchProfile]) -> Vec<ModelRow> {
    let mut rows = Vec::new();
    for (i, kernel) in w.kernels().iter().enumerate() {
        let Ok(program) = catt_sim::lower(kernel) else {
            continue;
        };
        let Some(analysis) = catt_core::analysis::analyze_kernel(
            kernel,
            w.launch(i),
            config,
            program.num_regs as u32,
        ) else {
            continue;
        };
        let l1d_lines = (analysis.plan.l1d_bytes / analysis.plan.config.l1_line_bytes) as u64;
        let o = observe(&kernel.name, profiles);
        let rate = |m: u64, a: u64| if a == 0 { 0.0 } else { m as f64 / a as f64 };
        for l in &analysis.loops {
            rows.push(ModelRow {
                kernel: kernel.name.clone(),
                loop_id: l.loop_id + 1,
                predicted_lines: l.size_req_lines,
                l1d_lines,
                contended: l.contended,
                observed_lines: o.max_unique_lines,
                miss_rate: rate(o.misses, o.accesses),
                warm_miss_rate: rate(o.warm_misses, o.warm_accesses),
            });
        }
    }
    rows
}

/// Render rows as the predicted-vs-observed table `catt profile` prints.
pub fn render(rows: &[ModelRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<24} {:>4}  {:>10} {:>9} {:>9}  {:>9} {:>9}  contended",
        "kernel/loop", "", "pred lines", "L1D lines", "obs lines", "miss%", "warm miss%"
    );
    if rows.is_empty() {
        let _ = writeln!(out, "  (no analyzable loops)");
        return out;
    }
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<24} {:>4}  {:>10} {:>9} {:>9}  {:>8.1}% {:>8.1}%  {}",
            r.kernel,
            format!("L{}", r.loop_id),
            r.predicted_lines,
            r.l1d_lines,
            r.observed_lines,
            100.0 * r.miss_rate,
            100.0 * r.warm_miss_rate,
            if r.contended { "yes" } else { "no" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_workloads::harness::{eval_config_max_l1d, run_profiled};
    use catt_workloads::registry;

    #[test]
    fn atax_predictions_pair_with_observations() {
        let w = registry::find("ATAX").unwrap();
        let config = eval_config_max_l1d();
        let (_, profiles) = run_profiled(&w, &config).expect("profiled run");
        let rows = model_rows(&w, &config, &profiles);
        assert!(!rows.is_empty(), "ATAX has analyzable loops");
        // The profiled run must have produced observations for the same
        // kernels the analysis predicts for.
        assert!(rows.iter().any(|r| r.observed_lines > 0));
        let table = render(&rows);
        assert!(table.contains("pred lines"));
        assert!(table.contains("L1"));
    }
}
