//! Chrome `trace_event` export.
//!
//! The output is the JSON object format (`{"traceEvents": [...]}`) with
//! complete events (`"ph": "X"`), loadable in `chrome://tracing` or
//! Perfetto. Mapping:
//!
//! * `pid` — SM id (one "process" lane group per SM);
//! * `tid` — warp slot for exec/barrier segments; `1000 + tb_slot` for
//!   block-residency spans, so blocks group below the warps of their SM;
//! * `ts`/`dur` — cycles, reported as microseconds (1 cycle = 1 µs; the
//!   viewer's time unit is cosmetic).
//!
//! Launches are laid out back to back on one global timeline: each
//! launch's events are offset by the cumulative cycle count of the
//! launches before it (plus a small gap so boundaries are visible).

use crate::json::escape;
use catt_sim::profile::{LaunchProfile, PhaseKind};
use std::fmt::Write as _;

/// Visual gap between consecutive launches on the shared timeline.
const LAUNCH_GAP: u64 = 16;

/// Render `profiles` (one per launch, in launch order) as one Chrome
/// trace document.
pub fn chrome_trace(profiles: &[LaunchProfile]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut offset = 0u64;
    for p in profiles {
        let kernel = escape(&p.kernel);
        for sm in &p.sms {
            for e in &sm.events {
                let (tid, name) = match e.kind {
                    PhaseKind::Exec => (e.warp as u64, format!("exec b{}", e.block)),
                    PhaseKind::Barrier => (e.warp as u64, format!("barrier b{}", e.block)),
                    PhaseKind::Block => (1000 + e.warp as u64, format!("block {}", e.block)),
                };
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": {}, \
                     \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{\"kernel\": \"{}\"}}}}",
                    escape(&name),
                    kind_label(e.kind),
                    sm.sm_id,
                    tid,
                    offset + e.start,
                    e.end - e.start,
                    kernel,
                );
            }
        }
        let launch_cycles = p.sms.iter().map(|s| s.cycles).max().unwrap_or(0);
        offset += launch_cycles + LAUNCH_GAP;
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

fn kind_label(k: PhaseKind) -> &'static str {
    match k {
        PhaseKind::Exec => "exec",
        PhaseKind::Barrier => "barrier",
        PhaseKind::Block => "block",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_sim::config::L1Config;
    use catt_sim::profile::{ProfileSink, SmProfile};

    fn l1() -> L1Config {
        L1Config {
            size_bytes: 4 * 1024,
            line_bytes: 128,
            assoc: 4,
        }
    }

    fn sample_profile(kernel: &str) -> LaunchProfile {
        let mut sm = SmProfile::for_sm(0, l1(), 2, 1, true);
        sm.tb_start(0, 0, 0);
        sm.warp_begin(0, 0, 0);
        sm.warp_barrier(0, 10);
        sm.warp_release(0, 12);
        sm.warp_done(0, 20);
        sm.tb_end(0, 0, 21);
        sm.sm_end(21, 2, 9);
        let mut p = LaunchProfile::new(kernel.into(), catt_ir::LaunchConfig::d1(1, 32), l1());
        p.complete = true;
        sm.finish_into(&mut p);
        p
    }

    #[test]
    fn trace_is_valid_json_with_expected_shape() {
        let trace = chrome_trace(&[sample_profile("k1"), sample_profile("k\"2\"")]);
        crate::json::validate(&trace).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"X\""));
        // Block spans land on the offset tid lane.
        assert!(trace.contains("\"tid\": 1000"));
    }

    #[test]
    fn second_launch_is_offset_past_the_first() {
        let trace = chrome_trace(&[sample_profile("a"), sample_profile("b")]);
        // First launch runs 21 cycles; the second starts at 21 + gap.
        assert!(trace.contains(&format!("\"ts\": {}", 21 + LAUNCH_GAP)));
    }

    #[test]
    fn empty_profile_list_is_still_valid() {
        let trace = chrome_trace(&[]);
        crate::json::validate(&trace).unwrap();
    }
}
