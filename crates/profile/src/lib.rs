//! # catt-profile — the repo's nvprof
//!
//! Consumers of the profiles recorded by `catt-sim`'s in-simulator tracer
//! (see `catt_sim::profile` for the event model). Three views of a
//! [`LaunchProfile`]:
//!
//! * [`chrome`] — a Chrome `trace_event` JSON file: per-warp exec/barrier
//!   timelines and per-slot block-residency spans, loadable in
//!   `chrome://tracing` / Perfetto. A throttled kernel's warp-group
//!   alternation is directly visible.
//! * [`report`] — nvprof-style text: the stall-reason breakdown (what
//!   fraction of issue slots went to memory, scoreboard, barrier, ...)
//!   and a per-set L1D heat map exposing conflict pathologies.
//! * [`model`] — the validation loop the paper argues from: the static
//!   Eq. 8 footprint (`SIZE_req`) per loop against the *observed*
//!   unique-line working set and miss rate of the profiled run.
//!
//! [`check_invariants`] and [`check_against_stats`] re-verify on every
//! consumer run that profiles reconcile exactly with the simulator's own
//! counters — profiling that disagrees with the stats it annotates is
//! worse than no profiling.
//!
//! The workspace is dependency-free, so [`json`] provides the minimal
//! validator the trace exporter is tested against.

pub mod chrome;
pub mod json;
pub mod model;
pub mod report;

pub use catt_sim::{LaunchProfile, SetCounters, SmProfile, StallReason};

use catt_sim::LaunchStats;

/// Verify the internal accounting invariants of a completed profile:
/// every issue slot of every SM is either an issued instruction or a
/// stall charged to exactly one reason, and fuel stalls only appear in
/// partial (errored) profiles. Returns a description of the first
/// violation.
pub fn check_invariants(p: &LaunchProfile) -> Result<(), String> {
    if !p.complete {
        return Err(format!(
            "`{}`: profile is partial (the launch errored); invariants only hold for complete runs",
            p.kernel
        ));
    }
    for sm in &p.sms {
        let slots = sm.issue_slots();
        let used = sm.instructions + sm.total_stall_cycles();
        if used != slots {
            return Err(format!(
                "`{}` SM {}: {} instructions + {} stall cycles != {} issue slots ({} cycles x {} schedulers)",
                p.kernel,
                sm.sm_id,
                sm.instructions,
                sm.total_stall_cycles(),
                slots,
                sm.cycles,
                sm.schedulers
            ));
        }
        let fuel = sm.stall_cycles[StallReason::Fuel as usize];
        if fuel != 0 {
            return Err(format!(
                "`{}` SM {}: {fuel} fuel stall cycles in a completed launch",
                p.kernel, sm.sm_id
            ));
        }
    }
    Ok(())
}

/// Verify that profiles reconcile with the accumulated [`LaunchStats`]
/// of the same run: per-set counters must sum to the aggregate L1
/// counters, per-SM instruction and cycle shards to the aggregate
/// totals. `stats` is the accumulated stats over exactly the launches
/// `profiles` describes (e.g. one `RunOutcome` and the profiles captured
/// alongside it).
pub fn check_against_stats(profiles: &[LaunchProfile], stats: &LaunchStats) -> Result<(), String> {
    let mut accesses = 0u64;
    let mut hits = 0u64;
    let mut misses_and_stores = 0u64;
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let mut l2_accesses = 0u64;
    let mut l2_hits = 0u64;
    let mut l2_evictions = 0u64;
    for p in profiles {
        check_invariants(p)?;
        for t in p.set_totals() {
            accesses += t.accesses;
            hits += t.hits;
            misses_and_stores += t.misses + t.stores;
        }
        instructions += p.instructions();
        // A launch's cycle count is the max over its SMs (they run
        // concurrently); accumulated stats sum the launches.
        cycles += p.sms.iter().map(|s| s.cycles).max().unwrap_or(0);
        for sm in &p.sms {
            l2_accesses += sm.l2_accesses;
            l2_hits += sm.l2_hits;
            l2_evictions += sm.l2_evictions;
        }
    }
    let checks = [
        ("l1_accesses", accesses, stats.l1_accesses),
        ("l1_hits", hits, stats.l1_hits),
        (
            "offchip_requests",
            misses_and_stores,
            stats.offchip_requests,
        ),
        ("instructions", instructions, stats.instructions),
        ("cycles", cycles, stats.cycles),
        ("l2_accesses", l2_accesses, stats.l2_accesses),
        ("l2_hits", l2_hits, stats.l2_hits),
        ("l2_evictions", l2_evictions, stats.l2_evictions),
    ];
    for (name, profiled, reported) in checks {
        if profiled != reported {
            return Err(format!(
                "profile/stats mismatch on {name}: profiles sum to {profiled}, stats report {reported}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_workloads::harness::run_profiled;
    use catt_workloads::registry;

    #[test]
    fn profiles_reconcile_with_stats_end_to_end() {
        let w = registry::find("ATAX").expect("registry has ATAX");
        let config = catt_workloads::harness::eval_config_max_l1d();
        let (out, profiles) = run_profiled(&w, &config).expect("profiled run");
        assert!(!profiles.is_empty(), "capture must deliver profiles");
        check_against_stats(&profiles, &out.stats).unwrap();
    }
}
