//! A minimal JSON validator (recursive descent, no allocation beyond the
//! recursion) used to test the Chrome-trace exporter. The workspace is
//! deliberately dependency-free, so this stands in for `serde_json` in
//! the narrow role of "does this byte string parse as JSON at all".

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validate that `s` is one well-formed JSON value (with nothing but
/// whitespace after it).
pub fn validate(s: &str) -> Result<(), JsonError> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.i,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits_start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let frac = self.i;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let exp = self.i;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a": [1, 2, {"b": "x\ny"}], "c": true}"#,
            r#" { "traceEvents" : [ ] } "#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} trailing",
            "01e",
        ] {
            assert!(validate(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn escape_roundtrips_through_validate() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        validate(&doc).unwrap();
    }
}
