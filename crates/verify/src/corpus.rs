//! The replayable regression corpus.
//!
//! Every counterexample the fuzzer finds is persisted as a plain `.cu`
//! file whose leading `//` directives record the launch geometry, buffer
//! sizes, the offending transform recipe, and the observed disagreement.
//! The kernel source below the directives is the (shrunk) IR printed by
//! `catt_ir::printer` — a file a human can read and a future fuzzer run
//! can replay.
//!
//! **Replay contract**: replaying an entry runs the *legal-mode* oracle
//! on the recorded kernel and asserts it finds nothing. A corpus entry
//! is a bug that was fixed — the recorded `variant:`/`violation:` lines
//! document what used to go wrong (e.g. the pre-legality-prover
//! divergent-barrier miscompile); if any violation reproduces, a fix
//! regressed. File names are derived from an FNV-1a digest of the
//! content (`cex-<hash>.cu`), so writes are idempotent and diffable.

use crate::generate::TestCase;
use crate::oracle::{self, CaseOutcome, Recipe};
use crate::Violation;
use catt_frontend::parse_kernel;
use catt_ir::printer::kernel_to_string;
use catt_ir::{Dim3, LaunchConfig};
use catt_sim::Fnv64;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed corpus file.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    pub case: TestCase,
    /// The historical offending recipe (documentation; replay re-checks
    /// every currently-legal variant, not just this one).
    pub recipe: Option<Recipe>,
    /// The historical `violation:` line.
    pub note: String,
}

/// Render a violation as a corpus file.
pub fn entry_to_string(v: &Violation) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// catt-fuzz counterexample (replayable regression corpus)"
    );
    let _ = writeln!(out, "// seed: {:#018x}", v.case_seed);
    let g = v.case.launch.grid;
    let b = v.case.launch.block;
    let _ = writeln!(out, "// grid: {} {} {}", g.x, g.y, g.z);
    let _ = writeln!(out, "// block: {} {} {}", b.x, b.y, b.z);
    for (name, len) in &v.case.buffers {
        let _ = writeln!(out, "// buffer: {name} {len}");
    }
    if let Some(r) = &v.recipe {
        let _ = writeln!(out, "// variant: {}", r.describe());
    }
    let _ = writeln!(
        out,
        "// violation: {} — original {} vs variant {}",
        v.kind.label(),
        v.baseline,
        v.variant
    );
    out.push_str(&kernel_to_string(&v.case.kernel));
    out
}

/// Write a violation into `dir` (created if missing). The file name is
/// content-addressed, so re-finding the same counterexample is a no-op.
pub fn write_entry(dir: &Path, v: &Violation) -> std::io::Result<PathBuf> {
    let text = entry_to_string(v);
    let mut h = Fnv64::new();
    h.write(text.as_bytes());
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("cex-{:016x}.cu", h.finish()));
    fs::write(&path, text)?;
    Ok(path)
}

fn parse_dim3(s: &str) -> Option<Dim3> {
    let mut it = s.split_whitespace().map(|w| w.parse::<u32>().ok());
    let d = Dim3 {
        x: it.next()??,
        y: it.next()??,
        z: it.next()??,
    };
    if it.next().is_some() {
        return None;
    }
    Some(d)
}

/// Parse a corpus file's text.
pub fn parse_entry(text: &str) -> Result<CorpusEntry, String> {
    let mut grid = None;
    let mut block = None;
    let mut buffers: Vec<(String, u32)> = Vec::new();
    let mut recipe = None;
    let mut note = String::new();
    let mut src = String::new();
    for line in text.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("//") {
            let rest = rest.trim();
            if let Some(v) = rest.strip_prefix("grid:") {
                grid = parse_dim3(v.trim());
            } else if let Some(v) = rest.strip_prefix("block:") {
                block = parse_dim3(v.trim());
            } else if let Some(v) = rest.strip_prefix("buffer:") {
                let mut it = v.split_whitespace();
                let name = it.next().ok_or("buffer: directive missing name")?;
                let len: u32 = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| format!("buffer: bad length for `{name}`"))?;
                buffers.push((name.to_string(), len));
            } else if let Some(v) = rest.strip_prefix("variant:") {
                recipe = Recipe::parse(v.trim());
            } else if let Some(v) = rest.strip_prefix("violation:") {
                note = v.trim().to_string();
            }
        } else {
            src.push_str(line);
            src.push('\n');
        }
    }
    let kernel = parse_kernel(&src).map_err(|e| format!("kernel does not parse: {e}"))?;
    let launch = LaunchConfig {
        grid: grid.ok_or("missing `// grid:` directive")?,
        block: block.ok_or("missing `// block:` directive")?,
    };
    if buffers.len() != kernel.params.len() {
        return Err(format!(
            "{} `// buffer:` directives for {} kernel parameters",
            buffers.len(),
            kernel.params.len()
        ));
    }
    Ok(CorpusEntry {
        case: TestCase {
            kernel,
            launch,
            buffers,
        },
        recipe,
        note,
    })
}

/// Read one corpus file.
pub fn read_entry(path: &Path) -> Result<CorpusEntry, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_entry(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Read every `.cu` file in `dir`, sorted by file name (deterministic
/// replay order).
pub fn read_dir_sorted(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("cu"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| read_entry(&p).map(|e| (p, e)))
        .collect()
}

/// Replay one entry: the legal-mode oracle must find nothing today.
/// Returns the number of variants it checked.
pub fn replay(entry: &CorpusEntry) -> Result<u32, String> {
    match oracle::check_case(&entry.case, true) {
        CaseOutcome::DirtyOriginal { class } => Err(format!(
            "original kernel screened dirty ({class}); corpus entries must have clean originals"
        )),
        CaseOutcome::Checked {
            variants,
            violations,
        } => {
            if let Some(v) = violations.first() {
                Err(format!(
                    "{} violation(s) reproduce; first: {} — original {} vs variant {}",
                    violations.len(),
                    v.recipe.describe(),
                    v.baseline,
                    v.variant
                ))
            } else {
                Ok(variants)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Violation, ViolationKind};
    use catt_ir::LaunchConfig;

    fn sample_violation() -> Violation {
        let kernel = parse_kernel(
            "__global__ void m(float *a, float *out) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < 40) {
                     for (int j = 0; j < 8; j++) { out[i] += a[i * 8 + j]; }
                 }
             }",
        )
        .unwrap();
        Violation {
            case_seed: 0x1234_5678_9ABC_DEF0,
            kind: ViolationKind::Classification,
            recipe: Some(Recipe::WarpThrottle { loop_id: 0, n: 2 }),
            baseline: "ok".into(),
            variant: "sanitizer: barrier divergence".into(),
            stmt_count: 4,
            case: TestCase {
                kernel,
                launch: LaunchConfig::d1(1, 64),
                buffers: vec![("a".into(), 320), ("out".into(), 64)],
            },
        }
    }

    #[test]
    fn entry_round_trips_through_text() {
        let v = sample_violation();
        let text = entry_to_string(&v);
        let entry = parse_entry(&text).unwrap();
        assert_eq!(entry.case, v.case);
        assert_eq!(entry.recipe, v.recipe);
        assert!(entry.note.contains("classification"));
    }

    #[test]
    fn write_is_content_addressed_and_replayable() {
        let dir = std::env::temp_dir().join("catt-verify-corpus-test");
        let _ = fs::remove_dir_all(&dir);
        let v = sample_violation();
        let p1 = write_entry(&dir, &v).unwrap();
        let p2 = write_entry(&dir, &v).unwrap();
        assert_eq!(p1, p2, "same content must address the same file");
        let entries = read_dir_sorted(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        // The recorded loop is ineligible under the legality prover
        // (divergent guard), so the legal-mode oracle is clean: the
        // entry replays as a passing regression test.
        let checked = replay(&entries[0].1).unwrap();
        assert!(checked > 0, "replay must exercise at least one variant");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_entries_are_rejected_with_context() {
        assert!(parse_entry("__global__ void k(float *a) { }").is_err()); // no dims
        let text = "// grid: 1 1 1\n// block: 32 1 1\n__global__ void k(float *a) { }\n";
        let err = parse_entry(text).unwrap_err();
        assert!(err.contains("buffer"), "{err}");
    }
}
