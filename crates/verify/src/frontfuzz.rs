//! Frontend fuzz campaign (`catt fuzz --frontend`): mutational fuzzing
//! of the lexer/parser over printed registry kernels.
//!
//! Each iteration takes a real kernel source, applies a small stack of
//! mutations (byte flips, truncation, token splices, slice duplication),
//! and feeds the result to [`catt_frontend::parse_module_recover`] under
//! `catch_unwind`. The frontend's contract on *arbitrary* input:
//!
//! 1. **No panics** — every input produces a `ParseOutcome`, never an
//!    unwind.
//! 2. **Errors explain themselves** — when the outcome is not clean, at
//!    least one error-severity diagnostic is present (and the strict
//!    [`catt_frontend::parse_module`] mirror returns `Err` carrying the
//!    same diagnostics).
//! 3. **Spans stay in bounds** — every diagnostic byte span lies within
//!    the mutated source.
//!
//! Everything derives from the master seed through `catt-prng`: the same
//! seed and seed-corpus produce a byte-identical report.

use catt_diag::Severity;
use catt_frontend::parse_module_recover;
use catt_prng::Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Knobs of one frontend campaign.
#[derive(Debug, Clone)]
pub struct FrontFuzzOptions {
    /// Master seed; each case derives its own sub-seed.
    pub seed: u64,
    /// Number of mutated sources to check.
    pub iters: u32,
}

impl Default for FrontFuzzOptions {
    fn default() -> FrontFuzzOptions {
        FrontFuzzOptions {
            seed: 1,
            iters: 300,
        }
    }
}

/// One frontend contract violation.
#[derive(Debug, Clone)]
pub struct FrontViolation {
    pub case_seed: u64,
    /// `"panic"`, `"missing-diagnostic"`, or `"span-out-of-bounds"`.
    pub kind: &'static str,
    pub detail: String,
    /// The mutated source that witnessed the violation.
    pub source: String,
}

/// Deterministic result of [`run_frontend_fuzz`].
#[derive(Debug, Clone)]
pub struct FrontFuzzReport {
    pub seed: u64,
    pub iters: u32,
    pub cases: u32,
    /// Mutated sources the recovering parser still accepted cleanly.
    pub parsed_clean: u32,
    /// Mutated sources rejected (with diagnostics, when the contract holds).
    pub rejected: u32,
    /// Total diagnostics observed across the campaign.
    pub diagnostics_seen: u64,
    pub violations: Vec<FrontViolation>,
}

impl FrontFuzzReport {
    /// Render as stable text (mirrors `FuzzReport::render`'s shape).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "catt-fuzz frontend report (seed {}, {} iters)",
            self.seed, self.iters
        );
        let _ = writeln!(out, "  sources mutated ......... {}", self.cases);
        let _ = writeln!(out, "  parsed clean ............ {}", self.parsed_clean);
        let _ = writeln!(out, "  rejected with errors .... {}", self.rejected);
        let _ = writeln!(out, "  diagnostics seen ........ {}", self.diagnostics_seen);
        let _ = writeln!(out, "  violations .............. {}", self.violations.len());
        for (i, v) in self.violations.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{}] {} (case seed {:#018x}): {}",
                i + 1,
                v.kind,
                v.case_seed,
                v.detail
            );
            for line in v.source.lines().take(12) {
                let _ = writeln!(out, "      | {line}");
            }
        }
        out
    }
}

/// Token pool for splice mutations: frontend keywords, punctuation that
/// changes nesting, and lexer edge cases (huge literals, half-open
/// comments, stray directives).
const SPLICE_TOKENS: &[&str] = &[
    "for",
    "while",
    "if",
    "else",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    "++",
    "--",
    "+=",
    "__syncthreads();",
    "__shared__",
    "__global__",
    "#define",
    "/*",
    "*/",
    "//",
    "?",
    ":",
    "@",
    "$",
    "0x",
    "1e",
    "1e999",
    "99999999999999999999",
    ".5f",
    "threadIdx.x",
    "threadIdx.q",
    "u",
    "\u{fffd}",
];

/// Apply one PRNG-chosen mutation to `bytes`.
fn mutate(bytes: &mut Vec<u8>, rng: &mut Rng) {
    if bytes.is_empty() {
        bytes.extend_from_slice(b"{");
        return;
    }
    match rng.bounded_u64(4) {
        // Byte flip: any byte value, including invalid UTF-8 lead bytes.
        0 => {
            let at = rng.bounded_u64(bytes.len() as u64) as usize;
            bytes[at] = rng.bounded_u64(256) as u8;
        }
        // Truncation.
        1 => {
            let at = rng.bounded_u64(bytes.len() as u64) as usize;
            bytes.truncate(at);
        }
        // Token splice.
        2 => {
            let tok = SPLICE_TOKENS[rng.bounded_u64(SPLICE_TOKENS.len() as u64) as usize];
            let at = rng.bounded_u64(bytes.len() as u64 + 1) as usize;
            let mut out = Vec::with_capacity(bytes.len() + tok.len());
            out.extend_from_slice(&bytes[..at]);
            out.extend_from_slice(tok.as_bytes());
            out.extend_from_slice(&bytes[at..]);
            *bytes = out;
        }
        // Duplicate a slice (grows nesting depth, repeats constructs).
        _ => {
            let a = rng.bounded_u64(bytes.len() as u64) as usize;
            let b = rng.bounded_u64(bytes.len() as u64) as usize;
            let (lo, hi) = (a.min(b), a.max(b).min(a.min(b) + 256));
            let slice = bytes[lo..hi].to_vec();
            let at = rng.bounded_u64(bytes.len() as u64 + 1) as usize;
            let mut out = Vec::with_capacity(bytes.len() + slice.len());
            out.extend_from_slice(&bytes[..at]);
            out.extend_from_slice(&slice);
            out.extend_from_slice(&bytes[at..]);
            *bytes = out;
        }
    }
}

/// Run a frontend fuzz campaign over `seeds` (kernel sources — typically
/// the printed registry workloads). Pure: no filesystem access, no
/// wall-clock dependence.
pub fn run_frontend_fuzz(seeds: &[String], opts: &FrontFuzzOptions) -> FrontFuzzReport {
    let mut report = FrontFuzzReport {
        seed: opts.seed,
        iters: opts.iters,
        cases: 0,
        parsed_clean: 0,
        rejected: 0,
        diagnostics_seen: 0,
        violations: Vec::new(),
    };
    let fallback = "__global__ void k(float *a, int n) { a[0] = 1.0f; }".to_string();
    let mut rng = Rng::seed(opts.seed);
    for _ in 0..opts.iters {
        let case_seed = rng.next_u64();
        let mut case_rng = Rng::seed(case_seed);
        let base = if seeds.is_empty() {
            &fallback
        } else {
            &seeds[case_rng.bounded_u64(seeds.len() as u64) as usize]
        };
        let mut bytes = base.clone().into_bytes();
        for _ in 0..case_rng.range_u32(1, 4) {
            mutate(&mut bytes, &mut case_rng);
        }
        // The frontend consumes `&str`; lossy conversion models what any
        // caller feeding it file contents would do. Replacement chars are
        // themselves a lexer edge case (multi-byte unexpected character).
        let src = String::from_utf8_lossy(&bytes).into_owned();
        report.cases += 1;

        let outcome = catch_unwind(AssertUnwindSafe(|| parse_module_recover(&src)));
        let outcome = match outcome {
            Ok(o) => o,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                report.violations.push(FrontViolation {
                    case_seed,
                    kind: "panic",
                    detail: msg,
                    source: src,
                });
                continue;
            }
        };
        report.diagnostics_seen += outcome.diagnostics.len() as u64;

        // Invariant 3: every span in bounds.
        let mut oob = None;
        for d in &outcome.diagnostics {
            if let Some(span) = d.span {
                if !span.in_bounds(src.len()) {
                    oob = Some(format!(
                        "[{}] span {}..{} outside {}-byte source",
                        d.code,
                        span.start,
                        span.end,
                        src.len()
                    ));
                    break;
                }
            }
            for n in &d.notes {
                if let Some(span) = n.span {
                    if !span.in_bounds(src.len()) {
                        oob = Some(format!(
                            "note span {}..{} outside {}-byte source",
                            span.start,
                            span.end,
                            src.len()
                        ));
                        break;
                    }
                }
            }
        }
        if let Some(detail) = oob {
            report.violations.push(FrontViolation {
                case_seed,
                kind: "span-out-of-bounds",
                detail,
                source: src,
            });
            continue;
        }

        if outcome.is_clean() {
            report.parsed_clean += 1;
        } else {
            report.rejected += 1;
            // Invariant 2: a rejection must carry an error diagnostic.
            if !outcome
                .diagnostics
                .iter()
                .any(|d| d.severity == Severity::Error)
            {
                report.violations.push(FrontViolation {
                    case_seed,
                    kind: "missing-diagnostic",
                    detail: format!(
                        "outcome not clean but no error among {} diagnostics",
                        outcome.diagnostics.len()
                    ),
                    source: src,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> Vec<String> {
        vec![
            "#define NX 512\n__global__ void atax1(float *A, float *B, float *tmp) {\n\
             int i = blockIdx.x * blockDim.x + threadIdx.x;\n\
             if (i < NX) { for (int j = 0; j < NX; j++) { tmp[i] += A[i * NX + j] * B[j]; } }\n}"
                .to_string(),
            "__global__ void s(float *a, int n) {\n\
             __shared__ float buf[64];\n\
             buf[threadIdx.x] = a[threadIdx.x];\n\
             __syncthreads();\n\
             a[threadIdx.x] = buf[63 - threadIdx.x];\n}"
                .to_string(),
        ]
    }

    #[test]
    fn same_seed_same_report() {
        let opts = FrontFuzzOptions { seed: 9, iters: 40 };
        let a = run_frontend_fuzz(&seeds(), &opts);
        let b = run_frontend_fuzz(&seeds(), &opts);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.cases, 40);
    }

    #[test]
    fn campaign_is_clean_and_exercises_both_paths() {
        let report = run_frontend_fuzz(
            &seeds(),
            &FrontFuzzOptions {
                seed: 0xF00D,
                iters: 300,
            },
        );
        assert!(
            report.violations.is_empty(),
            "frontend contract violated:\n{}",
            report.render()
        );
        assert!(report.rejected > 0, "mutations never produced a reject");
        assert!(report.diagnostics_seen > 0, "no diagnostics observed");
    }

    #[test]
    fn empty_seed_corpus_falls_back() {
        let report = run_frontend_fuzz(&[], &FrontFuzzOptions { seed: 3, iters: 25 });
        assert_eq!(report.cases, 25);
        assert!(report.violations.is_empty(), "{}", report.render());
    }
}
