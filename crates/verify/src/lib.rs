//! # catt-verify — translation validation for the CATT transforms
//!
//! The throttling transforms (`warp_throttle`, paper Fig. 4;
//! `tb_throttle`, Fig. 5) are meant to be *semantics-preserving*: a
//! throttled kernel must compute exactly what the original computes, only
//! with fewer threads making progress concurrently. This crate checks
//! that claim mechanically, the way translation-validation tools check a
//! compiler pass:
//!
//! 1. **Generate** — [`generate`] derives deterministic random kernels in
//!    the CUDA subset the frontend accepts (affine global accesses,
//!    nested `for`/`while`, divergent `if` guards, `__shared__` staging
//!    with pre-existing barriers) from a [`catt_prng::Rng`] seed, and
//!    checks the printer/parser round-trip `parse(print(k)) == k` on
//!    every one.
//! 2. **Differential oracle** — [`oracle`] enumerates every transform
//!    variant the compiler could emit for the kernel (all
//!    `warp_throttle` loop/divisor combinations, all reachable
//!    `tb_throttle` targets, and their composition) and runs each
//!    against the original under [`catt_sim::Gpu::launch`] with the
//!    simulator sanitizer armed. Variants must produce bit-identical
//!    global memory and the identical [`catt_sim::SimError`]
//!    classification.
//! 3. **Shrink** — [`shrink`] minimizes any counterexample by statement
//!    deletion, control-structure hoisting, and loop-bound reduction
//!    until no single edit still reproduces the failure.
//! 4. **Corpus** — [`corpus`] persists counterexamples as replayable
//!    `.cu` files (`tests/corpus/` at the repository root) so every
//!    past miscompile becomes a regression test.
//!
//! Everything is seeded through `catt-prng` and free of wall-clock or
//! hash-order dependence: the same seed produces a byte-identical
//! [`FuzzReport`].
//!
//! A second campaign targets the *frontend* instead of the transforms:
//! [`frontfuzz`] (`catt fuzz --frontend`) mutates real kernel sources
//! (byte flips, truncation, token splices) and asserts the lexer/parser
//! contract on arbitrary input — no panics, every rejection carries an
//! error diagnostic, every span in bounds.
//!
//! The oracle can also run with the legality analysis *disabled*
//! ([`FuzzOptions::legality_checked`] = false, `catt fuzz --unchecked`),
//! enumerating every barrier-free loop the way the compiler did before
//! the block-uniformity prover existed. In that mode it rediscovers the
//! historical divergent-barrier miscompile (a throttled loop under a
//! thread-divergent guard emits `__syncthreads()` in divergent control
//! flow) and shrinks it to a handful of statements — the seed entry of
//! the regression corpus.

pub mod corpus;
pub mod frontfuzz;
pub mod generate;
pub mod oracle;
pub mod shrink;

pub use frontfuzz::{run_frontend_fuzz, FrontFuzzOptions, FrontFuzzReport, FrontViolation};
pub use generate::{GenOptions, TestCase};
pub use oracle::{CaseOutcome, Recipe};

use catt_frontend::parse_kernel;
use catt_ir::printer::kernel_to_string;

/// Deterministic fill for fuzzing buffers. Word `i` of every buffer is
/// `fill_f32(i)` — shared between the fuzzer and corpus replay so a
/// counterexample file reproduces the exact launch that failed.
pub fn fill_f32(i: u32) -> f32 {
    ((i % 13) + 1) as f32 * 0.5
}

/// Knobs of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed; each case derives its own sub-seed from it.
    pub seed: u64,
    /// Number of kernels to generate and check.
    pub iters: u32,
    /// Minimize counterexamples before reporting them.
    pub shrink: bool,
    /// `true`: throttle only loops the legality analysis admits
    /// (`eligible_loops_for`) — the production configuration, expected to
    /// find nothing. `false`: throttle every barrier-free loop, legal or
    /// not, to exercise the oracle itself.
    pub legality_checked: bool,
}

impl Default for FuzzOptions {
    fn default() -> FuzzOptions {
        FuzzOptions {
            seed: 1,
            iters: 100,
            shrink: true,
            legality_checked: true,
        }
    }
}

/// What kind of disagreement a counterexample witnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// `parse(print(kernel))` differed from `kernel`.
    RoundTrip,
    /// Original and variant completed, with different global memory.
    ResultMismatch,
    /// Original and variant finished with different [`catt_sim::SimError`]
    /// classifications (including: variant flagged by the sanitizer while
    /// the original screened clean).
    Classification,
}

impl ViolationKind {
    /// Stable lowercase label used in reports and corpus files.
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::RoundTrip => "round-trip",
            ViolationKind::ResultMismatch => "result-mismatch",
            ViolationKind::Classification => "classification",
        }
    }
}

/// A verified counterexample: a generated kernel plus the transform
/// recipe whose output disagrees with it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Per-case sub-seed (reproduce with `catt fuzz --seed <sub-seed>
    /// --iters 1` after deriving; recorded for the corpus file).
    pub case_seed: u64,
    pub kind: ViolationKind,
    /// The transform that produced the disagreement (`None` for
    /// round-trip failures, which involve no transform).
    pub recipe: Option<Recipe>,
    /// Classification of the original kernel's run (e.g. `"ok"`).
    pub baseline: String,
    /// Classification of the variant's run (e.g. `"sanitizer: barrier
    /// divergence"`), or a description of the mismatch.
    pub variant: String,
    /// The witnessing case — shrunk if shrinking was enabled.
    pub case: TestCase,
    /// IR statement count of `case.kernel` (after shrinking).
    pub stmt_count: usize,
}

/// Aggregated, deterministic result of [`run_fuzz`]: same options ⇒
/// byte-identical [`FuzzReport::render`] output.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    pub seed: u64,
    pub iters: u32,
    /// Kernels generated (== `iters`).
    pub cases: u32,
    /// Print/parse round-trips checked (every generated kernel).
    pub round_trips: u32,
    /// Originals the sanitizer screen flagged (differential comparison
    /// skipped: a kernel that is already undefined behaviour has no
    /// semantics to preserve).
    pub skipped_dirty: u32,
    /// Transform variants executed and compared.
    pub variants_checked: u32,
    pub violations: Vec<Violation>,
}

impl FuzzReport {
    /// Render the report as stable text (no timestamps, no hash order).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "catt-fuzz report (seed {}, {} iters)",
            self.seed, self.iters
        );
        let _ = writeln!(out, "  kernels generated ....... {}", self.cases);
        let _ = writeln!(out, "  round-trips checked ..... {}", self.round_trips);
        let _ = writeln!(out, "  dirty originals skipped . {}", self.skipped_dirty);
        let _ = writeln!(out, "  variants checked ........ {}", self.variants_checked);
        let _ = writeln!(out, "  violations .............. {}", self.violations.len());
        for (i, v) in self.violations.iter().enumerate() {
            let _ = writeln!(
                out,
                "  [{}] {} (case seed {:#018x}, {} stmts)",
                i + 1,
                v.kind.label(),
                v.case_seed,
                v.stmt_count
            );
            if let Some(r) = &v.recipe {
                let _ = writeln!(out, "      variant: {}", r.describe());
            }
            let _ = writeln!(
                out,
                "      original: {} | variant: {}",
                v.baseline, v.variant
            );
            for line in kernel_to_string(&v.case.kernel).lines() {
                let _ = writeln!(out, "      | {line}");
            }
        }
        out
    }
}

/// Run one fuzzing campaign. Pure apart from simulation: no filesystem
/// access (corpus I/O is the caller's job, see [`corpus`]).
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzReport {
    let mut report = FuzzReport {
        seed: opts.seed,
        iters: opts.iters,
        cases: 0,
        round_trips: 0,
        skipped_dirty: 0,
        variants_checked: 0,
        violations: Vec::new(),
    };
    let mut rng = catt_prng::Rng::seed(opts.seed);
    for _ in 0..opts.iters {
        let case_seed = rng.next_u64();
        let case = generate::generate_case(case_seed, &GenOptions::default());
        report.cases += 1;

        // Translation validation leg 1: the frontend round-trip.
        let printed = kernel_to_string(&case.kernel);
        let round_trip_ok = match parse_kernel(&printed) {
            Ok(reparsed) => reparsed == case.kernel,
            Err(_) => false,
        };
        report.round_trips += 1;
        if !round_trip_ok {
            report.violations.push(Violation {
                case_seed,
                kind: ViolationKind::RoundTrip,
                recipe: None,
                baseline: "parse(print(k)) == k".into(),
                variant: "round-trip mismatch".into(),
                stmt_count: shrink::stmt_count(&case.kernel.body),
                case,
            });
            continue;
        }

        // Leg 2: the differential transform oracle.
        match oracle::check_case(&case, opts.legality_checked) {
            CaseOutcome::DirtyOriginal { .. } => report.skipped_dirty += 1,
            CaseOutcome::Checked {
                variants,
                violations,
            } => {
                report.variants_checked += variants;
                // One witness per failure signature: a miscompiled case
                // typically fails under many recipes at once, and
                // shrinking (a full delta-debug run each) is the
                // expensive part.
                let mut seen: Vec<(ViolationKind, String, String)> = Vec::new();
                let violations: Vec<_> = violations
                    .into_iter()
                    .filter(|v| {
                        let sig = (v.kind, v.baseline.clone(), v.variant.clone());
                        if seen.contains(&sig) {
                            false
                        } else {
                            seen.push(sig);
                            true
                        }
                    })
                    .collect();
                for seed_v in violations {
                    let (shrunk, kind) = if opts.shrink {
                        shrink::shrink_case(&case, opts.legality_checked, &seed_v)
                    } else {
                        (case.clone(), seed_v.kind)
                    };
                    report.violations.push(Violation {
                        case_seed,
                        kind,
                        recipe: Some(seed_v.recipe.clone()),
                        baseline: seed_v.baseline.clone(),
                        variant: seed_v.variant.clone(),
                        stmt_count: shrink::stmt_count(&shrunk.kernel.body),
                        case: shrunk,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_pattern_is_stable() {
        // Corpus files depend on this exact sequence; changing it
        // invalidates every recorded counterexample.
        let head: Vec<f32> = (0..5).map(fill_f32).collect();
        assert_eq!(head, vec![0.5, 1.0, 1.5, 2.0, 2.5]);
        assert_eq!(fill_f32(13), 0.5);
    }

    #[test]
    fn same_seed_same_report() {
        let opts = FuzzOptions {
            seed: 42,
            iters: 10,
            shrink: false,
            legality_checked: true,
        };
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.cases, 10);
        assert_eq!(a.round_trips, 10);
    }

    #[test]
    fn legal_mode_is_clean_on_a_small_campaign() {
        let report = run_fuzz(&FuzzOptions {
            seed: 7,
            iters: 25,
            shrink: false,
            legality_checked: true,
        });
        assert!(
            report.violations.is_empty(),
            "legal transforms must preserve semantics:\n{}",
            report.render()
        );
        assert!(report.variants_checked > 0, "oracle never exercised");
    }
}
