//! Counterexample minimization.
//!
//! Greedy delta debugging over the IR: repeatedly try single edits —
//! statement deletion, hoisting a control structure's body into its
//! parent, halving constant loop bounds — and keep any edit after which
//! the *same* failure signature (baseline classification vs variant
//! classification) still reproduces under the full oracle. The check
//! re-enumerates variants on the edited kernel, so edits that shift
//! pre-order loop numbering or make a transform inapplicable are
//! rejected automatically. Terminates when no single edit reproduces.

use crate::generate::TestCase;
use crate::oracle::ViolationSeed;
use crate::ViolationKind;
use catt_ir::{Expr, Stmt};

/// Recursive statement count (containers count themselves plus their
/// children) — the size metric minimized and reported.
pub fn stmt_count(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        n += 1;
        match s {
            Stmt::For { body, .. } | Stmt::While { body, .. } => n += stmt_count(body),
            Stmt::If { then, els, .. } => n += stmt_count(then) + stmt_count(els),
            _ => {}
        }
    }
    n
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edit {
    /// Drop the statement (children included).
    Delete,
    /// Replace an `If`/`For`/`While` with its body.
    Hoist,
    /// Halve a constant `for` bound (toward trip count 1).
    HalveBound,
}

/// Rebuild `stmts` with `edit` applied to the statement at pre-order
/// index `target`. `applied` reports whether the edit actually landed
/// (the index existed and the edit was applicable there).
fn edit_stmts(
    stmts: &[Stmt],
    target: usize,
    ctr: &mut usize,
    edit: Edit,
    applied: &mut bool,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        let here = *ctr;
        *ctr += 1;
        if here == target {
            match edit {
                Edit::Delete => {
                    *applied = true;
                    continue;
                }
                Edit::Hoist => match s {
                    Stmt::For { body, .. } | Stmt::While { body, .. } => {
                        *applied = true;
                        out.extend(body.iter().cloned());
                        continue;
                    }
                    Stmt::If { then, els, .. } => {
                        *applied = true;
                        out.extend(then.iter().cloned());
                        out.extend(els.iter().cloned());
                        continue;
                    }
                    _ => {}
                },
                Edit::HalveBound => {
                    if let Stmt::For { bound, .. } = s {
                        if let Some(b) = bound.const_int() {
                            if b > 1 {
                                let mut s2 = s.clone();
                                if let Stmt::For { bound, .. } = &mut s2 {
                                    *bound = Expr::int(b / 2);
                                }
                                *applied = true;
                                out.push(s2);
                                continue;
                            }
                        }
                    }
                }
            }
        }
        out.push(match s {
            Stmt::For {
                var,
                decl,
                init,
                cond_op,
                bound,
                step,
                body,
            } => Stmt::For {
                var: var.clone(),
                decl: *decl,
                init: init.clone(),
                cond_op: *cond_op,
                bound: bound.clone(),
                step: step.clone(),
                body: edit_stmts(body, target, ctr, edit, applied),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: cond.clone(),
                body: edit_stmts(body, target, ctr, edit, applied),
            },
            Stmt::If { cond, then, els } => Stmt::If {
                cond: cond.clone(),
                then: edit_stmts(then, target, ctr, edit, applied),
                els: edit_stmts(els, target, ctr, edit, applied),
            },
            other => other.clone(),
        });
    }
    out
}

/// Does the failure signature of `seed` still reproduce on `case`?
fn reproduces(case: &TestCase, legality_checked: bool, seed: &ViolationSeed) -> bool {
    crate::oracle::signature_reproduces(case, legality_checked, &seed.baseline, &seed.variant)
}

/// Minimize `case` while the violation in `seed` keeps reproducing.
/// Returns the shrunk case and the (unchanged) violation kind. Buffers
/// are left as-is: edits only remove or narrow accesses, so the original
/// allocation always still covers them.
pub fn shrink_case(
    case: &TestCase,
    legality_checked: bool,
    seed: &ViolationSeed,
) -> (TestCase, ViolationKind) {
    let mut best = case.clone();
    if !reproduces(&best, legality_checked, seed) {
        // Flaky signature (should not happen: the simulator is
        // deterministic) — return untouched rather than shrink noise.
        return (best, seed.kind);
    }
    loop {
        let mut improved = false;
        'edits: for edit in [Edit::Delete, Edit::Hoist, Edit::HalveBound] {
            let n = stmt_count(&best.kernel.body);
            for target in 0..n {
                let mut applied = false;
                let mut ctr = 0;
                let body = edit_stmts(&best.kernel.body, target, &mut ctr, edit, &mut applied);
                if !applied {
                    continue;
                }
                let mut cand = best.clone();
                cand.kernel.body = body;
                if reproduces(&cand, legality_checked, seed) {
                    best = cand;
                    improved = true;
                    break 'edits;
                }
            }
        }
        if !improved {
            return (best, seed.kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{check_case, CaseOutcome};
    use catt_frontend::parse_kernel;
    use catt_ir::LaunchConfig;

    fn divergent_case_with_junk() -> TestCase {
        // The divergent-barrier miscompile padded with deletable noise.
        let src = "
            __global__ void m(float *a, float *b, float *out) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0f;
                acc += b[i];
                for (int j0 = 0; j0 < 4; j0++) { acc += a[i]; }
                if (i < 40) {
                    acc += b[i];
                    for (int j1 = 0; j1 < 8; j1++) { acc += a[i * 8 + j1]; }
                }
                if (i < 64) { out[i] = acc; }
            }";
        TestCase {
            kernel: parse_kernel(src).unwrap(),
            launch: LaunchConfig::d1(1, 64),
            buffers: vec![("a".into(), 512), ("b".into(), 64), ("out".into(), 64)],
        }
    }

    #[test]
    fn stmt_count_is_recursive() {
        let case = divergent_case_with_junk();
        // decl, decl, acc, for(+1), if(+2: acc, for(+1)), if(+1) = 11.
        assert_eq!(stmt_count(&case.kernel.body), 11);
    }

    #[test]
    fn shrinks_the_divergent_barrier_to_a_handful_of_statements() {
        let case = divergent_case_with_junk();
        let CaseOutcome::Checked { violations, .. } = check_case(&case, false) else {
            panic!("original screened dirty");
        };
        let seed = violations
            .iter()
            .find(|v| v.variant == "sanitizer: barrier divergence")
            .expect("unchecked mode must flag the divergent loop")
            .clone();
        let (shrunk, kind) = shrink_case(&case, false, &seed);
        assert_eq!(kind, crate::ViolationKind::Classification);
        let n = stmt_count(&shrunk.kernel.body);
        assert!(n <= 10, "not minimal: {n} statements");
        assert!(
            reproduces(&shrunk, false, &seed),
            "shrunk case no longer fails"
        );
        // The divergent guard and its loop must have survived.
        let src = catt_ir::printer::kernel_to_string(&shrunk.kernel);
        assert!(src.contains("if ("), "guard gone:\n{src}");
        assert!(src.contains("for ("), "loop gone:\n{src}");
    }
}
