//! Deterministic random kernel generation.
//!
//! Kernels are drawn from the CUDA subset the frontend accepts and the
//! transforms target: a linear thread id, a scalar accumulator, affine
//! reads of global arrays, canonical `for` loops, counted `while` loops,
//! `if` guards (both block-uniform and thread-divergent), and optional
//! `__shared__` staging with a pre-existing `__syncthreads()`. Every
//! global read index carries a generation-time bound, and buffers are
//! sized to cover it, so a clean generated kernel never touches
//! unallocated memory — any sanitizer finding on an *original* kernel is
//! a deliberate dirty injection (see [`GenOptions::dirty_p`]), screened
//! out by the oracle before differential comparison.
//!
//! Generation is pure xoshiro (via `catt-prng`): the same seed always
//! yields the same [`TestCase`].

use catt_ir::expr::{BinOp, Builtin, Expr};
use catt_ir::kernel::{Kernel, LaunchConfig, Param};
use catt_ir::stmt::{LValue, Stmt};
use catt_ir::types::DType;
use catt_prng::Rng;

/// Generator knobs.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Probability of injecting one deliberate undefined behaviour
    /// (divergent barrier, wild read, or inter-block write) into a case.
    /// These exercise the oracle's sanitizer screen; set to `0.0` for
    /// guaranteed-clean kernels.
    pub dirty_p: f64,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions { dirty_p: 0.08 }
    }
}

/// A generated kernel plus everything needed to launch it.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    pub kernel: Kernel,
    pub launch: LaunchConfig,
    /// `(pointer-parameter name, length in f32 words)`, in parameter
    /// order. Word `w` of every buffer is initialized to
    /// [`crate::fill_f32`]`(w)`.
    pub buffers: Vec<(String, u32)>,
}

struct Gen {
    rng: Rng,
    /// Total threads in the launch (`grid.x * block.x`).
    nthreads: i64,
    block: i64,
    grid: i64,
    /// Running upper bound of indices read from `a` / `b`.
    len_a: i64,
    len_b: i64,
    next_for: u32,
    next_while: u32,
    shared_emitted: bool,
}

/// `acc += <array>[<affine index>];` — the workhorse statement. Indices
/// combine the linear tid `i` and the innermost loop variable; the bound
/// of each form is known at generation time and folded into the buffer
/// length.
impl Gen {
    fn accum(&mut self, loops: &[(String, i64)]) -> Stmt {
        let use_a = self.rng.bool(0.5);
        let i = Expr::var("i");
        let (idx, bound) = if loops.is_empty() || self.rng.bool(0.3) {
            (i, self.nthreads)
        } else {
            let (v, trip) = loops[loops.len() - 1].clone();
            let j = Expr::var(v);
            match self.rng.bounded_u64(4) {
                0 => (j, trip),
                1 => (i.mul(Expr::int(trip)).add(j), self.nthreads * trip),
                2 => (i.add(j.mul(Expr::int(self.nthreads))), self.nthreads * trip),
                _ => (i.add(j).rem(Expr::int(self.nthreads)), self.nthreads),
            }
        };
        let arr = if use_a {
            self.len_a = self.len_a.max(bound);
            "a"
        } else {
            self.len_b = self.len_b.max(bound);
            "b"
        };
        Stmt::Assign {
            lhs: LValue::Var("acc".into()),
            op: Some(BinOp::Add),
            rhs: idx.index_into(arr),
        }
    }

    /// A guard condition: block-uniform (`i < c*blockDim`) or
    /// thread-divergent (parity, partial-warp, or off-boundary cuts).
    fn guard(&mut self) -> Expr {
        let i = Expr::var("i");
        match self.rng.bounded_u64(4) {
            0 => {
                // Uniform: cut on a block boundary within the grid.
                let m = 1 + self.rng.bounded_u64(self.grid as u64) as i64;
                i.lt(Expr::int(self.block * m))
            }
            1 => Expr::Builtin(Builtin::ThreadIdxX)
                .rem(Expr::int(2))
                .eq_(Expr::int(0)),
            2 => {
                // Divergent: the cut lands mid-block.
                let m = 1 + self.rng.bounded_u64(self.grid as u64) as i64;
                i.lt(Expr::int(self.block * m - self.block / 2))
            }
            _ => Expr::Builtin(Builtin::ThreadIdxX).lt(Expr::int(16)),
        }
    }

    fn gen_items(&mut self, depth: u32, loops: &mut Vec<(String, i64)>, out: &mut Vec<Stmt>) {
        let n_items = 1 + self.rng.bounded_u64(if depth == 0 { 3 } else { 2 });
        for _ in 0..n_items {
            let roll = self.rng.bounded_u64(10);
            if depth >= 2 || roll < 4 {
                let s = self.accum(loops);
                out.push(s);
            } else if roll < 7 {
                let trip = *self.rng.choose(&[2i64, 4, 8]);
                let var = format!("j{}", self.next_for);
                self.next_for += 1;
                loops.push((var.clone(), trip));
                let mut body = Vec::new();
                self.gen_items(depth + 1, loops, &mut body);
                loops.pop();
                out.push(Stmt::for_up(var, Expr::int(trip), body));
            } else if roll < 8 {
                // Counted while loop (trip count still compile-time
                // bounded, so fuel budgets hold).
                let trip = *self.rng.choose(&[2i64, 4]);
                let var = format!("w{}", self.next_while);
                self.next_while += 1;
                out.push(Stmt::decl_i32(var.clone(), Expr::int(0)));
                loops.push((var.clone(), trip));
                let mut body = Vec::new();
                self.gen_items(depth + 1, loops, &mut body);
                loops.pop();
                body.push(Stmt::assign(
                    var.clone(),
                    Expr::var(var.clone()).add(Expr::int(1)),
                ));
                out.push(Stmt::While {
                    cond: Expr::var(var).lt(Expr::int(trip)),
                    body,
                });
            } else if roll < 9 {
                let cond = self.guard();
                let mut body = Vec::new();
                self.gen_items(depth + 1, loops, &mut body);
                out.push(Stmt::if_then(cond, body));
            } else if depth == 0 && !self.shared_emitted {
                // Shared staging with a pre-existing barrier, in uniform
                // (top-level) control flow: s0[tid] = a[i]; sync;
                // acc += s0[(tid + off) % blockDim].
                self.shared_emitted = true;
                self.len_a = self.len_a.max(self.nthreads);
                out.push(Stmt::DeclShared {
                    name: "s0".into(),
                    elem: DType::F32,
                    len: self.block as u32,
                });
                out.push(Stmt::store(
                    "s0",
                    Expr::Builtin(Builtin::ThreadIdxX),
                    Expr::var("i").index_into("a"),
                ));
                out.push(Stmt::SyncThreads);
                let off = self.rng.bounded_u64(self.block as u64) as i64;
                out.push(Stmt::Assign {
                    lhs: LValue::Var("acc".into()),
                    op: Some(BinOp::Add),
                    rhs: Expr::Builtin(Builtin::ThreadIdxX)
                        .add(Expr::int(off))
                        .rem(Expr::int(self.block))
                        .index_into("s0"),
                });
            } else {
                let s = self.accum(loops);
                out.push(s);
            }
        }
    }
}

/// Generate the deterministic test case for `seed`.
pub fn generate_case(seed: u64, opts: &GenOptions) -> TestCase {
    let mut rng = Rng::seed(seed);
    let block = *rng.choose(&[32i64, 64, 128]);
    let grid = *rng.choose(&[1i64, 2, 4]);
    let mut g = Gen {
        rng,
        nthreads: block * grid,
        block,
        grid,
        len_a: 1,
        len_b: 1,
        next_for: 0,
        next_while: 0,
        shared_emitted: false,
    };

    let mut body = vec![
        Stmt::decl_i32("i", Expr::linear_tid()),
        Stmt::decl_f32("acc", Expr::Float(0.0)),
    ];
    let mut loops = Vec::new();
    g.gen_items(0, &mut loops, &mut body);

    if g.rng.bool(opts.dirty_p) {
        match g.rng.bounded_u64(3) {
            0 => body.push(Stmt::if_then(
                Expr::Builtin(Builtin::ThreadIdxX)
                    .rem(Expr::int(2))
                    .eq_(Expr::int(0)),
                vec![Stmt::SyncThreads],
            )),
            // Wild read far past every allocation (bounds deliberately
            // NOT folded into the buffer length).
            1 => body.push(Stmt::Assign {
                lhs: LValue::Var("acc".into()),
                op: Some(BinOp::Add),
                rhs: Expr::var("i").add(Expr::int(1 << 20)).index_into("a"),
            }),
            // Inter-block write-write race (same addresses from every
            // block); degenerates to a benign store on 1-block grids,
            // which is fine — dirt is probabilistic, not guaranteed.
            _ => body.push(Stmt::store(
                "out",
                Expr::Builtin(Builtin::ThreadIdxX),
                Expr::var("acc"),
            )),
        }
    }

    // The output store is tid-disjoint by construction: no clean kernel
    // ever races on `out`.
    let store = Stmt::store("out", Expr::var("i"), Expr::var("acc"));
    if g.rng.bool(0.25) {
        body.push(Stmt::if_then(
            Expr::var("i").lt(Expr::int(g.nthreads)),
            vec![store],
        ));
    } else {
        body.push(store);
    }

    let kernel = Kernel::new(
        "fz",
        vec![
            Param::ptr("a", DType::F32),
            Param::ptr("b", DType::F32),
            Param::ptr("out", DType::F32),
        ],
        body,
    );
    TestCase {
        kernel,
        launch: LaunchConfig::d1(grid as u32, block as u32),
        buffers: vec![
            ("a".into(), g.len_a.max(1) as u32),
            ("b".into(), g.len_b.max(1) as u32),
            ("out".into(), g.nthreads as u32),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;
    use catt_ir::printer::kernel_to_string;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let a = generate_case(seed, &GenOptions::default());
            let b = generate_case(seed, &GenOptions::default());
            assert_eq!(a, b, "seed {seed:#x} diverged");
        }
    }

    #[test]
    fn every_generated_kernel_round_trips_and_lowers() {
        for seed in 0..150u64 {
            let case = generate_case(seed, &GenOptions::default());
            let printed = kernel_to_string(&case.kernel);
            let reparsed = parse_kernel(&printed).unwrap_or_else(|e| {
                panic!("seed {seed}: printed kernel does not parse: {e}\n{printed}")
            });
            assert_eq!(
                reparsed, case.kernel,
                "seed {seed}: round-trip mismatch\n{printed}"
            );
            catt_sim::lower(&case.kernel)
                .unwrap_or_else(|e| panic!("seed {seed}: does not lower: {e}\n{printed}"));
        }
    }

    #[test]
    fn generator_covers_the_grammar() {
        // Across a modest seed range we must see loops, whiles, guards,
        // and shared staging — otherwise the fuzzer is not exercising
        // the transforms' input space.
        let (mut fors, mut whiles, mut ifs, mut shared) = (0, 0, 0, 0);
        for seed in 0..150u64 {
            let case = generate_case(seed, &GenOptions::default());
            catt_ir::visit::walk_stmts(&case.kernel.body, &mut |s| match s {
                Stmt::For { .. } => fors += 1,
                Stmt::While { .. } => whiles += 1,
                Stmt::If { .. } => ifs += 1,
                Stmt::DeclShared { .. } => shared += 1,
                _ => {}
            });
        }
        assert!(fors > 20, "too few for loops: {fors}");
        assert!(whiles > 5, "too few while loops: {whiles}");
        assert!(ifs > 20, "too few guards: {ifs}");
        assert!(shared > 3, "too little shared staging: {shared}");
    }

    #[test]
    fn clean_generation_never_reads_past_its_buffers() {
        // With dirt disabled, a sanitized run of the original must be
        // clean for every seed (buffers sized from generation-time
        // bounds).
        use catt_sim::{Arg, GlobalMem, Gpu, SimError};
        for seed in 0..40u64 {
            let case = generate_case(seed, &GenOptions { dirty_p: 0.0 });
            let mut mem = GlobalMem::new();
            let args: Vec<Arg> = case
                .buffers
                .iter()
                .map(|(_, len)| {
                    let data: Vec<f32> = (0..*len).map(crate::fill_f32).collect();
                    Arg::Buf(mem.alloc_f32(&data))
                })
                .collect();
            let mut config = catt_sim::GpuConfig::small();
            config.sanitize = Some(true);
            if let Err(e) = Gpu::new(config).launch(&case.kernel, case.launch, &args, &mut mem) {
                match e {
                    SimError::Sanitizer(r) => panic!("seed {seed}: clean kernel flagged: {r}"),
                    other => panic!("seed {seed}: launch failed: {other}"),
                }
            }
        }
    }
}
