//! The differential transform oracle.
//!
//! For one [`TestCase`] the oracle (1) runs the original kernel with the
//! simulator sanitizer armed; (2) enumerates every transform variant the
//! compiler could emit — `warp_throttle` over the eligible loops ×
//! divisors of the block's warp count, `tb_throttle` over reachable TB
//! targets, and warp∘tb compositions as `pipeline`/`multiversion`
//! produce them; (3) runs each variant under the same launch and initial
//! memory and demands **bit-exact global memory** plus the **identical
//! [`SimError`] classification**.
//!
//! Originals the sanitizer flags are *dirty* (deliberate injections from
//! the generator): undefined behaviour has no semantics to preserve, so
//! the differential comparison is skipped and the skip is counted.
//! Conversely a sanitizer report on a *variant* of a clean original is a
//! classification violation — the transform introduced the undefined
//! behaviour (the historical divergent-barrier miscompile surfaces
//! exactly this way).

use crate::generate::TestCase;
use crate::ViolationKind;
use catt_core::{cta_swizzle, eligible_loops_for, tb_throttle, warp_throttle, SwizzlePolicy};
use catt_ir::visit::walk_stmts;
use catt_ir::{Kernel, Stmt};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, SimError};

/// Shared-memory carve-out assumed when enumerating `tb_throttle`
/// targets. 4 KB keeps every dummy allocation well inside the smallest
/// real carve-out option, so variants never fail for capacity reasons.
pub const ORACLE_CARVEOUT_BYTES: u32 = 4096;

/// TB-residency targets the oracle tries (`tb_throttle` returns `None`
/// for unreachable ones, which are skipped, not counted).
pub const TB_TARGETS: std::ops::RangeInclusive<u32> = 1..=4;

/// One transform variant, as a reproducible recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipe {
    /// `warp_throttle(kernel, loop_id, n, warps_per_tb)`.
    WarpThrottle { loop_id: usize, n: u32 },
    /// `tb_throttle(kernel, target_tbs, ORACLE_CARVEOUT_BYTES, smem)`.
    TbThrottle { target_tbs: u32 },
    /// Warp-level throttling followed by TB-level throttling (the
    /// composition the pipeline emits when both decisions fire).
    Composed {
        loop_id: usize,
        n: u32,
        target_tbs: u32,
    },
    /// `cta_swizzle(kernel, policy, grid)` — block-id remapping alone.
    CtaSwizzle { policy: SwizzlePolicy },
    /// CTA swizzle followed by warp-level throttling, the composition the
    /// autotuner emits when both knobs fire. Swizzle runs first, exactly
    /// as the tuner applies it, so the spliced barriers land in the
    /// already-remapped kernel.
    SwizzledWarp {
        policy: SwizzlePolicy,
        loop_id: usize,
        n: u32,
    },
}

/// Integer `k=v` encoding of a swizzle policy for recipe strings
/// (`serp=1`, `tile=4`, `xor=3`) — [`SwizzlePolicy::describe`] itself is
/// not used because `serpentine` carries no value and the recipe parser
/// is strictly key=integer.
fn policy_kv(policy: &SwizzlePolicy) -> String {
    match policy {
        SwizzlePolicy::Serpentine => "serp=1".into(),
        SwizzlePolicy::TileMajor(t) => format!("tile={t}"),
        SwizzlePolicy::XorFold(k) => format!("xor={k}"),
    }
}

fn policy_from_kv(kv: &std::collections::BTreeMap<&str, u64>) -> Option<SwizzlePolicy> {
    if kv.contains_key("serp") {
        return Some(SwizzlePolicy::Serpentine);
    }
    if let Some(t) = kv.get("tile") {
        return Some(SwizzlePolicy::TileMajor(*t as u32));
    }
    kv.get("xor").map(|k| SwizzlePolicy::XorFold(*k as u32))
}

impl Recipe {
    /// Stable one-line description (reports and corpus directives).
    pub fn describe(&self) -> String {
        match self {
            Recipe::WarpThrottle { loop_id, n } => {
                format!("warp_throttle loop={loop_id} n={n}")
            }
            Recipe::TbThrottle { target_tbs } => format!("tb_throttle target={target_tbs}"),
            Recipe::Composed {
                loop_id,
                n,
                target_tbs,
            } => format!("composed loop={loop_id} n={n} target={target_tbs}"),
            Recipe::CtaSwizzle { policy } => format!("cta_swizzle {}", policy_kv(policy)),
            Recipe::SwizzledWarp { policy, loop_id, n } => {
                format!("swizzled_warp {} loop={loop_id} n={n}", policy_kv(policy))
            }
        }
    }

    /// Parse [`Recipe::describe`] output back (corpus replay).
    pub fn parse(s: &str) -> Option<Recipe> {
        let mut kv = std::collections::BTreeMap::new();
        let mut words = s.split_whitespace();
        let head = words.next()?;
        for w in words {
            let (k, v) = w.split_once('=')?;
            kv.insert(k, v.parse::<u64>().ok()?);
        }
        match head {
            "warp_throttle" => Some(Recipe::WarpThrottle {
                loop_id: *kv.get("loop")? as usize,
                n: *kv.get("n")? as u32,
            }),
            "tb_throttle" => Some(Recipe::TbThrottle {
                target_tbs: *kv.get("target")? as u32,
            }),
            "composed" => Some(Recipe::Composed {
                loop_id: *kv.get("loop")? as usize,
                n: *kv.get("n")? as u32,
                target_tbs: *kv.get("target")? as u32,
            }),
            "cta_swizzle" => Some(Recipe::CtaSwizzle {
                policy: policy_from_kv(&kv)?,
            }),
            "swizzled_warp" => Some(Recipe::SwizzledWarp {
                policy: policy_from_kv(&kv)?,
                loop_id: *kv.get("loop")? as usize,
                n: *kv.get("n")? as u32,
            }),
            _ => None,
        }
    }
}

/// A raw oracle finding, before shrinking.
#[derive(Debug, Clone)]
pub struct ViolationSeed {
    pub kind: ViolationKind,
    pub recipe: Recipe,
    pub baseline: String,
    pub variant: String,
}

/// Outcome of [`check_case`].
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// The sanitizer flagged the *original*: differential comparison
    /// skipped (nothing to preserve).
    DirtyOriginal { class: String },
    Checked {
        /// Variants actually executed and compared.
        variants: u32,
        violations: Vec<ViolationSeed>,
    },
}

/// The simulator configuration all oracle runs use: the small test GPU
/// with the sanitizer pinned on (explicit field, immune to
/// `CATT_SANITIZE`) and a generous explicit fuel budget so borderline
/// heuristic budgets cannot turn a slowdown into a classification flip.
pub fn sim_config() -> GpuConfig {
    let mut c = GpuConfig::small();
    c.sanitize = Some(true);
    c.sim_fuel = Some(200_000_000);
    c
}

/// Stable classification of a launch outcome. Variant-independent:
/// program counters and cycle counts are deliberately excluded.
pub fn classify(e: &SimError) -> String {
    match e {
        SimError::BarrierDeadlock { .. } => "barrier-deadlock".into(),
        SimError::OutOfBounds { .. } => "out-of-bounds".into(),
        SimError::FuelExhausted { .. } => "fuel-exhausted".into(),
        SimError::BadArgument { .. } => "bad-argument".into(),
        SimError::MalformedProgram { .. } => "malformed-program".into(),
        SimError::Sanitizer(r) => format!("sanitizer: {}", r.kind.name()),
        SimError::Lower(_) => "lower-error".into(),
        SimError::Cancelled { .. } => "cancelled".into(),
    }
}

/// Run `kernel` under the case's launch geometry on fresh, deterministic
/// memory. Returns the classification and (for clean completions) the
/// global-memory content digest.
pub fn run_case(kernel: &Kernel, case: &TestCase) -> (String, Option<u64>) {
    let mut mem = GlobalMem::new();
    let args: Vec<Arg> = case
        .buffers
        .iter()
        .map(|(_, len)| {
            let data: Vec<f32> = (0..*len).map(crate::fill_f32).collect();
            Arg::Buf(mem.alloc_f32(&data))
        })
        .collect();
    match Gpu::new(sim_config()).launch(kernel, case.launch, &args, &mut mem) {
        Ok(_) => ("ok".into(), Some(mem.content_digest())),
        Err(e) => (classify(&e), None),
    }
}

/// Pre-order ids of loops whose bodies contain no `__syncthreads()` —
/// the enumeration the compiler used *before* the block-uniformity
/// prover existed. Shares `warp_throttle`'s numbering (both walk
/// `For`/`While` pre-order, descending into `If` branches), so an id
/// here addresses the same loop the transform rewrites.
pub fn barrier_free_loops(kernel: &Kernel) -> Vec<usize> {
    fn barrier_free(body: &[Stmt]) -> bool {
        let mut clean = true;
        walk_stmts(body, &mut |s| {
            if matches!(s, Stmt::SyncThreads) {
                clean = false;
            }
        });
        clean
    }
    fn go(stmts: &[Stmt], counter: &mut usize, out: &mut Vec<usize>) {
        for s in stmts {
            match s {
                Stmt::For { body, .. } | Stmt::While { body, .. } => {
                    let id = *counter;
                    *counter += 1;
                    if barrier_free(body) {
                        out.push(id);
                    }
                    go(body, counter, out);
                }
                Stmt::If { then, els, .. } => {
                    go(then, counter, out);
                    go(els, counter, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    go(&kernel.body, &mut 0, &mut out);
    out
}

/// Every variant recipe reachable for this kernel under this launch.
pub fn variant_recipes(kernel: &Kernel, case: &TestCase, legality_checked: bool) -> Vec<Recipe> {
    let launch = case.launch;
    let warps = launch.warps_per_block();
    let loops = if legality_checked {
        eligible_loops_for(
            kernel,
            (launch.block.x, launch.block.y, launch.block.z),
            Some((launch.grid.x, launch.grid.y, launch.grid.z)),
        )
    } else {
        barrier_free_loops(kernel)
    };
    let divisors: Vec<u32> = (2..=warps).filter(|n| warps.is_multiple_of(*n)).collect();

    let mut out = Vec::new();
    for &loop_id in &loops {
        for &n in &divisors {
            out.push(Recipe::WarpThrottle { loop_id, n });
        }
    }
    let smem = kernel.shared_mem_bytes();
    for target_tbs in TB_TARGETS {
        if tb_throttle(kernel, target_tbs, ORACLE_CARVEOUT_BYTES, smem).is_some() {
            out.push(Recipe::TbThrottle { target_tbs });
        }
    }
    for &loop_id in &loops {
        for &n in &divisors {
            out.push(Recipe::Composed {
                loop_id,
                n,
                target_tbs: 2,
            });
        }
    }
    let grid = (launch.grid.x, launch.grid.y, launch.grid.z);
    for policy in SwizzlePolicy::candidates() {
        if cta_swizzle(kernel, policy, grid).is_none() {
            continue; // not a bijection on this grid (t ∤ gx, 3-D, ...)
        }
        out.push(Recipe::CtaSwizzle { policy });
        // Swizzling rewrites expressions, never control flow, so the
        // loop numbering and legality verdicts carry over unchanged.
        for &loop_id in &loops {
            for &n in &divisors {
                out.push(Recipe::SwizzledWarp { policy, loop_id, n });
            }
        }
    }
    out
}

/// Apply a recipe. `None` when the transform rejects it (e.g. the loop
/// id vanished during shrinking). `grid` is the launch grid the swizzle
/// bijections are built for; throttling recipes ignore it.
pub fn apply_recipe(
    kernel: &Kernel,
    recipe: &Recipe,
    warps_per_tb: u32,
    grid: (u32, u32, u32),
) -> Option<Kernel> {
    match recipe {
        Recipe::WarpThrottle { loop_id, n } => warp_throttle(kernel, *loop_id, *n, warps_per_tb),
        Recipe::TbThrottle { target_tbs } => tb_throttle(
            kernel,
            *target_tbs,
            ORACLE_CARVEOUT_BYTES,
            kernel.shared_mem_bytes(),
        ),
        Recipe::Composed {
            loop_id,
            n,
            target_tbs,
        } => {
            let warped = warp_throttle(kernel, *loop_id, *n, warps_per_tb)?;
            tb_throttle(
                &warped,
                *target_tbs,
                ORACLE_CARVEOUT_BYTES,
                warped.shared_mem_bytes(),
            )
        }
        Recipe::CtaSwizzle { policy } => cta_swizzle(kernel, *policy, grid),
        Recipe::SwizzledWarp { policy, loop_id, n } => {
            let swizzled = cta_swizzle(kernel, *policy, grid)?;
            warp_throttle(&swizzled, *loop_id, *n, warps_per_tb)
        }
    }
}

/// Fast path for the shrinker: does *any* variant of `case` reproduce
/// the exact `(baseline, variant)` failure signature? Stops at the
/// first hit instead of enumerating every violation, which cuts the
/// shrinker's per-edit cost by the variant count in the common case.
pub fn signature_reproduces(
    case: &TestCase,
    legality_checked: bool,
    baseline: &str,
    variant: &str,
) -> bool {
    let (base_class, base_digest) = run_case(&case.kernel, case);
    if base_class != baseline || base_class.starts_with("sanitizer") {
        return false;
    }
    let warps = case.launch.warps_per_block();
    let grid = (case.launch.grid.x, case.launch.grid.y, case.launch.grid.z);
    for recipe in variant_recipes(&case.kernel, case, legality_checked) {
        let Some(v) = apply_recipe(&case.kernel, &recipe, warps, grid) else {
            continue;
        };
        let (var_class, var_digest) = run_case(&v, case);
        let hit = if var_class != base_class {
            var_class == variant
        } else {
            var_class == "ok"
                && var_digest != base_digest
                && variant == "ok, but global memory differs"
        };
        if hit {
            return true;
        }
    }
    false
}

/// Differentially check one case. See the module docs for the protocol.
pub fn check_case(case: &TestCase, legality_checked: bool) -> CaseOutcome {
    let (base_class, base_digest) = run_case(&case.kernel, case);
    if base_class.starts_with("sanitizer") {
        return CaseOutcome::DirtyOriginal { class: base_class };
    }
    let warps = case.launch.warps_per_block();
    let grid = (case.launch.grid.x, case.launch.grid.y, case.launch.grid.z);
    let mut variants = 0;
    let mut violations = Vec::new();
    for recipe in variant_recipes(&case.kernel, case, legality_checked) {
        let Some(variant) = apply_recipe(&case.kernel, &recipe, warps, grid) else {
            continue;
        };
        variants += 1;
        let (var_class, var_digest) = run_case(&variant, case);
        if var_class != base_class {
            violations.push(ViolationSeed {
                kind: ViolationKind::Classification,
                recipe,
                baseline: base_class.clone(),
                variant: var_class,
            });
        } else if var_class == "ok" && var_digest != base_digest {
            violations.push(ViolationSeed {
                kind: ViolationKind::ResultMismatch,
                recipe,
                baseline: "ok".into(),
                variant: "ok, but global memory differs".into(),
            });
        }
    }
    CaseOutcome::Checked {
        variants,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_case, GenOptions};
    use catt_frontend::parse_kernel;
    use catt_ir::LaunchConfig;

    fn case_for(src: &str, launch: LaunchConfig, buffers: &[(&str, u32)]) -> TestCase {
        TestCase {
            kernel: parse_kernel(src).unwrap(),
            launch,
            buffers: buffers.iter().map(|(n, l)| (n.to_string(), *l)).collect(),
        }
    }

    #[test]
    fn recipe_describe_parses_back() {
        for r in [
            Recipe::WarpThrottle { loop_id: 3, n: 2 },
            Recipe::TbThrottle { target_tbs: 4 },
            Recipe::Composed {
                loop_id: 0,
                n: 4,
                target_tbs: 2,
            },
            Recipe::CtaSwizzle {
                policy: SwizzlePolicy::Serpentine,
            },
            Recipe::CtaSwizzle {
                policy: SwizzlePolicy::TileMajor(4),
            },
            Recipe::CtaSwizzle {
                policy: SwizzlePolicy::XorFold(3),
            },
            Recipe::SwizzledWarp {
                policy: SwizzlePolicy::XorFold(1),
                loop_id: 1,
                n: 2,
            },
        ] {
            assert_eq!(Recipe::parse(&r.describe()), Some(r));
        }
        assert_eq!(Recipe::parse("frob x=1"), None);
    }

    #[test]
    fn barrier_free_numbering_matches_warp_throttle() {
        // Loop 0 contains a barrier (excluded); loop 1 nests inside it
        // (included); loop 2 sits in an else branch (included). The ids
        // must address the loops warp_throttle rewrites.
        let src = "
            __global__ void k(float *a) {
                for (int u = 0; u < 4; u++) {
                    __syncthreads();
                    for (int v = 0; v < 2; v++) { a[threadIdx.x] += 1.0f; }
                }
                if (threadIdx.x < 64) { } else {
                    for (int w = 0; w < 8; w++) { a[threadIdx.x] += 2.0f; }
                }
            }";
        let k = parse_kernel(src).unwrap();
        assert_eq!(barrier_free_loops(&k), vec![1, 2]);
        // Blind application on id 2 duplicates the bound-8 loop.
        let t = warp_throttle(&k, 2, 2, 4).unwrap();
        let mut bound8 = 0;
        walk_stmts(&t.body, &mut |s| {
            if let Stmt::For { bound, .. } = s {
                if bound.const_int() == Some(8) {
                    bound8 += 1;
                }
            }
        });
        assert_eq!(bound8, 2, "loop 2 must be the one duplicated");
    }

    #[test]
    fn dirty_original_is_screened_not_compared() {
        let case = case_for(
            "__global__ void d(float *a, float *b, float *out) {
                 if (threadIdx.x % 2 == 0) { __syncthreads(); }
                 out[threadIdx.x] = 1.0f;
             }",
            LaunchConfig::d1(1, 32),
            &[("a", 1), ("b", 1), ("out", 32)],
        );
        match check_case(&case, true) {
            CaseOutcome::DirtyOriginal { class } => {
                assert_eq!(class, "sanitizer: barrier divergence")
            }
            other => panic!("expected a dirty screen, got {other:?}"),
        }
    }

    #[test]
    fn unchecked_mode_flags_the_divergent_barrier_miscompile() {
        // The canonical legality gap: a barrier-free loop under a
        // thread-divergent guard. Legal mode produces no warp variants;
        // unchecked mode throttles it and the variant trips the
        // sanitizer while the original screens clean.
        let case = case_for(
            "__global__ void m(float *a, float *b, float *out) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 float acc = 0.0f;
                 if (i < 40) {
                     for (int j = 0; j < 8; j++) { acc += a[i * 8 + j]; }
                 }
                 out[i] = acc;
             }",
            LaunchConfig::d1(1, 64),
            &[("a", 512), ("b", 1), ("out", 64)],
        );
        let CaseOutcome::Checked { violations, .. } = check_case(&case, true) else {
            panic!("original screened dirty");
        };
        assert!(
            violations.is_empty(),
            "legal mode must stay clean: {violations:?}"
        );
        let CaseOutcome::Checked { violations, .. } = check_case(&case, false) else {
            panic!("original screened dirty");
        };
        assert!(
            violations
                .iter()
                .any(|v| v.baseline == "ok" && v.variant == "sanitizer: barrier divergence"),
            "unchecked mode must rediscover the miscompile: {violations:?}"
        );
    }

    /// Swizzle recipes join the enumeration on grids where they are
    /// bijections, including the non-trivial XOR folds on 1-D grids, and
    /// every one of them is bit-exact on a clean kernel.
    #[test]
    fn swizzle_variants_are_enumerated_and_bit_exact() {
        let case = case_for(
            "__global__ void s(float *a, float *b, float *out) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 float acc = 0.0f;
                 for (int j = 0; j < 4; j++) { acc += a[i % 64] * b[(i + j) % 32]; }
                 out[i] = acc + (float)blockIdx.x;
             }",
            LaunchConfig::d1(4, 64),
            &[("a", 64), ("b", 32), ("out", 256)],
        );
        let recipes = variant_recipes(&case.kernel, &case, true);
        assert!(
            recipes.iter().any(|r| matches!(
                r,
                Recipe::CtaSwizzle {
                    policy: SwizzlePolicy::XorFold(_)
                }
            )),
            "XOR folds must be live on 1-D grids: {recipes:?}"
        );
        assert!(
            recipes
                .iter()
                .any(|r| matches!(r, Recipe::SwizzledWarp { .. })),
            "swizzle ∘ warp-throttle compositions missing: {recipes:?}"
        );
        match check_case(&case, true) {
            CaseOutcome::Checked {
                variants,
                violations,
            } => {
                assert!(violations.is_empty(), "{violations:?}");
                assert!(variants > 4, "too few variants actually ran: {variants}");
            }
            other => panic!("clean kernel screened dirty: {other:?}"),
        }
    }

    #[test]
    fn legal_variants_of_generated_kernels_are_clean() {
        for seed in 0..30u64 {
            let case = generate_case(seed, &GenOptions { dirty_p: 0.0 });
            match check_case(&case, true) {
                CaseOutcome::Checked { violations, .. } => assert!(
                    violations.is_empty(),
                    "seed {seed}: {violations:?}\n{}",
                    catt_ir::printer::kernel_to_string(&case.kernel)
                ),
                CaseOutcome::DirtyOriginal { class } => {
                    panic!("seed {seed}: clean kernel screened dirty: {class}")
                }
            }
        }
    }
}
