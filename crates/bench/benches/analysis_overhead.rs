//! Criterion bench: CATT static analysis + transformation time
//! (paper §5.1.4 — the compile-time cost of the approach).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    use catt_core::pipeline::Pipeline;
    use catt_workloads::harness::eval_config_max_l1d;
    use catt_workloads::registry::find;

    let mut g = c.benchmark_group("analysis");
    for abbrev in ["ATAX", "PF", "CORR", "GEMM"] {
        let w = find(abbrev).unwrap();
        let kernels = w.kernels();
        let launches: Vec<_> = (0..kernels.len()).map(|i| w.launch(i)).collect();
        let pipe = Pipeline::new(eval_config_max_l1d());
        g.bench_function(abbrev, |b| {
            b.iter_batched(
                || (),
                |_| {
                    for (k, l) in kernels.iter().zip(&launches) {
                        criterion::black_box(pipe.compile_kernel(k, *l).unwrap());
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    use catt_workloads::registry::find;
    let w = find("CFD").unwrap();
    c.bench_function("parse_cfd_module", |b| {
        b.iter(|| criterion::black_box(catt_frontend::parse_module(w.source).unwrap()))
    });
}

criterion_group!(benches, bench_pipeline, bench_parse);
criterion_main!(benches);
