//! Bench: CATT static analysis + transformation time (paper §5.1.4 — the
//! compile-time cost of the approach). Std-only harness, see
//! `catt_bench::timing`.

use catt_bench::timing::bench;
use catt_core::pipeline::Pipeline;
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::find;

fn main() {
    for abbrev in ["ATAX", "PF", "CORR", "GEMM"] {
        let w = find(abbrev).unwrap();
        let kernels = w.kernels();
        let launches: Vec<_> = (0..kernels.len()).map(|i| w.launch(i)).collect();
        let pipe = Pipeline::new(eval_config_max_l1d());
        bench(&format!("analysis/{abbrev}"), 50, || {
            for (k, l) in kernels.iter().zip(&launches) {
                std::hint::black_box(pipe.compile_kernel(k, *l).unwrap());
            }
        });
    }

    let w = find("CFD").unwrap();
    bench("parse_cfd_module", 50, || {
        catt_frontend::parse_module(w.source).unwrap()
    });
}
