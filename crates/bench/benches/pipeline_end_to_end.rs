//! Bench: end-to-end evaluate-one-app cost (compile with CATT + run
//! transformed kernels) for a cheap CI app and a mid-sized CS app.
//! Std-only harness, see `catt_bench::timing`.

use catt_bench::timing::bench;
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::find;
use catt_workloads::run_catt;

fn main() {
    for abbrev in ["MC", "GSMV"] {
        let w = find(abbrev).unwrap();
        let cfg = eval_config_max_l1d();
        bench(&format!("end_to_end/{abbrev}"), 10, || {
            run_catt(&w, &cfg).expect("compiles and runs").0.cycles()
        });
    }
}
