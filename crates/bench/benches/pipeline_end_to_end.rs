//! Criterion bench: end-to-end evaluate-one-app cost (compile with CATT +
//! run transformed kernels) for a cheap CI app and a mid-sized CS app.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_end_to_end(c: &mut Criterion) {
    use catt_workloads::harness::eval_config_max_l1d;
    use catt_workloads::registry::find;
    use catt_workloads::run_catt;

    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for abbrev in ["MC", "GSMV"] {
        let w = find(abbrev).unwrap();
        let cfg = eval_config_max_l1d();
        g.bench_function(abbrev, |b| {
            b.iter(|| criterion::black_box(run_catt(&w, &cfg).0.cycles()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
