//! Criterion bench: simulator throughput on representative kernels —
//! the cost of the evaluation substrate itself.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sim(c: &mut Criterion) {
    use catt_frontend::parse_kernel;
    use catt_ir::LaunchConfig;
    use catt_sim::{lower, Arg, GlobalMem, Gpu, GpuConfig};

    let n = 256usize;
    let src = format!(
        "#define N {n}
         __global__ void mv(float *A, float *x, float *y) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     y[i] += A[i * N + j] * x[j];
                 }}
             }}
         }}"
    );
    let kernel = parse_kernel(&src).unwrap();
    let program = lower(&kernel).unwrap();
    let launch = LaunchConfig::d1(1, 256);

    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    for (name, l1_kb) in [("divergent_32kb", 32u32), ("divergent_128kb", 128)] {
        let mut cfg = GpuConfig::titan_v_1sm();
        cfg.l1_cap_bytes = Some(l1_kb * 1024);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut mem = GlobalMem::new();
                let a = mem.alloc_f32(&vec![1.0; n * n]);
                let x = mem.alloc_f32(&vec![1.0; n]);
                let y = mem.alloc_zeroed(n as u32);
                let mut gpu = Gpu::new(cfg.clone());
                criterion::black_box(gpu.launch_program(
                    &program,
                    launch,
                    &[Arg::Buf(a), Arg::Buf(x), Arg::Buf(y)],
                    &mut mem,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
