//! Bench: simulator throughput on representative kernels — the cost of
//! the evaluation substrate itself. (`cargo bench -p catt-bench --bench
//! simulator_throughput`; std-only harness, see `catt_bench::timing`.)

use catt_bench::timing::bench;
use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{lower, Arg, GlobalMem, Gpu, GpuConfig};

fn main() {
    let n = 256usize;
    let src = format!(
        "#define N {n}
         __global__ void mv(float *A, float *x, float *y) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     y[i] += A[i * N + j] * x[j];
                 }}
             }}
         }}"
    );
    let kernel = parse_kernel(&src).unwrap();
    let program = lower(&kernel).unwrap();
    let launch = LaunchConfig::d1(1, 256);

    for (name, l1_kb) in [("divergent_32kb", 32u32), ("divergent_128kb", 128)] {
        let mut cfg = GpuConfig::titan_v_1sm();
        cfg.l1_cap_bytes = Some(l1_kb * 1024);
        bench(&format!("simulator/{name}"), 20, || {
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&vec![1.0; n * n]);
            let x = mem.alloc_f32(&vec![1.0; n]);
            let y = mem.alloc_zeroed(n as u32);
            let mut gpu = Gpu::new(cfg.clone());
            gpu.launch_program(
                &program,
                launch,
                &[Arg::Buf(a), Arg::Buf(x), Arg::Buf(y)],
                &mut mem,
            )
            .expect("benchmark kernel launches cleanly")
        });
    }
}
