//! Ablation — conservative vs pessimistic handling of irregular accesses
//! (paper §4.2): CATT sets `C_tid := 1` for indirect accesses so that
//! mis-estimated contention never *reduces* TLP needlessly. The
//! pessimistic alternative (`C_tid := 32`, assume full divergence) is
//! evaluated here on the irregular workloads BFS and CFD by recomputing
//! the factor search with worst-case request counts and applying the
//! resulting uniform throttle.

use catt_core::analysis::{self, search_factors};
use catt_core::pipeline::apply_uniform;
use catt_sim::lower;
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::find;
use catt_workloads::{run_cached, run_catt};

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let config = eval_config_max_l1d();
        println!("Ablation: irregular-access handling (max. L1D)");
        let mut rows = Vec::new();
        for abbrev in ["BFS", "CFD"] {
            let w = find(abbrev).unwrap();
            let kernels = w.kernels();
            let launch = w.block_launch();

            // Conservative = CATT as shipped (leaves the apps untouched).
            let base = run_cached(&w, &kernels, &config, true)?.stats;
            let (catt, _) = run_catt(&w, &config)?;

            // Pessimistic: redo the factor search with irregular accesses
            // counted as fully divergent (REQ = 32) and apply the worst
            // decision uniformly.
            let mut worst: Option<(u32, u32)> = None;
            for (i, k) in kernels.iter().enumerate() {
                let regs = lower(k).unwrap().num_regs as u32;
                let a = analysis::analyze_kernel(k, w.launch(i), &config, regs).unwrap();
                let l1_lines = (a.plan.l1d_bytes / a.plan.config.l1_line_bytes) as u64;
                for l in &a.loops {
                    let per_round: u64 = l
                        .accesses
                        .iter()
                        .map(|acc| {
                            if acc.c_tid.is_none() {
                                32
                            } else {
                                acc.req_warp as u64
                            }
                        })
                        .sum();
                    let d =
                        search_factors(per_round, a.warps_per_tb, a.plan.resident_tbs, l1_lines);
                    if d.resolved && (d.n > 1 || d.m > 0) {
                        let cand = (d.n, d.m);
                        worst = Some(match worst {
                            None => cand,
                            Some(prev) => {
                                if cand.0 * (cand.1 + 1) > prev.0 * (prev.1 + 1) {
                                    cand
                                } else {
                                    prev
                                }
                            }
                        });
                    }
                }
            }
            let pess_cycles = match worst {
                Some((n, m)) => {
                    let warps = launch.warps_per_block();
                    let resident = base.resident_tbs_per_sm;
                    let ks: Vec<_> = kernels
                        .iter()
                        .map(|k| {
                            apply_uniform(k, n, m, warps, resident, config.smem_carveout_bytes)
                        })
                        .collect();
                    run_cached(&w, &ks, &config, true)?.cycles()
                }
                None => base.cycles,
            };

            rows.push(vec![
                abbrev.to_string(),
                base.cycles.to_string(),
                format!("{:.3}", catt.cycles() as f64 / base.cycles as f64),
                format!("{:.3}", pess_cycles as f64 / base.cycles as f64),
                format!("{:?}", worst),
            ]);
        }
        catt_bench::print_table(
            &[
                "app",
                "baseline cycles",
                "conservative (CATT)",
                "pessimistic (C_tid=32)",
                "pessimistic (N,M)",
            ],
            &rows,
        );
        println!(
            "\nExpected: conservative == 1.000 (untouched); pessimistic > 1.000 where\n\
             the worst-case estimate forces unnecessary throttling — the paper's\n\
             argument for C_tid := 1 (§4.2)."
        );
        Ok(())
    })
}
