//! Table 2 — GPGPU workload description (the registry, at sim scale).

use catt_workloads::registry::all_workloads;

fn main() {
    println!("Table 2: GPGPU workload description (inputs at simulator scale)");
    let rows: Vec<Vec<String>> = all_workloads()
        .iter()
        .map(|w| {
            vec![
                w.group.label().to_string(),
                w.abbrev.to_string(),
                w.name.to_string(),
                w.suite.to_string(),
                format!("{:.2}", w.smem_kb),
                w.input.to_string(),
                w.launches.len().to_string(),
            ]
        })
        .collect();
    catt_bench::print_table(
        &[
            "group",
            "abbr.",
            "application",
            "suite",
            "SMEM (KB)",
            "input",
            "kernels",
        ],
        &rows,
    );
}
