//! Fig. 10 — normalized execution time of the CS group on a 32 KB L1D
//! (paper §5.1.3): throttling matters more on small caches — the paper
//! reports +89.23% (CATT) vs +68.17% (BFTT) geomean on its testbed.

use catt_bench::{eval_group, print_normalized_figure};
use catt_workloads::harness::eval_config_32kb_l1d;
use catt_workloads::registry::cs_workloads;

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let evals = eval_group(&cs_workloads(), &eval_config_32kb_l1d(), true)?;
        print_normalized_figure(
            "Fig. 10: normalized execution time, CS group (32 KB L1D)",
            &evals,
        );
        Ok(())
    })
}
