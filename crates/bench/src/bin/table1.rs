//! Table 1 — GPU specifications of the (simulated) Titan V.

use catt_sim::GpuConfig;

fn main() {
    let c = GpuConfig::titan_v();
    println!("Table 1: GPU specifications (simulated Nvidia Titan V)");
    let rows = vec![
        vec!["GPU".to_string(), "Titan V (simulated)".to_string()],
        vec!["Architecture".to_string(), "Volta".to_string()],
        vec!["SMs".to_string(), c.num_sms.to_string()],
        vec![
            "Register file / SM".to_string(),
            format!("{} KB", c.regfile_bytes_per_sm / 1024),
        ],
        vec![
            "L1 cache / SM".to_string(),
            format!(
                "{}-{} KB (configurable)",
                (c.onchip_bytes_per_sm - 96 * 1024) / 1024,
                c.onchip_bytes_per_sm / 1024
            ),
        ],
        vec![
            "Shared memory / SM".to_string(),
            "0-96 KB (configurable)".to_string(),
        ],
        vec![
            "Warp schedulers / SM".to_string(),
            c.schedulers_per_sm.to_string(),
        ],
        vec!["Max warps / SM".to_string(), c.max_warps_per_sm.to_string()],
    ];
    catt_bench::print_table(&["parameter", "value"], &rows);
}
