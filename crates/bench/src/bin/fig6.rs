//! Fig. 6 — L1D hit rates of baseline / BFTT / CATT on the maximum L1D,
//! CS group. (Reported per application — the accumulated hit rate over
//! all of its kernel launches; the paper splits per kernel.)

use catt_bench::eval_group;
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::cs_workloads;

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        println!("Fig. 6: L1D load hit rate (max. L1D)");
        let evals = eval_group(&cs_workloads(), &eval_config_max_l1d(), true)?;
        let rows: Vec<Vec<String>> = evals
            .iter()
            .map(|e| {
                vec![
                    e.abbrev.to_string(),
                    format!("{:5.1}%", 100.0 * e.base_hit),
                    format!("{:5.1}%", 100.0 * e.bftt_hit),
                    format!("{:5.1}%", 100.0 * e.catt_hit),
                ]
            })
            .collect();
        catt_bench::print_table(&["app", "baseline", "BFTT", "CATT"], &rows);
        Ok(())
    })
}
