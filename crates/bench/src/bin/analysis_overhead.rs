//! §5.1.4 — static-analysis overhead: wall-clock time of the full
//! `parse -> analyze -> transform -> emit` pipeline per application (the
//! paper reports 1-2 s with an Antlr front end; a native implementation
//! is far faster, but the point is the linear scaling in source length).

use catt_core::pipeline::Pipeline;
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::all_workloads;
use std::time::Instant;

fn main() {
    println!("Analysis overhead (full compile pipeline per application)");
    // Cache off: this measures the pipeline itself, not the memo
    // (`bench_compile` covers cold-vs-warm).
    let pipe = Pipeline::new(eval_config_max_l1d()).with_pass_cache(false);
    let mut rows = Vec::new();
    for w in all_workloads() {
        let kernels = w.kernels();
        let start = Instant::now();
        const REPS: u32 = 100;
        for _ in 0..REPS {
            for (i, k) in kernels.iter().enumerate() {
                pipe.compile_kernel(k, w.launch(i)).unwrap();
            }
        }
        let per_compile = start.elapsed() / REPS;
        rows.push(vec![
            w.abbrev.to_string(),
            w.source.lines().count().to_string(),
            format!("{:.1} us", per_compile.as_secs_f64() * 1e6),
        ]);
    }
    catt_bench::print_table(&["app", "source lines", "compile time"], &rows);
}
