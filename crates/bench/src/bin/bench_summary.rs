//! `bench_summary` — wall-clock throughput of the simulator itself, in
//! both execution modes (DESIGN.md "Parallel SM execution").
//!
//! Runs every registry workload directly (no simulation cache, no output
//! validation — this measures the simulator, not the harness) under the
//! sequential and the parallel per-SM path, plus a profiling-on pass
//! (DESIGN.md §3e; capture stays off, so this times the instrumented
//! pipeline itself), reports the median wall time of N samples plus
//! simulated-cycles-per-second, and writes the machine-readable summary
//! to `BENCH_sim.json` at the repo root.
//!
//! ```text
//! cargo run --release -p catt-bench --bin bench_summary -- \
//!     [--samples N] [--apps bfs,spmv] [--sms N] [--out path.json]
//! ```
//!
//! Samples are *interleaved* across modes (seq, par, par+prof, repeat)
//! rather than run back-to-back per mode, so slow drift — thermal state,
//! page-cache warm-up, competing load — lands on every mode equally
//! instead of biasing whichever mode ran last.
//!
//! Non-gating: CI runs this as an artifact-producing step only. Speedup
//! on a single-core runner is pure noise (the parallel path clamps its
//! thread budget to `available_parallelism`, so both modes run the same
//! code); the JSON carries `"speedup_valid": false` in that case and the
//! ≥ 4-core target is where the per-SM fan-out pays off.

use catt_bench::timing::median_f64;
use catt_sim::GpuConfig;
use catt_workloads::registry;
use std::time::Instant;

struct AppRow {
    abbrev: &'static str,
    /// Median wall time per run, sequential / parallel (milliseconds).
    seq_ms: f64,
    par_ms: f64,
    /// Median wall time with profiling on (parallel mode, profiles
    /// dropped at submit — capture off), milliseconds.
    prof_ms: f64,
    /// Simulated cycles of one run (identical across modes by the
    /// equivalence suite; asserted here too).
    sim_cycles: u64,
}

impl AppRow {
    fn speedup(&self) -> f64 {
        self.seq_ms / self.par_ms
    }
    /// Profiling-on / profiling-off wall-time ratio, parallel mode.
    fn prof_overhead(&self) -> f64 {
        self.prof_ms / self.par_ms
    }
    /// Simulated megacycles per wall-clock second, parallel mode.
    fn mcycles_per_s(&self) -> f64 {
        self.sim_cycles as f64 / 1e3 / self.par_ms
    }
}

fn mode_config(sms: u32, parallel: bool) -> GpuConfig {
    let mut c = GpuConfig::titan_v();
    c.num_sms = sms;
    // Explicit mode select; thread budget left to the derived default
    // (available_parallelism / active engine workers).
    c.sm_parallel = Some(parallel);
    c
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let mut samples = 3usize;
    let mut sms = 8u32;
    let mut apps: Option<Vec<String>> = None;
    let mut out = "BENCH_sim.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--samples" if i + 1 < argv.len() => {
                samples = argv[i + 1].parse().unwrap_or(samples).max(1);
                i += 2;
            }
            "--sms" if i + 1 < argv.len() => {
                sms = argv[i + 1].parse().unwrap_or(sms).max(1);
                i += 2;
            }
            "--apps" if i + 1 < argv.len() => {
                apps = Some(argv[i + 1].split(',').map(str::to_string).collect());
                i += 2;
            }
            "--out" if i + 1 < argv.len() => {
                out = argv[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!(
                    "bench_summary: unknown option `{other}` \
                     (want --samples N | --apps a,b | --sms N | --out path)"
                );
                std::process::exit(2);
            }
        }
    }

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup_valid = host_threads > 1;
    println!("bench_summary: {sms} SMs, {samples} samples/mode, host parallelism {host_threads}");
    if !speedup_valid {
        eprintln!(
            "bench_summary: warning: host parallelism is 1 — sequential and parallel \
             mode run the same code on one core, so the speedup columns are pure \
             measurement noise (emitting \"speedup_valid\": false); skipping the \
             redundant parallel-mode sampling pass (par_ms = seq_ms)"
        );
    }

    // (parallel, profile) per measured mode: sequential, parallel,
    // parallel with profiling on.
    const MODES: [(bool, bool); 3] = [(false, false), (true, false), (true, true)];

    let mut rows: Vec<AppRow> = Vec::new();
    for w in registry::all_workloads() {
        if let Some(filter) = &apps {
            if !filter.iter().any(|a| a == w.abbrev) {
                continue;
            }
        }
        let kernels = w.kernels();
        let cfgs: Vec<GpuConfig> = MODES
            .iter()
            .map(|&(parallel, profile)| {
                let mut cfg = mode_config(sms, parallel);
                cfg.profile = Some(profile);
                cfg
            })
            .collect();
        // One warm-up per mode (first-touch allocation, lazy statics),
        // doubling as the cross-mode cycle-equality check.
        let warm: Vec<u64> = cfgs
            .iter()
            .map(|cfg| (w.run)(&kernels, cfg, false).cycles)
            .collect();
        assert_eq!(
            warm[0], warm[1],
            "{}: modes disagree on simulated cycles",
            w.abbrev
        );
        assert_eq!(
            warm[1], warm[2],
            "{}: profiling changed simulated cycles",
            w.abbrev
        );
        // Interleave: every sample round times each mode once, so drift
        // over the measurement window hits all modes alike instead of
        // only the modes measured last. On a 1-core host the parallel
        // mode runs the same code as the sequential one (thread budget
        // clamps to 1), so its sampling pass is skipped entirely — the
        // warm-up above still checks cross-mode cycle equality — and
        // `par_ms` aliases `seq_ms`.
        let sampled: &[usize] = if speedup_valid { &[0, 1, 2] } else { &[0, 2] };
        let mut wall: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for _ in 0..samples {
            for &m in sampled {
                let t0 = Instant::now();
                let stats = (w.run)(&kernels, &cfgs[m], false);
                wall[m].push(t0.elapsed().as_secs_f64() * 1e3);
                assert_eq!(stats.cycles, warm[0], "{}: non-deterministic", w.abbrev);
            }
        }
        let seq_ms = median_f64(&mut wall[0]);
        let row = AppRow {
            abbrev: w.abbrev,
            seq_ms,
            par_ms: if speedup_valid {
                median_f64(&mut wall[1])
            } else {
                seq_ms
            },
            prof_ms: median_f64(&mut wall[2]),
            sim_cycles: warm[0],
        };
        println!(
            "  {:<6} seq {:>9.2} ms | par {:>9.2} ms | speedup {:>5.2}x | \
             prof {:>9.2} ms ({:>4.2}x) | {:>8.1} Mcyc/s",
            row.abbrev,
            row.seq_ms,
            row.par_ms,
            row.speedup(),
            row.prof_ms,
            row.prof_overhead(),
            row.mcycles_per_s(),
        );
        rows.push(row);
    }
    if rows.is_empty() {
        eprintln!("bench_summary: no workloads matched");
        std::process::exit(2);
    }

    let geomean_speedup =
        (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp();
    let geomean_overhead =
        (rows.iter().map(|r| r.prof_overhead().ln()).sum::<f64>() / rows.len() as f64).exp();
    let total_seq: f64 = rows.iter().map(|r| r.seq_ms).sum();
    let total_par: f64 = rows.iter().map(|r| r.par_ms).sum();
    println!(
        "total: seq {total_seq:.1} ms | par {total_par:.1} ms | \
         geomean speedup {geomean_speedup:.2}x | \
         geomean profiling overhead {geomean_overhead:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"config\": {{ \"num_sms\": {sms}, \"samples\": {samples}, \
         \"host_parallelism\": {host_threads} }},\n"
    ));
    json.push_str(&format!(
        "  \"speedup_valid\": {speedup_valid},\n  \
         \"geomean_speedup\": {geomean_speedup:.4},\n  \
         \"geomean_profiling_overhead\": {geomean_overhead:.4},\n  \"apps\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"app\": \"{}\", \"seq_ms\": {:.3}, \"par_ms\": {:.3}, \
             \"speedup\": {:.4}, \"prof_ms\": {:.3}, \"prof_overhead\": {:.4}, \
             \"sim_cycles\": {}, \"mcycles_per_s\": {:.1} }}{}\n",
            json_escape(r.abbrev),
            r.seq_ms,
            r.par_ms,
            r.speedup(),
            r.prof_ms,
            r.prof_overhead(),
            r.sim_cycles,
            r.mcycles_per_s(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_summary: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
