//! Fig. 3 — performance impact of TLP vs cache footprint: the
//! `L1D-full-with-{4,8,16}-warps` microbenchmarks swept from 1 to 32
//! concurrent warps at fixed total work.

use catt_sim::GpuConfig;
use catt_workloads::micro;

fn main() {
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);
    // Fig. 3 isolates L1 contention; a warm L2 would flatten the U-shape.
    config.l2_kb = Some(0);
    let tlps = [1u32, 2, 4, 8, 16, 32];

    println!("Fig. 3: execution time (cycles) vs TLP, fixed total work");
    let mut rows = Vec::new();
    for full_with in [4u32, 8, 16] {
        let mut row = vec![format!("L1D-full-with-{full_with}-warps")];
        for &t in &tlps {
            let s = micro::run(full_with, t, &config);
            row.push(format!("{}", s.cycles));
        }
        rows.push(row);
    }
    let mut headers = vec!["microbenchmark".to_string()];
    headers.extend(tlps.iter().map(|t| format!("TLP {t}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    catt_bench::print_table(&headers_ref, &rows);
    println!(
        "\nExpected shape: per row, time falls with TLP until the fill point\n\
         (enough warps to fill the L1D) and rises past it as footprints thrash."
    );
}
