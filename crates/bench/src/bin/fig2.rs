//! Fig. 2 — off-chip memory requests per instruction over time for the CS
//! applications (baseline runs with request tracing on). Each series is
//! bucketed to 40 points; high values mean divergent phases, low values
//! coalesced phases — the dynamic fluctuation CATT's per-loop decisions
//! exploit.

use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::cs_workloads;
use catt_workloads::run_cached;

const BUCKETS: usize = 40;

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        println!("Fig. 2: off-chip requests per memory instruction over time (baseline)");
        println!(
            "(x: execution progress in {BUCKETS} buckets; y: avg 128B transactions per instruction)"
        );
        // Traced runs bypass the simulation cache (the trace is not
        // serialized), but still report failures through the engine.
        let mut config = eval_config_max_l1d();
        config.trace_requests = true;
        for w in cs_workloads() {
            eprintln!("  tracing {} ...", w.abbrev);
            let kernels = w.kernels();
            let stats = run_cached(&w, &kernels, &config, false)?.stats;
            let series = stats.trace.bucketed(BUCKETS);
            print!("{:<6}", w.abbrev);
            for v in &series {
                print!(" {v:5.1}");
            }
            println!();
            // A simple sparkline-style indicator of the phase structure.
            print!("{:<6}", "");
            for v in &series {
                let c = match *v as u32 {
                    0..=1 => '.',
                    2..=7 => '-',
                    8..=19 => '=',
                    _ => '#',
                };
                print!(" {c:>5}");
            }
            println!();
        }
        println!("\nlegend: '.' coalesced (~1 req/inst), '#' divergent (>=20 req/inst)");
        Ok(())
    })
}
