//! Table 3 — TLP `(#warps_TB, #TBs)` per kernel/loop selected by the
//! baseline and by CATT's static analysis, at the 32 KB and maximum L1D
//! configurations, for the CS group. (BFTT's per-application pick is shown
//! by `fig9`/`fig7`; it requires the full exhaustive sweep.)

use catt_core::pipeline::Pipeline;
use catt_workloads::harness::{eval_config_32kb_l1d, eval_config_max_l1d};
use catt_workloads::registry::cs_workloads;

fn main() {
    println!("Table 3: TLP (#warps_TB, #TBs) per loop — baseline vs CATT");
    let mut rows = Vec::new();
    for w in cs_workloads() {
        let kernels = w.kernels();
        for (i, k) in kernels.iter().enumerate() {
            // Compile under both cache configurations.
            let compile = |cfg| {
                Pipeline::new(cfg)
                    .compile_kernel(k, w.launch(i))
                    .unwrap_or_else(|e| panic!("{}: {e}", w.abbrev))
            };
            let at32 = compile(eval_config_32kb_l1d());
            let atmax = compile(eval_config_max_l1d());
            let a32 = &at32.analysis;
            let amax = &atmax.analysis;
            if amax.loops.is_empty() {
                rows.push(vec![
                    w.abbrev.to_string(),
                    format!("#{}", i + 1),
                    "-".to_string(),
                    format!("{:?}", amax.baseline_tlp()),
                    format!("{:?}", a32.baseline_tlp()),
                    format!("{:?}", amax.baseline_tlp()),
                ]);
            }
            for (l32, lmax) in a32.loops.iter().zip(&amax.loops) {
                rows.push(vec![
                    w.abbrev.to_string(),
                    format!("#{}", i + 1),
                    (lmax.loop_id + 1).to_string(),
                    format!("{:?}", amax.baseline_tlp()),
                    format!("{:?}", l32.tlp(a32.warps_per_tb, a32.plan.resident_tbs)),
                    format!("{:?}", lmax.tlp(amax.warps_per_tb, amax.plan.resident_tbs)),
                ]);
            }
        }
    }
    catt_bench::print_table(
        &[
            "app",
            "kernel",
            "loop",
            "baseline",
            "CATT 32KB",
            "CATT max L1D",
        ],
        &rows,
    );
}
