//! Ablation — per-loop vs per-application decisions (the paper's central
//! claim): collapse CATT to one fixed factor per application (the
//! strongest throttle any loop requested, applied everywhere — i.e. a
//! static analysis with BFTT's granularity) and compare against true
//! per-loop CATT on the multi-phase applications.

use catt_core::pipeline::apply_uniform;
use catt_workloads::harness::eval_config_32kb_l1d;
use catt_workloads::registry::find;
use catt_workloads::{run_cached, run_catt};

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let config = eval_config_32kb_l1d();
        println!("Ablation: decision granularity (32 KB L1D)");
        let mut rows = Vec::new();
        for abbrev in ["ATAX", "BICG", "MVT", "PF", "GSMV"] {
            let w = find(abbrev).unwrap();
            let kernels = w.kernels();
            let launch = w.block_launch();
            let base = run_cached(&w, &kernels, &config, true)?.stats;
            let (catt, app) = run_catt(&w, &config)?;

            // Collapse: take the most throttled per-loop decision in the app
            // and apply it to every eligible loop of every kernel.
            let collapsed = app
                .kernels
                .iter()
                .flat_map(|k| k.analysis.loops.iter())
                .filter(|l| l.decision.is_throttled())
                .map(|l| (l.decision.n, l.decision.m))
                .max_by_key(|(n, m)| n * (m + 1));
            let collapsed_cycles = match collapsed {
                Some((n, m)) => {
                    let warps = launch.warps_per_block();
                    let resident = base.resident_tbs_per_sm;
                    let ks: Vec<_> = kernels
                        .iter()
                        .map(|k| {
                            apply_uniform(k, n, m, warps, resident, config.smem_carveout_bytes)
                        })
                        .collect();
                    run_cached(&w, &ks, &config, true)?.cycles()
                }
                None => base.cycles,
            };

            rows.push(vec![
                abbrev.to_string(),
                format!("{:.3}", catt.cycles() as f64 / base.cycles as f64),
                format!("{:.3}", collapsed_cycles as f64 / base.cycles as f64),
                format!("{:?}", collapsed),
            ]);
        }
        catt_bench::print_table(
            &[
                "app",
                "per-loop CATT",
                "collapsed (one factor)",
                "collapsed (N,M)",
            ],
            &rows,
        );
        println!(
            "\nExpected: on multi-phase apps (ATAX/BICG/MVT/PF) per-loop beats the\n\
             collapsed single factor because the coalesced phases keep full TLP;\n\
             on uniform apps (GSMV) the two coincide — §5.1's CATT-vs-BFTT argument."
        );
        Ok(())
    })
}
