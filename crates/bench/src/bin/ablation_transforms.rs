//! Ablation — warp-level vs TB-level vs combined throttling (DESIGN.md
//! §5): the same concurrency reduction applied through the two mechanisms
//! of §4.3, on the contended ATAX kernel 1. Shows why CATT prefers
//! warp-level throttling (it only serializes the loop, while TB-level
//! throttling reduces parallelism for the whole kernel).

use catt_core::transform::{tb_throttle, warp_throttle};
use catt_workloads::harness::eval_config_32kb_l1d;
use catt_workloads::registry::find;
use catt_workloads::run_cached;

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let w = find("ATAX").unwrap();
        let config = eval_config_32kb_l1d();
        let kernels = w.kernels();
        let k1 = &kernels[0];
        let warps_per_tb = w.launch(0).warps_per_block();

        // Variants of kernel 1 at (roughly) one quarter of the baseline TLP:
        // 2 of 8 warps  vs  baseline TBs reduced 4x  vs  half warps + half TBs.
        let variants: Vec<(&str, catt_ir::Kernel)> = vec![
            ("baseline", k1.clone()),
            (
                "warp-level N=4",
                warp_throttle(k1, 0, 4, warps_per_tb).expect("warp transform"),
            ),
            (
                "TB-level -> 2 TBs",
                tb_throttle(k1, 2, 96 * 1024, 0).expect("tb transform"),
            ),
            (
                "combined N=2 + 4 TBs",
                tb_throttle(
                    &warp_throttle(k1, 0, 2, warps_per_tb).expect("warp transform"),
                    4,
                    96 * 1024,
                    0,
                )
                .expect("tb transform"),
            ),
        ];

        println!("Ablation: throttling mechanism on ATAX kernel 1 (32 KB L1D)");
        let mut rows = Vec::new();
        let mut base_cycles = 0u64;
        for (name, variant) in &variants {
            let mut ks = kernels.clone();
            ks[0] = variant.clone();
            let stats = run_cached(&w, &ks, &config, true)?.stats;
            if *name == "baseline" {
                base_cycles = stats.cycles;
            }
            rows.push(vec![
                name.to_string(),
                stats.cycles.to_string(),
                format!("{:.3}", stats.cycles as f64 / base_cycles as f64),
                format!("{:5.1}%", 100.0 * stats.l1_hit_rate()),
                stats.offchip_requests.to_string(),
            ]);
        }
        catt_bench::print_table(
            &[
                "variant",
                "cycles",
                "normalized",
                "L1D hit",
                "off-chip reqs",
            ],
            &rows,
        );
        Ok(())
    })
}
