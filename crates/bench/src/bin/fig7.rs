//! Fig. 7 — normalized execution time of the CS group on the maximum
//! L1D, baseline vs BFTT vs CATT. The paper's headline numbers live here
//! (CATT +42.96% geomean, BFTT +31.19% on its testbed).

use catt_bench::{eval_group, print_normalized_figure};
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::cs_workloads;

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let evals = eval_group(&cs_workloads(), &eval_config_max_l1d(), true)?;
        print_normalized_figure(
            "Fig. 7: normalized execution time, CS group (max. L1D)",
            &evals,
        );
        Ok(())
    })
}
