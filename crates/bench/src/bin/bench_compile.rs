//! `bench_compile` — cold vs. memoized compile latency over the
//! workload registry, with the pass-cache hit counters as a checked
//! invariant: a memoized recompile must *skip* parse and analyze
//! (hits, not misses), or this binary exits non-zero.
//!
//! ```text
//! cargo run --release -p catt-bench --bin bench_compile -- \
//!     [--samples N] [--out BENCH_compile.json]
//! ```
//!
//! Three passes per application, timed with the same interleaving-free
//! structure (compiles are microseconds; drift is irrelevant here):
//!
//! * **cold** — pass cache reset before every compile;
//! * **warm** — same sources recompiled against the populated cache
//!   (parse/analyze replay from the memo);
//! * **nocache** — `CATT_PASS_CACHE=off` equivalent (`with_pass_cache
//!   (false)`), the floor the memo is measured against.
//!
//! Non-gating in CI (an artifact-producing step), but the hit-counter
//! invariants are hard assertions wherever it runs.

use catt_core::{pass_cache_stats, reset_pass_cache, PassStats, Pipeline};
use catt_ir::LaunchConfig;
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::all_workloads;
use std::time::Instant;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

struct AppRow {
    abbrev: &'static str,
    source_lines: usize,
    kernels: usize,
    cold_us: f64,
    warm_us: f64,
    nocache_us: f64,
}

fn stats_for(pass: &str) -> PassStats {
    pass_cache_stats()
        .into_iter()
        .find(|(name, _)| *name == pass)
        .map(|(_, s)| s)
        .unwrap_or_default()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples: u32 = 20;
    let mut out = "BENCH_compile.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" if i + 1 < args.len() => {
                samples = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("bench_compile: bad --samples `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = args[i + 1].clone();
                i += 2;
            }
            other => {
                eprintln!("bench_compile: unknown option `{other}`");
                eprintln!("usage: bench_compile [--samples N] [--out path.json]");
                std::process::exit(2);
            }
        }
    }

    let config = eval_config_max_l1d();
    let cached = Pipeline::new(config.clone()).with_pass_cache(true);
    let uncached = Pipeline::new(config).with_pass_cache(false);

    println!("Compile latency: cold vs. memoized (pass cache), {samples} samples");
    let mut rows = Vec::new();
    for w in all_workloads() {
        let refs: Vec<(&str, LaunchConfig)> = w.launches.iter().map(|&(n, l)| (n, l)).collect();

        // Cold: reset before every compile so each sample misses.
        let mut cold = Vec::new();
        for _ in 0..samples {
            reset_pass_cache();
            let t = Instant::now();
            cached.compile_source(w.source, &refs).unwrap();
            cold.push(t.elapsed().as_secs_f64() * 1e6);
        }

        // Warm: the cache is populated by the last cold iteration;
        // every sample from here on replays parse and analyze.
        reset_pass_cache();
        cached.compile_source(w.source, &refs).unwrap();
        let before = (stats_for("parse"), stats_for("analyze"));
        let mut warm = Vec::new();
        for _ in 0..samples {
            let t = Instant::now();
            cached.compile_source(w.source, &refs).unwrap();
            warm.push(t.elapsed().as_secs_f64() * 1e6);
        }
        let after = (stats_for("parse"), stats_for("analyze"));

        // The checked invariant: memoized recompiles hit, never re-miss.
        let parse_hits = after.0.hits - before.0.hits;
        let analyze_hits = after.1.hits - before.1.hits;
        assert_eq!(
            parse_hits, samples as u64,
            "{}: warm recompiles must replay the parse from the cache",
            w.abbrev
        );
        assert!(
            analyze_hits >= samples as u64,
            "{}: warm recompiles must replay the analysis from the cache \
             ({analyze_hits} hits over {samples} samples)",
            w.abbrev
        );
        assert_eq!(
            after.0.misses, before.0.misses,
            "{}: a warm recompile re-parsed",
            w.abbrev
        );
        assert_eq!(
            after.1.misses, before.1.misses,
            "{}: a warm recompile re-analyzed",
            w.abbrev
        );

        let mut nocache = Vec::new();
        for _ in 0..samples {
            let t = Instant::now();
            uncached.compile_source(w.source, &refs).unwrap();
            nocache.push(t.elapsed().as_secs_f64() * 1e6);
        }

        let row = AppRow {
            abbrev: w.abbrev,
            source_lines: w.source.lines().count(),
            kernels: w.launches.len(),
            cold_us: catt_bench::timing::median_f64(&mut cold),
            warm_us: catt_bench::timing::median_f64(&mut warm),
            nocache_us: catt_bench::timing::median_f64(&mut nocache),
        };
        println!(
            "  {:>6}: cold {:>8.1} us | warm {:>7.1} us ({:>5.1}x) | no-cache {:>8.1} us",
            row.abbrev,
            row.cold_us,
            row.warm_us,
            row.cold_us / row.warm_us,
            row.nocache_us,
        );
        rows.push(row);
    }

    let geomean_speedup = (rows
        .iter()
        .map(|r| (r.cold_us / r.warm_us).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    println!("geomean cold/warm speedup: {geomean_speedup:.2}x");

    // Final counter snapshot for the artifact (cumulative over the warm
    // and cold phases of the last app — the per-app invariant already
    // ran; this is the observability surface).
    let final_stats = pass_cache_stats();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"samples\": {samples},\n  \"geomean_cold_over_warm\": {geomean_speedup:.4},\n"
    ));
    json.push_str("  \"pass_cache\": {\n");
    for (i, (name, s)) in final_stats.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"hits\": {}, \"misses\": {} }}{}\n",
            json_escape(name),
            s.hits,
            s.misses,
            if i + 1 < final_stats.len() { "," } else { "" },
        ));
    }
    json.push_str("  },\n  \"apps\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"app\": \"{}\", \"source_lines\": {}, \"kernels\": {}, \
             \"cold_us\": {:.3}, \"warm_us\": {:.3}, \"nocache_us\": {:.3}, \
             \"cold_over_warm\": {:.4} }}{}\n",
            json_escape(r.abbrev),
            r.source_lines,
            r.kernels,
            r.cold_us,
            r.warm_us,
            r.nocache_us,
            r.cold_us / r.warm_us,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_compile: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
