//! Fig. 8 — normalized execution time of the CI group on the maximum
//! L1D. The expected result is a flat line at 1.0 for CATT: the static
//! analysis must conclude that no CI kernel needs throttling (§5.1.1).

use catt_bench::{eval_group, print_normalized_figure};
use catt_workloads::harness::eval_config_max_l1d;
use catt_workloads::registry::ci_workloads;

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let evals = eval_group(&ci_workloads(), &eval_config_max_l1d(), true)?;
        print_normalized_figure(
            "Fig. 8: normalized execution time, CI group (max. L1D)",
            &evals,
        );
        let mistuned: Vec<&str> = evals
            .iter()
            .filter(|e| e.catt_transformed)
            .map(|e| e.abbrev)
            .collect();
        if mistuned.is_empty() {
            println!("CATT left every CI application untouched (as the paper requires).");
        } else {
            println!("WARNING: CATT transformed CI apps: {mistuned:?}");
        }
        Ok(())
    })
}
