//! Fig. 9 — sensitivity to the throttling factor: for each CS kernel
//! that CATT throttles (plus the irregular BFS/CFD kernels the paper
//! discusses), normalized application execution time as *that kernel's*
//! throttling factor sweeps the full `(warps, TBs)` grid, with CATT's
//! statically chosen factor starred. Evaluates the accuracy of the static
//! analysis: for regular kernels the star should sit at or near the
//! measured optimum.

use catt_core::bftt::candidate_grid;
use catt_core::pipeline::apply_uniform;
use catt_workloads::harness::eval_config_32kb_l1d;
use catt_workloads::registry::cs_workloads;
use catt_workloads::{run_cached, run_catt};

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let config = eval_config_32kb_l1d();
        println!("Fig. 9: normalized execution time vs per-kernel throttling factor (32 KB L1D)");
        println!("(sweeping one kernel at a time, others at baseline; * = CATT's static pick)");
        for w in cs_workloads() {
            let kernels = w.kernels();
            let (_, app) = run_catt(&w, &config)?;
            let base_cycles = run_cached(&w, &kernels, &config, false)?.cycles() as f64;
            for (ki, ck) in app.kernels.iter().enumerate() {
                let a = &ck.analysis;
                // Sweep kernels the paper's figure shows: throttled ones and
                // the irregular ones it calls out.
                let interesting = a.loops.iter().any(|l| l.decision.is_throttled())
                    || matches!(w.abbrev, "BFS" | "CFD");
                if !interesting || a.loops.is_empty() {
                    continue;
                }
                eprintln!("  sweeping {}#{} ...", w.abbrev, ki + 1);
                let warps = a.warps_per_tb;
                let resident = a.plan.resident_tbs;
                let catt_pick = a
                    .loops
                    .iter()
                    .filter(|l| l.decision.is_throttled())
                    .map(|l| l.tlp(warps, resident))
                    .min_by_key(|(w, t)| w * t)
                    .unwrap_or((warps, resident));
                print!("{}#{}", w.abbrev, ki + 1);
                for (n, m) in candidate_grid(warps, resident) {
                    let mut ks = kernels.clone();
                    ks[ki] = apply_uniform(
                        &kernels[ki],
                        n,
                        m,
                        warps,
                        resident,
                        config.smem_carveout_bytes,
                    );
                    let cycles = run_cached(&w, &ks, &config, false)?.cycles() as f64;
                    let setting = (warps / n, resident - m);
                    let star = if setting == catt_pick { "*" } else { "" };
                    print!(
                        " ({:>2},{:>2}){star}{:5.2}",
                        setting.0,
                        setting.1,
                        cycles / base_cycles
                    );
                }
                println!();
            }
        }
        println!(
            "\nReading: < 1.00 beats the unthrottled baseline. The starred setting is\n\
             what CATT chose statically for this kernel's contended loop (the whole\n\
             application still runs CATT's per-loop code, which can combine several\n\
             settings). BFS/CFD rows carry no star when CATT leaves them untouched."
        );
        Ok(())
    })
}
