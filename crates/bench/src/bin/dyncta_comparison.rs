//! Extension experiment — dynamic vs static vs compile-time throttling:
//! the paper's §2.2 positions CATT against hardware-monitoring schemes
//! (CCWS/DYNCTA), which were evaluated on GPU simulators in their own
//! papers. Our simulator implements a DYNCTA-style dynamic TB throttler
//! (`catt_sim::config::DynctaConfig`), enabling the comparison the paper
//! could only make qualitatively: baseline vs DYNCTA vs CATT on the CS
//! group.

use catt_sim::config::DynctaConfig;
use catt_workloads::harness::{eval_config_32kb_l1d, geomean};
use catt_workloads::registry::cs_workloads;
use catt_workloads::{run_baseline, run_catt};

fn main() -> std::process::ExitCode {
    catt_bench::run_eval(|| {
        let config = eval_config_32kb_l1d();
        let mut dyn_config = config.clone();
        dyn_config.dyncta = Some(DynctaConfig::default());

        println!("Dynamic (DYNCTA-style) vs compile-time (CATT) throttling, 32 KB L1D");
        let mut rows = Vec::new();
        let mut dyn_speed = Vec::new();
        let mut catt_speed = Vec::new();
        for w in cs_workloads() {
            eprintln!("  evaluating {} ...", w.abbrev);
            let base = run_baseline(&w, &config)?;
            let dynr = run_baseline(&w, &dyn_config)?;
            let (catt, _) = run_catt(&w, &config)?;
            let b = base.cycles() as f64;
            dyn_speed.push(b / dynr.cycles() as f64);
            catt_speed.push(b / catt.cycles() as f64);
            rows.push(vec![
                w.abbrev.to_string(),
                format!("{:.3}", dynr.cycles() as f64 / b),
                format!("{:.3}", catt.cycles() as f64 / b),
            ]);
        }
        catt_bench::print_table(&["app", "DYNCTA (normalized)", "CATT (normalized)"], &rows);
        println!(
            "geomean speedup: DYNCTA {:+.2}% | CATT {:+.2}%",
            (geomean(&dyn_speed).unwrap_or(1.0) - 1.0) * 100.0,
            (geomean(&catt_speed).unwrap_or(1.0) - 1.0) * 100.0
        );
        println!(
            "\nExpected (paper §2.2): the reactive scheme helps contended apps but\n\
             lags CATT — it spends warm-up windows converging, re-converges on every\n\
             phase change, and throttles at whole-TB granularity only."
        );
        Ok(())
    })
}
