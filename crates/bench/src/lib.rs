//! # catt-bench — the paper's evaluation harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus Criterion benches for analysis overhead and simulator
//! throughput. This library holds the shared experiment drivers and
//! plain-text table/CSV formatting.
//!
//! ```text
//! cargo run --release -p catt-bench --bin table3
//! cargo run --release -p catt-bench --bin fig7
//! ```

pub mod timing;

use catt_sim::GpuConfig;
use catt_workloads::registry::Workload;
use catt_workloads::{harness, run_baseline, run_bftt, run_catt, EvalError};

pub use catt_workloads::{engine, CacheCounters, Engine, JobError};

/// Result of evaluating one application under the three policies.
pub struct AppEval {
    pub abbrev: &'static str,
    /// Baseline cycles / L1D hit rate.
    pub base_cycles: u64,
    pub base_hit: f64,
    /// BFTT best cycles / hit rate and its chosen `(warps, TBs)`.
    pub bftt_cycles: u64,
    pub bftt_hit: f64,
    pub bftt_setting: (u32, u32),
    /// CATT cycles / hit rate.
    pub catt_cycles: u64,
    pub catt_hit: f64,
    /// Whether CATT transformed anything.
    pub catt_transformed: bool,
}

impl AppEval {
    /// Normalized execution times (baseline = 1.0), the y-axis of
    /// Figs. 7, 8 and 10.
    pub fn normalized(&self) -> (f64, f64) {
        (
            self.bftt_cycles as f64 / self.base_cycles as f64,
            self.catt_cycles as f64 / self.base_cycles as f64,
        )
    }

    /// Speedups over baseline.
    pub fn speedups(&self) -> (f64, f64) {
        (
            self.base_cycles as f64 / self.bftt_cycles as f64,
            self.base_cycles as f64 / self.catt_cycles as f64,
        )
    }
}

/// Evaluate one workload under baseline / BFTT / CATT on `config`. Runs
/// are memoized on the global [`Engine`]; any simulation or compilation
/// failure propagates with the failing workload (and, for BFTT, the
/// failing `(n, m)` candidate) named in the error.
pub fn eval_app(w: &Workload, config: &GpuConfig, with_bftt: bool) -> Result<AppEval, EvalError> {
    let base = run_baseline(w, config)?;
    let (catt, app) = run_catt(w, config)?;
    let (bftt_cycles, bftt_hit, bftt_setting) = if with_bftt {
        let (out, sweep) = run_bftt(w, config)?;
        let best = sweep.best_candidate();
        (
            out.cycles(),
            out.stats.l1_hit_rate(),
            (best.warps, best.tbs),
        )
    } else {
        (base.cycles(), base.stats.l1_hit_rate(), (0, 0))
    };
    Ok(AppEval {
        abbrev: w.abbrev,
        base_cycles: base.cycles(),
        base_hit: base.stats.l1_hit_rate(),
        bftt_cycles,
        bftt_hit,
        bftt_setting,
        catt_cycles: catt.cycles(),
        catt_hit: catt.stats.l1_hit_rate(),
        catt_transformed: app.kernels.iter().any(|k| k.is_transformed()),
    })
}

/// Evaluate a whole group, printing progress to stderr. Stops at the
/// first failing workload.
pub fn eval_group(
    workloads: &[Workload],
    config: &GpuConfig,
    with_bftt: bool,
) -> Result<Vec<AppEval>, EvalError> {
    workloads
        .iter()
        .map(|w| {
            if engine::Progress::from_env() != engine::Progress::Off {
                eprintln!("  evaluating {} ...", w.abbrev);
            }
            eval_app(w, config, with_bftt)
        })
        .collect()
}

/// Entry-point wrapper for the figure/table binaries: initialize the
/// persistent simulation cache (JSONL under `results/.simcache/`, see
/// DESIGN.md), run `body`, and print the engine's per-job timing and
/// cache hit/miss summary to stderr. A failing evaluation exits nonzero
/// with the failing workload/candidate named, instead of panicking
/// mid-figure.
pub fn run_eval(body: impl FnOnce() -> Result<(), EvalError>) -> std::process::ExitCode {
    let engine = Engine::init_global_persistent();
    let code = match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    };
    engine.print_summary();
    code
}

/// Print a normalized-execution-time figure (Figs. 7 / 8 / 10 style) and
/// the geomean speedup line the paper quotes.
pub fn print_normalized_figure(title: &str, evals: &[AppEval]) {
    println!("{title}");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "app", "baseline", "BFTT", "CATT"
    );
    for e in evals {
        let (b, c) = e.normalized();
        println!("{:<8} {:>10.3} {:>10.3} {:>10.3}", e.abbrev, 1.0, b, c);
    }
    let bftt_speedups: Vec<f64> = evals.iter().map(|e| e.speedups().0).collect();
    let catt_speedups: Vec<f64> = evals.iter().map(|e| e.speedups().1).collect();
    println!(
        "geomean speedup over baseline: BFTT {:+.2}% | CATT {:+.2}%",
        (harness::geomean(&bftt_speedups).unwrap_or(1.0) - 1.0) * 100.0,
        (harness::geomean(&catt_speedups).unwrap_or(1.0) - 1.0) * 100.0,
    );
}

/// Simple aligned-column printer used by the table binaries.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_workloads::registry;

    #[test]
    fn eval_app_runs_ci_quickly() {
        let w = registry::find("MC").unwrap();
        let e = eval_app(&w, &harness::eval_config_max_l1d(), false).expect("MC evaluates");
        assert!(e.base_cycles > 0);
        assert!(!e.catt_transformed);
        let (_, catt_norm) = e.normalized();
        assert!((catt_norm - 1.0).abs() < 1e-9, "CI app: CATT == baseline");
    }

    #[test]
    fn normalized_and_speedups_are_consistent() {
        let e = AppEval {
            abbrev: "X",
            base_cycles: 1000,
            base_hit: 0.5,
            bftt_cycles: 800,
            bftt_hit: 0.6,
            bftt_setting: (4, 4),
            catt_cycles: 500,
            catt_hit: 0.9,
            catt_transformed: true,
        };
        assert_eq!(e.normalized(), (0.8, 0.5));
        assert_eq!(e.speedups(), (1.25, 2.0));
    }
}
