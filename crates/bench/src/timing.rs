//! Minimal std-only timing harness — the offline replacement for the
//! Criterion dev-dependency. Each `[[bench]]` target is a plain `main`
//! (`harness = false`) that calls [`bench`] per case.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Median of a sample set: the middle element for odd n, the average of
/// the two middle elements for even n. The one shared definition for
/// every consumer in the bench crate (`bench` below, `bench_summary`) —
/// previously the two call sites disagreed on the even-n convention.
/// Sorts `samples` in place.
///
/// # Panics
/// On an empty slice.
pub fn median_f64(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// [`median_f64`] over wall-clock samples. Goes through seconds-as-f64
/// (sub-nanosecond precision loss only, far below timer noise) so both
/// median consumers share one implementation.
pub fn median_duration(times: &[Duration]) -> Duration {
    let mut secs: Vec<f64> = times.iter().map(Duration::as_secs_f64).collect();
    Duration::from_secs_f64(median_f64(&mut secs))
}

/// Measured summary of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Number of timed samples.
    pub samples: usize,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
}

/// Time `f` for `samples` samples after one warm-up call, printing a
/// Criterion-style line. Returns the summary for programmatic use. The
/// closure's return value is passed through [`black_box`] so the work is
/// not optimized away.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Sampled {
    black_box(f());
    let mut times: Vec<Duration> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    let median = median_duration(&times);
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let min = *times.iter().min().expect("at least one sample");
    println!(
        "{name:<28} median {median:>12?}  mean {mean:>12?}  min {min:>12?}  ({} samples)",
        times.len()
    );
    Sampled {
        samples: times.len(),
        median,
        mean,
        min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_samples() {
        let mut calls = 0u32;
        let s = bench("noop", 5, || {
            calls += 1;
            calls
        });
        assert_eq!(s.samples, 5);
        // Warm-up + 5 samples.
        assert_eq!(calls, 6);
        assert!(s.min <= s.median);
    }

    #[test]
    fn median_odd_takes_the_middle() {
        let mut s = [5.0, 1.0, 3.0];
        assert_eq!(median_f64(&mut s), 3.0);
        let mut s = [9.0];
        assert_eq!(median_f64(&mut s), 9.0);
    }

    #[test]
    fn median_even_averages_the_middle_pair() {
        let mut s = [4.0, 1.0, 2.0, 100.0];
        assert_eq!(median_f64(&mut s), 3.0);
        let mut s = [2.0, 1.0];
        assert_eq!(median_f64(&mut s), 1.5);
    }

    #[test]
    fn median_duration_matches_both_parities() {
        let ms = Duration::from_millis;
        assert_eq!(median_duration(&[ms(30), ms(10), ms(20)]), ms(20));
        // Even n: average of the middle pair, not the upper-middle sample.
        assert_eq!(median_duration(&[ms(10), ms(20), ms(30), ms(400)]), ms(25));
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn median_of_empty_set_panics() {
        median_f64(&mut []);
    }
}
