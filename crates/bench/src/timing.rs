//! Minimal std-only timing harness — the offline replacement for the
//! Criterion dev-dependency. Each `[[bench]]` target is a plain `main`
//! (`harness = false`) that calls [`bench`] per case.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measured summary of one benchmark case.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Number of timed samples.
    pub samples: usize,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
}

/// Time `f` for `samples` samples after one warm-up call, printing a
/// Criterion-style line. Returns the summary for programmatic use. The
/// closure's return value is passed through [`black_box`] so the work is
/// not optimized away.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Sampled {
    black_box(f());
    let mut times: Vec<Duration> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let min = times[0];
    println!(
        "{name:<28} median {median:>12?}  mean {mean:>12?}  min {min:>12?}  ({} samples)",
        times.len()
    );
    Sampled {
        samples: times.len(),
        median,
        mean,
        min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_all_samples() {
        let mut calls = 0u32;
        let s = bench("noop", 5, || {
            calls += 1;
            calls
        });
        assert_eq!(s.samples, 5);
        // Warm-up + 5 samples.
        assert_eq!(calls, 6);
        assert!(s.min <= s.median);
    }
}
