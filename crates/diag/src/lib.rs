//! # catt-diag — typed, source-spanned diagnostics
//!
//! Every failure on the compile path — lexing, parsing, lowering,
//! analysis, legality, transform, emission — is reported as a
//! [`Diagnostic`]: a severity, a stable code from the [`codes`]
//! registry, a message, an optional byte [`Span`] into the submitted
//! source, and optional notes. Two renderings are provided:
//!
//! * [`render_human`] — a rustc-style caret report against the source
//!   text, for terminals;
//! * [`Diagnostic::to_json`] / [`render_json`] — a machine-readable
//!   form carried verbatim on the `catt-serve` NDJSON wire.
//!
//! The crate is dependency-free and knows nothing about the IR: spans
//! are plain byte ranges, produced by the frontend and carried through
//! the pass pipeline untouched.

pub mod codes;
pub mod span;

pub use codes::Code;
pub use span::{LineIndex, Span};

/// How bad a diagnostic is. `Note` never appears as a top-level
/// severity; it exists so attached notes can reuse the rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Note,
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A secondary remark attached to a diagnostic ("defined here", "the
/// barrier is on line 12").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    pub message: String,
    pub span: Option<Span>,
}

/// One typed, source-attributed report from the compile path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub code: Code,
    pub message: String,
    /// Byte span into the submitted source, when one is known.
    pub span: Option<Span>,
    /// 1-based position of `span.start`; `0` = not yet located. Filled
    /// by the frontend directly or backfilled with [`locate`].
    pub line: u32,
    pub col: u32,
    /// Name of the pipeline pass that produced this, once it has gone
    /// through the pass manager (`None` straight out of the frontend).
    pub pass: Option<&'static str>,
    pub notes: Vec<Note>,
}

impl Diagnostic {
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span: None,
            line: 0,
            col: 0,
            pass: None,
            notes: Vec::new(),
        }
    }

    pub fn warning(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    pub fn at(mut self, line: u32, col: u32) -> Diagnostic {
        self.line = line;
        self.col = col;
        self
    }

    pub fn in_pass(mut self, pass: &'static str) -> Diagnostic {
        self.pass = Some(pass);
        self
    }

    pub fn note(mut self, message: impl Into<String>, span: Option<Span>) -> Diagnostic {
        self.notes.push(Note {
            message: message.into(),
            span,
        });
        self
    }

    /// One-line summary: `error[E010]: unexpected token `)`` — used by
    /// `Display` impls that wrap a diagnostic list.
    pub fn headline(&self) -> String {
        format!("{}[{}]: {}", self.severity.label(), self.code, self.message)
    }

    /// Machine-readable JSON object (hand-rolled; the workspace is
    /// dependency-free). Stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "severity", self.severity.label());
        out.push(',');
        push_str_field(&mut out, "code", self.code.as_str());
        out.push(',');
        push_str_field(&mut out, "message", &self.message);
        if let Some(s) = self.span {
            out.push_str(&format!(
                ",\"span\":{{\"start\":{},\"end\":{}}}",
                s.start, s.end
            ));
        }
        if self.line > 0 {
            out.push_str(&format!(",\"line\":{},\"col\":{}", self.line, self.col));
        }
        if let Some(p) = self.pass {
            out.push(',');
            push_str_field(&mut out, "pass", p);
        }
        if !self.notes.is_empty() {
            out.push_str(",\"notes\":[");
            for (i, n) in self.notes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                push_str_field(&mut out, "message", &n.message);
                if let Some(s) = n.span {
                    out.push_str(&format!(
                        ",\"span\":{{\"start\":{},\"end\":{}}}",
                        s.start, s.end
                    ));
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a diagnostic list as one JSON array.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// Backfill `line`/`col` on every diagnostic (and leave already-located
/// ones alone) from the source text the spans index into.
pub fn locate(diags: &mut [Diagnostic], src: &str) {
    let ix = LineIndex::new(src);
    for d in diags {
        if d.line == 0 {
            if let Some(span) = d.span {
                let (line, col) = ix.line_col(span.start);
                d.line = line;
                d.col = col;
            }
        }
    }
}

/// Render one diagnostic rustc-style against its source:
///
/// ```text
/// error[E010]: unexpected token `)`
///   --> kernel.cu:3:12
///    |
///  3 |     if (x > ) {
///    |             ^
///    = note: expected an expression
/// ```
///
/// `file` is a display name only (the daemon uses the request id).
pub fn render_human(d: &Diagnostic, src: &str, file: &str) -> String {
    use std::fmt::Write;
    let ix = LineIndex::new(src);
    let mut out = String::new();
    let _ = writeln!(out, "{}", d.headline());
    let located = d.span.map(|s| {
        let (line, col) = if d.line > 0 {
            (d.line, d.col)
        } else {
            ix.line_col(s.start)
        };
        (s, line, col)
    });
    if let Some((span, line, col)) = located {
        let _ = writeln!(out, "  --> {file}:{line}:{col}");
        let text = ix.line_text(src, line);
        let gutter = line.to_string();
        let pad = " ".repeat(gutter.len());
        let _ = writeln!(out, " {pad} |");
        let _ = writeln!(out, " {gutter} | {text}");
        // Caret width: the part of the span on this line, at least 1.
        let col0 = (col as usize).saturating_sub(1).min(text.len());
        let width = (span.len() as usize).clamp(1, text.len().saturating_sub(col0).max(1));
        let _ = writeln!(out, " {pad} | {}{}", " ".repeat(col0), "^".repeat(width));
    } else if d.line > 0 {
        let _ = writeln!(out, "  --> {file}:{}:{}", d.line, d.col);
    }
    if let Some(p) = d.pass {
        let _ = writeln!(out, "   = pass: {p}");
    }
    for n in &d.notes {
        match n.span {
            Some(s) => {
                let (line, col) = ix.line_col(s.start);
                let _ = writeln!(out, "   = note: {} ({file}:{line}:{col})", n.message);
            }
            None => {
                let _ = writeln!(out, "   = note: {}", n.message);
            }
        }
    }
    out
}

/// Render a whole diagnostic list, blank-line separated, with a final
/// error/warning count summary line when anything is an error.
pub fn render_human_all(diags: &[Diagnostic], src: &str, file: &str) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_human(d, src, file));
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        out.push_str(&format!(
            "error: {errors} error{} emitted\n",
            if errors == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_headline() {
        let d = Diagnostic::error(codes::UNEXPECTED_TOKEN, "unexpected token `)`")
            .with_span(Span::new(10, 11))
            .note("expected an expression", None);
        assert_eq!(d.headline(), "error[E010]: unexpected token `)`");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.notes.len(), 1);
    }

    #[test]
    fn json_escapes_and_fields() {
        let d = Diagnostic::error(codes::UNEXPECTED_CHARACTER, "bad \"char\"\n")
            .with_span(Span::new(2, 3))
            .at(1, 3)
            .in_pass("parse");
        let j = d.to_json();
        assert!(j.contains("\"severity\":\"error\""), "{j}");
        assert!(j.contains("\"code\":\"E001\""), "{j}");
        assert!(j.contains("\\\"char\\\"\\n"), "{j}");
        assert!(j.contains("\"span\":{\"start\":2,\"end\":3}"), "{j}");
        assert!(j.contains("\"line\":1,\"col\":3"), "{j}");
        assert!(j.contains("\"pass\":\"parse\""), "{j}");
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert!(arr.contains("},{"));
    }

    #[test]
    fn locate_backfills_line_col() {
        let src = "abc\ndef ghi\n";
        let mut diags = vec![
            Diagnostic::error(codes::UNEXPECTED_TOKEN, "x").with_span(Span::new(8, 11)),
            Diagnostic::error(codes::UNEXPECTED_TOKEN, "y").at(9, 9), // pre-located
        ];
        locate(&mut diags, src);
        assert_eq!((diags[0].line, diags[0].col), (2, 5));
        assert_eq!((diags[1].line, diags[1].col), (9, 9));
    }

    #[test]
    fn human_rendering_carets() {
        let src = "int x;\nif (x > ) {\n";
        let d = Diagnostic::error(codes::EXPECTED_EXPRESSION, "expected expression, found `)`")
            .with_span(Span::new(15, 16));
        let r = render_human(&d, src, "k.cu");
        assert!(r.contains("error[E011]: expected expression"), "{r}");
        assert!(r.contains("--> k.cu:2:9"), "{r}");
        assert!(r.contains("2 | if (x > ) {"), "{r}");
        assert!(r.contains("|         ^"), "{r}");
    }

    #[test]
    fn human_rendering_handles_spanless_and_out_of_range() {
        let d = Diagnostic::error(codes::KERNEL_NOT_FOUND, "kernel `foo` not found");
        let r = render_human(&d, "", "k.cu");
        assert!(r.starts_with("error[E016]"), "{r}");
        // A span past EOF must not panic and must still render.
        let d2 = Diagnostic::error(codes::UNEXPECTED_TOKEN, "eof").with_span(Span::new(90, 95));
        let r2 = render_human(&d2, "short\n", "k.cu");
        assert!(r2.contains("error[E010]"), "{r2}");
        let all = render_human_all(&[d, d2], "short\n", "k.cu");
        assert!(all.contains("error: 2 errors emitted"), "{all}");
    }
}
