//! The stable error-code registry.
//!
//! Codes are part of the tool's public surface: `catt-serve` clients
//! match on them, tests grep for them, and DESIGN.md documents them.
//! Never renumber; retire a code by leaving a tombstone comment.

/// A stable diagnostic code such as `E010` or `W001`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Code(pub &'static str);

impl Code {
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// `true` for `W`-prefixed codes.
    pub fn is_warning(&self) -> bool {
        self.0.starts_with('W')
    }

    /// One-line description from the registry, or `""` for codes minted
    /// outside it (only possible in tests).
    pub fn description(&self) -> &'static str {
        REGISTRY
            .iter()
            .find(|(c, _)| *c == self.0)
            .map(|(_, d)| *d)
            .unwrap_or("")
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// Look a code up by name (used when parsing diagnostics back off the
/// NDJSON wire). Returns `None` for unknown names.
pub fn lookup(name: &str) -> Option<Code> {
    REGISTRY
        .iter()
        .find(|(c, _)| *c == name)
        .map(|(c, _)| Code(c))
}

/// Every registered code with its one-line description, in code order.
pub const REGISTRY: &[(&str, &str)] = &[
    // E00x — lexical errors.
    ("E001", "unexpected character"),
    ("E002", "unterminated block comment"),
    ("E003", "malformed integer literal"),
    ("E004", "malformed floating-point literal"),
    ("E005", "invalid UTF-8 in token text"),
    // E01x — syntactic / semantic frontend errors.
    ("E010", "unexpected token"),
    ("E011", "expected expression"),
    ("E012", "non-canonical for loop"),
    ("E013", "unknown function or intrinsic"),
    ("E014", "unsupported construct"),
    ("E015", "malformed #define"),
    ("E016", "kernel not found"),
    ("E017", "malformed __shared__ declaration"),
    ("E018", "unknown struct member"),
    ("E019", "wrong intrinsic arity"),
    // E02x — pipeline (lowering / analysis) errors.
    ("E020", "lowering failed"),
    ("E021", "kernel not launchable on this configuration"),
    ("E022", "no launch configuration supplied"),
    // E03x — internal errors.
    ("E030", "internal error: compiler pass panicked"),
    // W00x — transform-level warnings.
    (
        "W001",
        "throttling transform fell back to the original kernel",
    ),
    (
        "W002",
        "injected fault forced fallback to the original kernel",
    ),
    // W01x — legality rejections (why a loop was not throttled).
    ("W010", "loop skipped: contains a barrier"),
    ("W011", "loop skipped: under a thread-divergent guard"),
    ("W012", "loop skipped: throttle factor unresolved"),
];

pub const UNEXPECTED_CHARACTER: Code = Code("E001");
pub const UNTERMINATED_COMMENT: Code = Code("E002");
pub const MALFORMED_INT: Code = Code("E003");
pub const MALFORMED_FLOAT: Code = Code("E004");
pub const INVALID_UTF8: Code = Code("E005");
pub const UNEXPECTED_TOKEN: Code = Code("E010");
pub const EXPECTED_EXPRESSION: Code = Code("E011");
pub const NON_CANONICAL_FOR: Code = Code("E012");
pub const UNKNOWN_FUNCTION: Code = Code("E013");
pub const UNSUPPORTED: Code = Code("E014");
pub const BAD_DEFINE: Code = Code("E015");
pub const KERNEL_NOT_FOUND: Code = Code("E016");
pub const BAD_SHARED_DECL: Code = Code("E017");
pub const UNKNOWN_MEMBER: Code = Code("E018");
pub const BAD_INTRINSIC_ARITY: Code = Code("E019");
pub const LOWERING_FAILED: Code = Code("E020");
pub const UNLAUNCHABLE: Code = Code("E021");
pub const MISSING_LAUNCH: Code = Code("E022");
pub const PASS_PANICKED: Code = Code("E030");
pub const TRANSFORM_FALLBACK: Code = Code("W001");
pub const FAULT_FALLBACK: Code = Code("W002");
pub const LOOP_SKIPPED_BARRIER: Code = Code("W010");
pub const LOOP_SKIPPED_DIVERGENT: Code = Code("W011");
pub const LOOP_UNRESOLVED: Code = Code("W012");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{} !< {}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn registry_shape() {
        for (code, desc) in REGISTRY {
            assert_eq!(code.len(), 4, "{code}");
            assert!(code.starts_with('E') || code.starts_with('W'), "{code}");
            assert!(code[1..].bytes().all(|b| b.is_ascii_digit()), "{code}");
            assert!(!desc.is_empty(), "{code} lacks a description");
        }
    }

    #[test]
    fn lookup_round_trips() {
        assert_eq!(lookup("E010"), Some(UNEXPECTED_TOKEN));
        assert_eq!(lookup("W010"), Some(LOOP_SKIPPED_BARRIER));
        assert_eq!(lookup("E999"), None);
        assert!(UNEXPECTED_TOKEN.description().contains("token"));
        assert!(LOOP_SKIPPED_BARRIER.is_warning());
        assert!(!PASS_PANICKED.is_warning());
    }
}
