//! Byte spans and the offset → line/column index.

/// A half-open byte range `[start, end)` into the source text a
/// diagnostic refers to. Offsets are byte offsets, not char offsets:
/// the lexer only ever starts and ends tokens on character boundaries,
/// so a span produced by the frontend always slices cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// A zero-length span at one offset (insertion point, EOF).
    pub fn point(at: u32) -> Span {
        Span { start: at, end: at }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn len(self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    pub fn is_empty(self) -> bool {
        self.end <= self.start
    }

    /// `true` iff the span lies within a source of `src_len` bytes and
    /// is well-ordered. The fuzz campaign asserts this on every
    /// diagnostic the frontend emits.
    pub fn in_bounds(self, src_len: usize) -> bool {
        self.start <= self.end && (self.end as usize) <= src_len
    }
}

/// Precomputed line-start table for O(log n) offset → (line, col)
/// translation. Lines and columns are 1-based; column counts bytes,
/// matching what the lexer has always reported.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the start of each line; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl LineIndex {
    pub fn new(src: &str) -> LineIndex {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// (line, col), both 1-based, for a byte offset. Offsets past the
    /// end clamp to the final position.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// The text of 1-based line `line` in `src`, without its newline.
    pub fn line_text<'s>(&self, src: &'s str, line: u32) -> &'s str {
        let i = (line as usize).saturating_sub(1);
        if i >= self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[i] as usize;
        let end = self
            .line_starts
            .get(i + 1)
            .map(|&s| s as usize)
            .unwrap_or(src.len());
        src[start..end.min(src.len())].trim_end_matches(['\n', '\r'])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_basics() {
        let s = Span::new(3, 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert!(s.in_bounds(7));
        assert!(!s.in_bounds(6));
        assert!(Span::point(5).is_empty());
        assert_eq!(Span::new(1, 2).to(Span::new(5, 9)), Span::new(1, 9));
        assert!(!Span { start: 4, end: 2 }.in_bounds(10));
    }

    #[test]
    fn line_index_maps_offsets() {
        let src = "ab\ncde\n\nf";
        let ix = LineIndex::new(src);
        assert_eq!(ix.line_col(0), (1, 1));
        assert_eq!(ix.line_col(2), (1, 3)); // the '\n' itself
        assert_eq!(ix.line_col(3), (2, 1));
        assert_eq!(ix.line_col(5), (2, 3));
        assert_eq!(ix.line_col(7), (3, 1));
        assert_eq!(ix.line_col(8), (4, 1));
        assert_eq!(ix.line_col(100), (4, 2)); // clamped to EOF
        assert_eq!(ix.line_text(src, 1), "ab");
        assert_eq!(ix.line_text(src, 2), "cde");
        assert_eq!(ix.line_text(src, 3), "");
        assert_eq!(ix.line_text(src, 4), "f");
        assert_eq!(ix.line_text(src, 9), "");
    }

    #[test]
    fn line_index_empty_source() {
        let ix = LineIndex::new("");
        assert_eq!(ix.line_col(0), (1, 1));
        assert_eq!(ix.line_col(5), (1, 1));
    }
}
