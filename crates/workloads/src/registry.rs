//! The workload registry (paper Table 2).

use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{GpuConfig, LaunchStats};

/// Cache-sensitivity group (paper §3: CS applications gain >10 % L1D hit
/// rate from a larger-than-64 KB cache; CI applications do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Group {
    /// Cache-sensitive.
    Cs,
    /// Cache-insensitive.
    Ci,
}

impl Group {
    /// Table 2 label.
    pub fn label(self) -> &'static str {
        match self {
            Group::Cs => "CS",
            Group::Ci => "CI",
        }
    }
}

/// Application runner: executes the whole app (all kernel launches, host
/// orchestration) with the provided kernels — which may be baseline or
/// throttled variants — on `config`, validating device outputs against a
/// host reference when `validate` is true. Returns accumulated statistics.
pub type RunFn = fn(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats;

/// One benchmark application.
pub struct Workload {
    /// Table 2 abbreviation (e.g. "ATAX").
    pub abbrev: &'static str,
    /// Full application name.
    pub name: &'static str,
    /// Upstream suite ("Polybench" or "Rodinia").
    pub suite: &'static str,
    /// CS / CI group.
    pub group: Group,
    /// Static shared memory per block in KB (Table 2 column `SMEM`).
    pub smem_kb: f64,
    /// Input description at our simulator scale (Table 2 column `Input`).
    pub input: &'static str,
    /// CUDA source of all kernels.
    pub source: &'static str,
    /// Kernel launch configurations, by kernel name, in launch order.
    pub launches: &'static [(&'static str, LaunchConfig)],
    /// End-to-end runner.
    pub run: RunFn,
}

impl Workload {
    /// Parse the workload's kernels (panics on malformed source — sources
    /// are compiled into the binary and covered by tests).
    pub fn kernels(&self) -> Vec<Kernel> {
        let m = catt_frontend::parse_module(self.source)
            .unwrap_or_else(|e| panic!("{}: source does not parse: {e}", self.abbrev));
        // Order kernels as the launch list expects.
        self.launches
            .iter()
            .map(|(name, _)| {
                m.kernel(name)
                    .unwrap_or_else(|| panic!("{}: kernel `{name}` missing", self.abbrev))
                    .clone()
            })
            .collect()
    }

    /// Launch configuration for the `i`-th kernel.
    pub fn launch(&self, i: usize) -> LaunchConfig {
        self.launches[i].1
    }

    /// The (uniform) block geometry of the application. Panics if kernels
    /// disagree — BFTT requires a single block size per app.
    pub fn block_launch(&self) -> LaunchConfig {
        let first = self.launches[0].1;
        for (name, l) in self.launches {
            assert_eq!(
                l.block, first.block,
                "{}: kernel `{name}` uses a different block size",
                self.abbrev
            );
        }
        first
    }
}

/// The cache-sensitive applications (paper Table 2, CS group).
pub fn cs_workloads() -> Vec<Workload> {
    vec![
        crate::cs::gsmv::workload(),
        crate::cs::syr2k::workload(),
        crate::cs::atax::workload(),
        crate::cs::bicg::workload(),
        crate::cs::mvt::workload(),
        crate::cs::corr::workload(),
        crate::cs::bfs::workload(),
        crate::cs::cfd::workload(),
        crate::cs::km::workload(),
        crate::cs::pf::workload(),
        crate::cs::dm::workload(),
    ]
}

/// The cache-insensitive applications (paper Table 2, CI group).
pub fn ci_workloads() -> Vec<Workload> {
    vec![
        crate::ci::gram::workload(),
        crate::ci::syrk::workload(),
        crate::ci::dc::workload(),
        crate::ci::bt::workload(),
        crate::ci::hp::workload(),
        crate::ci::lvmd::workload(),
        crate::ci::mm2::workload(),
        crate::ci::gemm::workload(),
        crate::ci::mm3::workload(),
        crate::ci::bp::workload(),
        crate::ci::hm::workload(),
        crate::ci::lud::workload(),
        crate::ci::hw::workload(),
        crate::ci::mc::workload(),
    ]
}

/// All 25 applications (Table 2's 24 plus the DM extension workload).
pub fn all_workloads() -> Vec<Workload> {
    let mut v = cs_workloads();
    v.extend(ci_workloads());
    v
}

/// Find a workload by abbreviation (case-insensitive).
pub fn find(abbrev: &str) -> Option<Workload> {
    all_workloads()
        .into_iter()
        .find(|w| w.abbrev.eq_ignore_ascii_case(abbrev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_table2_apps() {
        let all = all_workloads();
        assert_eq!(cs_workloads().len(), 11);
        assert_eq!(ci_workloads().len(), 14);
        assert_eq!(all.len(), 25);
        let mut abbrevs: Vec<&str> = all.iter().map(|w| w.abbrev).collect();
        abbrevs.sort_unstable();
        let mut dedup = abbrevs.clone();
        dedup.dedup();
        assert_eq!(abbrevs, dedup, "duplicate abbreviations");
    }

    #[test]
    fn every_source_parses_and_lowers() {
        for w in all_workloads() {
            let kernels = w.kernels();
            assert!(!kernels.is_empty(), "{}", w.abbrev);
            assert_eq!(kernels.len(), w.launches.len(), "{}", w.abbrev);
            for k in &kernels {
                catt_sim::lower(k)
                    .unwrap_or_else(|e| panic!("{}::{} does not lower: {e}", w.abbrev, k.name));
            }
            // Uniform block geometry (BFTT requirement).
            w.block_launch();
        }
    }

    #[test]
    fn smem_declared_matches_table() {
        for w in all_workloads() {
            let declared: u32 = w
                .kernels()
                .iter()
                .map(|k| k.shared_mem_bytes())
                .max()
                .unwrap();
            let expected_kb = w.smem_kb;
            let declared_kb = declared as f64 / 1024.0;
            assert!(
                (declared_kb - expected_kb).abs() < 0.51,
                "{}: table says {expected_kb} KB, kernels declare {declared_kb} KB",
                w.abbrev
            );
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("atax").is_some());
        assert!(find("ATAX").is_some());
        assert!(find("nope").is_none());
    }
}
