//! Deterministic input generators.
//!
//! All inputs derive from a fixed-seed `StdRng` so every run (and every
//! throttling variant within a run) sees identical data — required for the
//! output-equivalence checks between baseline and transformed kernels.

use catt_prng::Rng;

/// The fixed seed all generators use.
pub const SEED: u64 = 0x5EED_CA77;

/// A seeded RNG for workload `tag` (different workloads get decorrelated
/// streams).
pub fn rng(tag: &str) -> Rng {
    let mut seed = SEED;
    for b in tag.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    Rng::seed(seed)
}

/// Dense matrix with entries in [0, 1), row-major, `rows × cols`.
pub fn matrix(tag: &str, rows: usize, cols: usize) -> Vec<f32> {
    let mut r = rng(tag);
    (0..rows * cols).map(|_| r.f32()).collect()
}

/// Vector with entries in [0, 1).
pub fn vector(tag: &str, n: usize) -> Vec<f32> {
    let mut r = rng(tag);
    (0..n).map(|_| r.f32()).collect()
}

/// Vector of small positive integers in [0, k).
pub fn int_vector(tag: &str, n: usize, k: i32) -> Vec<i32> {
    let mut r = rng(tag);
    (0..n).map(|_| r.range_i32(0, k)).collect()
}

/// A CSR graph with `nodes` nodes and roughly `avg_degree` out-edges per
/// node (for BFS). Returns `(row_starts, edges)` with
/// `row_starts.len() == nodes + 1`.
pub fn csr_graph(tag: &str, nodes: usize, avg_degree: usize) -> (Vec<i32>, Vec<i32>) {
    let mut r = rng(tag);
    let mut starts = Vec::with_capacity(nodes + 1);
    let mut edges = Vec::new();
    starts.push(0);
    for v in 0..nodes {
        let deg = r.range_usize(0, avg_degree * 2 + 1);
        for _ in 0..deg {
            // Mix local and far edges so BFS reaches most of the graph
            // while neighbour lists stay irregular.
            let target = if r.bool(0.5) {
                ((v + r.range_usize(1, 17)) % nodes) as i32
            } else {
                r.range_i32(0, nodes as i32)
            };
            edges.push(target);
        }
        starts.push(edges.len() as i32);
    }
    (starts, edges)
}

/// An unstructured-mesh neighbour table for the CFD solver: `cells × k`
/// neighbour indices, irregular.
pub fn mesh_neighbors(tag: &str, cells: usize, k: usize) -> Vec<i32> {
    let mut r = rng(tag);
    (0..cells * k)
        .map(|i| {
            let cell = i / k;
            if r.bool(0.7) {
                // Mostly near neighbours (mesh locality)...
                ((cell + r.range_usize(1, 9)) % cells) as i32
            } else {
                // ...with far jumps from mesh irregularity.
                r.range_i32(0, cells as i32)
            }
        })
        .collect()
}

/// Relative L∞ error check between device output and host reference.
pub fn assert_close(device: &[f32], host: &[f32], tol: f32, what: &str) {
    assert_eq!(device.len(), host.len(), "{what}: length mismatch");
    for (i, (d, h)) in device.iter().zip(host).enumerate() {
        let scale = h.abs().max(1.0);
        assert!(
            (d - h).abs() <= tol * scale,
            "{what}[{i}]: device {d} vs host {h} (tol {tol})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(matrix("a", 4, 4), matrix("a", 4, 4));
        assert_ne!(matrix("a", 4, 4), matrix("b", 4, 4));
        assert_eq!(csr_graph("g", 100, 4), csr_graph("g", 100, 4));
    }

    #[test]
    fn csr_graph_is_well_formed() {
        let (starts, edges) = csr_graph("g", 1000, 4);
        assert_eq!(starts.len(), 1001);
        assert_eq!(*starts.last().unwrap() as usize, edges.len());
        for w in starts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(edges.iter().all(|&e| (0..1000).contains(&e)));
        // Roughly avg_degree edges per node.
        let avg = edges.len() as f64 / 1000.0;
        assert!((2.0..=6.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn mesh_neighbors_in_range() {
        let nb = mesh_neighbors("m", 500, 4);
        assert_eq!(nb.len(), 2000);
        assert!(nb.iter().all(|&e| (0..500).contains(&e)));
    }

    #[test]
    #[should_panic(expected = "device")]
    fn assert_close_catches_mismatch() {
        assert_close(&[1.0], &[2.0], 1e-3, "x");
    }
}
