//! # catt-workloads — the paper's benchmark suite
//!
//! Ports of the Polybench/GPU and Rodinia applications of paper Table 2 to
//! the CUDA-C subset, at simulator scale. Each workload bundles:
//!
//! * CUDA kernel source (parsed by `catt-frontend` at run time, exactly as
//!   the paper's Antlr-based tool consumed C source);
//! * the launch configurations the host uses;
//! * a deterministic input generator ([`data`]);
//! * a host-side *runner* that orchestrates the kernel launches on the
//!   simulator (multi-kernel apps launch several kernels back to back;
//!   BFS iterates until the frontier drains) and validates device results
//!   against a host reference implementation.
//!
//! The runner takes the kernels as a parameter so the same host logic
//! executes the baseline, CATT-transformed, and BFTT-transformed variants
//! — transformation must be invisible to the application.
//!
//! Scale note (see DESIGN.md "Substitutions"): problem sizes are reduced
//! from the paper's (e.g. ATAX 40960² → 512²) because the evaluation
//! substrate is a simulator. The cache-contention structure is preserved:
//! what matters is the *footprint of concurrently active warps relative to
//! the L1D*, which is size-independent (Eq. 8 does not contain the trip
//! count), and trip counts stay ≫ warp count so steady-state behaviour
//! dominates.

pub mod ci;
pub mod cs;
pub mod data;
pub mod harness;
pub mod micro;
pub mod registry;

pub use catt_core::engine::{self, CacheCounters, Engine, JobError};
pub use harness::{run_baseline, run_bftt, run_cached, run_catt, EvalError, RunOutcome};
pub use registry::{all_workloads, ci_workloads, cs_workloads, Group, Workload};
