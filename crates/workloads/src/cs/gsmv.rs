//! GSMV — scalar, vector and matrix multiplication (Polybench/GPU
//! `gesummv`): `y = α·A·x + β·B·x` in one kernel. *Two* row-walking
//! matrices double the divergent footprint, and the contention level is
//! uniform over the whole run — the case where CATT and BFTT tie (§5.1).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows (one thread each; paper Table 3 runs GSMV at 2 blocks per SM).
pub const N: usize = 512;
/// Columns / trip count.
pub const NY: usize = 96;
/// α and β of gesummv.
pub const ALPHA: f32 = 1.5;
/// See [`ALPHA`].
pub const BETA: f32 = 0.75;

const SRC: &str = "
#define N 512
#define NY 96
__global__ void gesummv_kernel(float *A, float *B, float *x, float *y, float alpha, float beta) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < N) {
        float ta = 0.0f;
        float tb = 0.0f;
        for (int j = 0; j < NY; j++) {
            ta += A[i * NY + j] * x[j];
            tb += B[i * NY + j] * x[j];
        }
        y[i] = alpha * ta + beta * tb;
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] =
    &[("gesummv_kernel", LaunchConfig::d1((N / 256) as u32, 256))];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("gsmv:A", N, NY);
    let b = data::matrix("gsmv:B", N, NY);
    let x = data::vector("gsmv:x", NY);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bb = mem.alloc_f32(&b);
    let bx = mem.alloc_f32(&x);
    let by = mem.alloc_zeroed(N as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![
            Arg::Buf(ba),
            Arg::Buf(bb),
            Arg::Buf(bx),
            Arg::Buf(by),
            Arg::F32(ALPHA),
            Arg::F32(BETA),
        ]],
        config,
        &mut mem,
    );
    if validate {
        let mut y = vec![0.0f32; N];
        for i in 0..N {
            let (mut ta, mut tb) = (0.0f32, 0.0f32);
            for j in 0..NY {
                ta += a[i * NY + j] * x[j];
                tb += b[i * NY + j] * x[j];
            }
            y[i] = ALPHA * ta + BETA * tb;
        }
        data::assert_close(&mem.read_f32(by), &y, 2e-3, "GSMV y");
    }
    stats
}

/// The GSMV workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "GSMV",
        name: "Scalar, vector and matrix multiplication",
        suite: "Polybench",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "512x96 (x2 matrices)",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn table3_row_gsmv() {
        let w = workload();
        // Max L1D: baseline (8, 2) → CATT (4, 2); 32 KB: (1, 2).
        let (_, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        let k = &app.kernels[0].analysis;
        assert_eq!(k.baseline_tlp(), (8, 2));
        assert_eq!(k.loops[0].tlp(k.warps_per_tb, k.plan.resident_tbs), (4, 2));
        let (_, app) =
            harness::run_catt(&w, &harness::eval_config_32kb_l1d()).expect("policy run succeeds");
        let k = &app.kernels[0].analysis;
        assert_eq!(k.loops[0].tlp(k.warps_per_tb, k.plan.resident_tbs), (1, 2));
    }
}
