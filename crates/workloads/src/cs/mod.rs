//! Cache-sensitive applications (paper Table 2, CS group).

pub mod atax;
pub mod bfs;
pub mod bicg;
pub mod cfd;
pub mod corr;
pub mod dm;
pub mod gsmv;
pub mod km;
pub mod mvt;
pub mod pf;
pub mod syr2k;
