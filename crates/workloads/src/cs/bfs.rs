//! BFS — breadth-first search (Rodinia), the paper's canonical
//! *irregular* workload: neighbour indices come from memory, so `C_tid`
//! is not a compile-time constant and CATT conservatively sets it to 1
//! (§4.2), preserving the original TLP.
//!
//! Standard two-kernel frontier formulation: kernel 1 expands the current
//! frontier over a CSR graph; kernel 2 commits the next frontier and
//! raises a continuation flag the host polls.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Nodes in the synthetic graph (`graph128k.txt` stand-in at sim scale).
pub const NODES: usize = 16384;
/// Average out-degree.
pub const DEGREE: usize = 4;
/// Source node.
pub const SOURCE: usize = 0;

const SRC: &str = "
#define NODES 16384
__global__ void bfs_kernel1(int *starts, int *edges, int *mask, int *visited, int *updating, int *cost) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NODES) {
        if (mask[i] == 1) {
            mask[i] = 0;
            for (int j = starts[i]; j < starts[i + 1]; j++) {
                int nb = edges[j];
                if (visited[nb] == 0) {
                    cost[nb] = cost[i] + 1;
                    updating[nb] = 1;
                }
            }
        }
    }
}
__global__ void bfs_kernel2(int *mask, int *visited, int *updating, int *flag) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NODES) {
        if (updating[i] == 1) {
            updating[i] = 0;
            mask[i] = 1;
            visited[i] = 1;
            flag[0] = 1;
        }
    }
}
";

const GRID: u32 = (NODES / 256) as u32;
const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("bfs_kernel1", LaunchConfig::d1(GRID, 256)),
    ("bfs_kernel2", LaunchConfig::d1(GRID, 256)),
];

fn host_bfs(starts: &[i32], edges: &[i32]) -> Vec<i32> {
    let mut cost = vec![-1i32; NODES];
    cost[SOURCE] = 0;
    let mut frontier = vec![SOURCE];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &edge in &edges[starts[v] as usize..starts[v + 1] as usize] {
                let nb = edge as usize;
                if cost[nb] == -1 {
                    cost[nb] = cost[v] + 1;
                    next.push(nb);
                }
            }
        }
        frontier = next;
    }
    cost
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let (starts, edges) = data::csr_graph("bfs", NODES, DEGREE);
    let mut mem = GlobalMem::new();
    let bstarts = mem.alloc_i32(&starts);
    let bedges = mem.alloc_i32(&edges);
    let mut mask = vec![0i32; NODES];
    mask[SOURCE] = 1;
    let bmask = mem.alloc_i32(&mask);
    let mut visited = vec![0i32; NODES];
    visited[SOURCE] = 1;
    let bvisited = mem.alloc_i32(&visited);
    let bupdating = mem.alloc_i32(&vec![0i32; NODES]);
    let mut cost = vec![-1i32; NODES];
    cost[SOURCE] = 0;
    let bcost = mem.alloc_i32(&cost);
    let bflag = mem.alloc_i32(&[0]);

    let mut total = LaunchStats::default();
    // Host loop: launch the kernel pair until kernel 2 stops raising the
    // flag (Rodinia's `stop` protocol). Bounded to the worst diameter.
    for _level in 0..NODES {
        mem.write_i32(bflag, &[0])
            .expect("flag buffer fits one word");
        let stats = exec_sequence(
            kernels,
            &[LAUNCHES[0].1, LAUNCHES[1].1],
            &[
                vec![
                    Arg::Buf(bstarts),
                    Arg::Buf(bedges),
                    Arg::Buf(bmask),
                    Arg::Buf(bvisited),
                    Arg::Buf(bupdating),
                    Arg::Buf(bcost),
                ],
                vec![
                    Arg::Buf(bmask),
                    Arg::Buf(bvisited),
                    Arg::Buf(bupdating),
                    Arg::Buf(bflag),
                ],
            ],
            config,
            &mut mem,
        );
        total.accumulate(&stats);
        total.resident_tbs_per_sm = stats.resident_tbs_per_sm;
        if mem.read_i32(bflag)[0] == 0 {
            break;
        }
    }
    if validate {
        let host = host_bfs(&starts, &edges);
        let device = mem.read_i32(bcost);
        // Reachability and distances must agree exactly.
        assert_eq!(device, host, "BFS cost mismatch");
    }
    total
}

/// The BFS workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "BFS",
        name: "Breadth-first search",
        suite: "Rodinia",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "16K-node CSR graph, avg degree 4",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn irregular_bfs_is_left_at_full_tlp() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        for (i, k) in app.kernels.iter().enumerate() {
            assert!(
                !k.is_transformed(),
                "kernel {i}: irregular accesses must be handled conservatively"
            );
        }
        // The expand kernel's neighbour accesses are irregular.
        let k1 = &app.kernels[0].analysis;
        let l = &k1.loops[0];
        assert!(
            l.accesses
                .iter()
                .any(|a| a.array == "visited" && a.c_tid.is_none()),
            "visited[nb] must be classified irregular"
        );
    }
}
