//! MVT — matrix-vector product and transpose, `x1 += A·y1`,
//! `x2 += Aᵀ·y2` (Polybench/GPU). Kernel 1 is row-walking (divergent),
//! kernel 2 column-walking (coalesced), matching Table 3's pattern.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows of A.
pub const NX: usize = 1280;
/// Columns of A.
pub const NY: usize = 1024;

const SRC: &str = "
#define NX 1280
#define NY 1024
__global__ void mvt_kernel1(float *A, float *y1, float *x1) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {
        for (int j = 0; j < NY; j++) {
            x1[i] += A[i * NY + j] * y1[j];
        }
    }
}
__global__ void mvt_kernel2(float *A, float *y2, float *x2) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < NY) {
        for (int i = 0; i < NX; i++) {
            x2[j] += A[i * NY + j] * y2[i];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("mvt_kernel1", LaunchConfig::d1((NX / 256) as u32, 256)),
    ("mvt_kernel2", LaunchConfig::d1((NY / 256) as u32, 256)),
];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("mvt:A", NX, NY);
    let y1 = data::vector("mvt:y1", NY);
    let y2 = data::vector("mvt:y2", NX);
    let x1_init = data::vector("mvt:x1", NX);
    let x2_init = data::vector("mvt:x2", NY);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let by1 = mem.alloc_f32(&y1);
    let by2 = mem.alloc_f32(&y2);
    let bx1 = mem.alloc_f32(&x1_init);
    let bx2 = mem.alloc_f32(&x2_init);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1],
        &[
            vec![Arg::Buf(ba), Arg::Buf(by1), Arg::Buf(bx1)],
            vec![Arg::Buf(ba), Arg::Buf(by2), Arg::Buf(bx2)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let mut x1 = x1_init.clone();
        for i in 0..NX {
            for j in 0..NY {
                x1[i] += a[i * NY + j] * y1[j];
            }
        }
        let mut x2 = x2_init.clone();
        for j in 0..NY {
            for i in 0..NX {
                x2[j] += a[i * NY + j] * y2[i];
            }
        }
        data::assert_close(&mem.read_f32(bx1), &x1, 2e-3, "MVT x1");
        data::assert_close(&mem.read_f32(bx2), &x2, 5e-2, "MVT x2");
    }
    stats
}

/// The MVT workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "MVT",
        name: "Matrix-vector product and transpose",
        suite: "Polybench",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "1280x1024",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn catt_throttles_only_the_divergent_kernel() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        assert!(app.kernels[0].is_transformed());
        assert!(!app.kernels[1].is_transformed());
    }
}
