//! DM — pairwise dot-product (distance) matrix, `out = A·Aᵀ` over row
//! vectors (extension workload; not part of the paper's Table 2).
//!
//! Block `(bx, by)` computes the 16×16 output tile at `(16·bx, 16·by)`:
//! thread `t` owns `row = 16·by + t/16`, `col = 16·bx + t%16` and walks
//! both A rows in lockstep. The 2-D grid makes the *block schedule* the
//! performance knob: in linear launch order an entire grid row keeps its
//! 16 A-rows hot but re-streams all of A for the column sides, so the L2
//! share re-reads the matrix once per grid row; a tile-major CTA swizzle
//! walks a narrow column band top to bottom, shrinking the live set to
//! one band of column rows that fits the share. Thread-level throttling
//! cannot fix this — the traffic is inter-block, not intra-block — which
//! is what makes DM the registry's swizzle-sensitive specimen (DESIGN.md
//! §3h).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows of A (= side of the output matrix). 192 rows × 512 columns of
/// f32 = 384 KB: larger than the evaluation L2 share (256 KB), so the
/// linear schedule cannot keep the column side resident.
pub const R: usize = 192;
/// Columns of A (dot-product length).
pub const K: usize = 512;
/// Output tile side per block (16×16 tile = 256 threads).
pub const TILE: usize = 16;

const SRC: &str = "
#define R 192
#define K 512
__global__ void dm_pairs(float *A, float *At, float *out) {
    int row = blockIdx.y * 16 + threadIdx.x / 16;
    int col = blockIdx.x * 16 + threadIdx.x % 16;
    float acc = 0.0f;
    for (int j = 0; j < K; j++) {
        acc += A[row * K + j] * At[j * R + col];
    }
    out[row * R + col] = acc;
}
";

const GRID: u32 = (R / TILE) as u32;

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "dm_pairs",
    LaunchConfig {
        grid: Dim3 {
            x: GRID,
            y: GRID,
            z: 1,
        },
        block: Dim3 {
            x: (TILE * TILE) as u32,
            y: 1,
            z: 1,
        },
    },
)];

fn host_reference(a: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; R * R];
    for row in 0..R {
        for col in 0..R {
            let mut acc = 0.0f32;
            for j in 0..K {
                acc += a[row * K + j] * a[col * K + j];
            }
            out[row * R + col] = acc;
        }
    }
    out
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("dm:A", R, K);
    // The host passes Aᵀ alongside A so the column-side loads coalesce
    // (`At[j*R + col]` is contiguous across the half-warp).
    let mut at = vec![0.0f32; K * R];
    for r in 0..R {
        for j in 0..K {
            at[j * R + r] = a[r * K + j];
        }
    }
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bat = mem.alloc_f32(&at);
    let bout = mem.alloc_zeroed((R * R) as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(ba), Arg::Buf(bat), Arg::Buf(bout)]],
        config,
        &mut mem,
    );
    if validate {
        let want = host_reference(&a);
        data::assert_close(&mem.read_f32(bout), &want, 5e-2, "DM out");
    }
    stats
}

/// The DM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "DM",
        name: "Pairwise dot-product distance matrix",
        suite: "Extension",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "192x512, 12x12 grid",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use catt_core::{cta_swizzle, SwizzlePolicy};

    #[test]
    fn baseline_validates() {
        let w = workload();
        let out = harness::run_baseline(&w, &harness::eval_config_max_l1d())
            .expect("policy run succeeds");
        assert!(out.cycles() > 0);
    }

    /// The workload's raison d'être: a tile-major CTA swizzle raises the
    /// measured L2 hit rate and beats the linear schedule outright, on
    /// the same kernel, same inputs, same throttling (none).
    #[test]
    fn tile_swizzle_beats_linear_order_via_l2() {
        let w = workload();
        let cfg = harness::eval_config_max_l1d();
        let base = harness::run_baseline(&w, &cfg).expect("baseline runs");
        let grid = (GRID, GRID, 1);
        let sw = cta_swizzle(&w.kernels()[0], SwizzlePolicy::TileMajor(4), grid)
            .expect("4 divides the 12-wide grid");
        let out = harness::run_cached(&w, &[sw], &cfg, true).expect("swizzled run validates");
        assert!(
            out.stats.l2_hit_rate() > base.stats.l2_hit_rate() + 0.05,
            "tile-major must raise the L2 hit rate: {:.3} vs {:.3}",
            out.stats.l2_hit_rate(),
            base.stats.l2_hit_rate()
        );
        assert!(
            out.cycles() < base.cycles(),
            "tile-major must beat the linear schedule: {} vs {}",
            out.cycles(),
            base.cycles()
        );
    }
}
