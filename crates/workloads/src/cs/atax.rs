//! ATAX — matrix transpose and vector multiplication, `y = Aᵀ(A·x)`
//! (Polybench/GPU). The paper's running example (Fig. 1/4/5).
//!
//! Kernel 1 walks rows (`A[i*NY+j]`, inter-thread distance `NY` — fully
//! memory-divergent, the contended phase); kernel 2 walks columns
//! (`A[i*NY+j]` with `j = tid` — coalesced). The two contrasting phases
//! are why CATT beats one-setting-per-app BFTT here (§5.1).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows of A (= threads of kernel 1).
pub const NX: usize = 1280;
/// Columns of A (= trip count of kernel 1, threads of kernel 2).
pub const NY: usize = 1024;

const SRC: &str = "
#define NX 1280
#define NY 1024
__global__ void atax_kernel1(float *A, float *x, float *tmp) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {
        for (int j = 0; j < NY; j++) {
            tmp[i] += A[i * NY + j] * x[j];
        }
    }
}
__global__ void atax_kernel2(float *A, float *tmp, float *y) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < NY) {
        for (int i = 0; i < NX; i++) {
            y[j] += A[i * NY + j] * tmp[i];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("atax_kernel1", LaunchConfig::d1((NX / 256) as u32, 256)),
    ("atax_kernel2", LaunchConfig::d1((NY / 256) as u32, 256)),
];

fn host_reference(a: &[f32], x: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let mut tmp = vec![0.0f32; NX];
    for i in 0..NX {
        for j in 0..NY {
            tmp[i] += a[i * NY + j] * x[j];
        }
    }
    let mut y = vec![0.0f32; NY];
    for j in 0..NY {
        for i in 0..NX {
            y[j] += a[i * NY + j] * tmp[i];
        }
    }
    (tmp, y)
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("atax:A", NX, NY);
    let x = data::vector("atax:x", NY);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bx = mem.alloc_f32(&x);
    let btmp = mem.alloc_zeroed(NX as u32);
    let by = mem.alloc_zeroed(NY as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1],
        &[
            vec![Arg::Buf(ba), Arg::Buf(bx), Arg::Buf(btmp)],
            vec![Arg::Buf(ba), Arg::Buf(btmp), Arg::Buf(by)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let (tmp, y) = host_reference(&a, &x);
        data::assert_close(&mem.read_f32(btmp), &tmp, 2e-3, "ATAX tmp");
        data::assert_close(&mem.read_f32(by), &y, 5e-2, "ATAX y");
    }
    stats
}

/// The ATAX workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "ATAX",
        name: "Matrix transpose and vector multiplication",
        suite: "Polybench",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "1280x1024",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn baseline_validates() {
        let w = workload();
        let out = harness::run_baseline(&w, &harness::eval_config_max_l1d())
            .expect("policy run succeeds");
        assert!(out.cycles() > 0);
    }

    #[test]
    fn catt_throttles_kernel1_only_and_validates() {
        let w = workload();
        let cfg = harness::eval_config_max_l1d();
        let (out, app) = harness::run_catt(&w, &cfg).expect("policy run succeeds");
        assert!(app.kernels[0].is_transformed(), "kernel 1 is contended");
        assert!(!app.kernels[1].is_transformed(), "kernel 2 is coalesced");
        assert!(out.cycles() > 0);
        // Table 3 shape (Max. L1D): CATT halves the warps of kernel 1's
        // loop (the paper's (8,4) -> (4,4) at its scale; (8,5) -> (4,5)
        // at ours).
        let k1 = &app.kernels[0].analysis;
        assert_eq!(k1.baseline_tlp(), (8, 5));
        assert_eq!(
            k1.loops[0].tlp(k1.warps_per_tb, k1.plan.resident_tbs),
            (4, 5)
        );
    }

    #[test]
    fn catt_32kb_picks_one_warp() {
        // Table 3 shape (32 KB L1D): kernel 1 throttled to one warp.
        let w = workload();
        let cfg = harness::eval_config_32kb_l1d();
        let (_, app) = harness::run_catt(&w, &cfg).expect("policy run succeeds");
        let k1 = &app.kernels[0].analysis;
        assert_eq!(
            k1.loops[0].tlp(k1.warps_per_tb, k1.plan.resident_tbs),
            (1, 5)
        );
    }
}
