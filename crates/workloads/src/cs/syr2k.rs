//! SYR2K — symmetric rank-2k update `C += α·A·Bᵀ + α·B·Aᵀ`
//! (Polybench/GPU). Uses **two-dimensional thread blocks** — the case the
//! paper calls out in §4.2 where the per-warp addresses must be examined
//! along the x-dimension of the block (warps form along x first).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// C is N×N.
pub const N: usize = 128;
/// Inner dimension.
pub const K: usize = 32;
/// Scaling factor.
pub const ALPHA: f32 = 0.5;

const SRC: &str = "
#define N 128
#define K 32
__global__ void syr2k_kernel(float *A, float *B, float *C, float alpha) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        for (int k = 0; k < K; k++) {
            C[i * N + j] += alpha * A[i * K + k] * B[j * K + k]
                          + alpha * B[i * K + k] * A[j * K + k];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "syr2k_kernel",
    LaunchConfig {
        grid: Dim3::xy((N / 16) as u32, (N / 16) as u32),
        block: Dim3::xy(16, 16),
    },
)];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("syr2k:A", N, K);
    let b = data::matrix("syr2k:B", N, K);
    let c0 = data::matrix("syr2k:C", N, N);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bb = mem.alloc_f32(&b);
    let bc = mem.alloc_f32(&c0);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![
            Arg::Buf(ba),
            Arg::Buf(bb),
            Arg::Buf(bc),
            Arg::F32(ALPHA),
        ]],
        config,
        &mut mem,
    );
    if validate {
        let mut c = c0.clone();
        for i in 0..N {
            for j in 0..N {
                for k in 0..K {
                    c[i * N + j] +=
                        ALPHA * a[i * K + k] * b[j * K + k] + ALPHA * b[i * K + k] * a[j * K + k];
                }
            }
        }
        data::assert_close(&mem.read_f32(bc), &c, 2e-3, "SYR2K C");
    }
    stats
}

/// The SYR2K workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "SYR2K",
        name: "Symmetric rank-2k operations",
        suite: "Polybench",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "128x128, k=32",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn multidimensional_block_analysis_finds_divergence() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        let k = &app.kernels[0].analysis;
        // B[j*K+k] with j along x: inter-thread distance K.
        let l = &k.loops[0];
        let b = l
            .accesses
            .iter()
            .find(|a| a.array == "B" && a.c_tid == Some(K as i64))
            .expect("divergent B access");
        // Per-lane enumeration (paper §4.2): 16 x-lanes spaced K·4 = 128 B
        // apart span 16 lines (Eq. 7 alone would claim 32).
        assert_eq!(b.req_warp, 16);
        // A[i*K+k] with i along y: uniform along x, two lines from the
        // two y-rows a warp spans.
        assert!(l
            .accesses
            .iter()
            .any(|a| a.array == "A" && a.c_tid == Some(0) && a.req_warp == 2));
        assert!(l.contended);
        assert!(app.kernels[0].is_transformed());
    }
}
