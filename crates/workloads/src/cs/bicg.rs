//! BICG — the BiCGStab kernel pair `s = Aᵀ·r`, `q = A·p` (Polybench/GPU).
//!
//! Kernel 1 (s) is coalesced; kernel 2 (q) walks rows and is memory-
//! divergent — the order Table 3 reports (BICG #1 unthrottled, #2
//! throttled).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows of A.
pub const NX: usize = 1280;
/// Columns of A.
pub const NY: usize = 1024;

const SRC: &str = "
#define NX 1280
#define NY 1024
__global__ void bicg_kernel1(float *A, float *r, float *s) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < NY) {
        for (int i = 0; i < NX; i++) {
            s[j] += r[i] * A[i * NY + j];
        }
    }
}
__global__ void bicg_kernel2(float *A, float *p, float *q) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NX) {
        for (int j = 0; j < NY; j++) {
            q[i] += A[i * NY + j] * p[j];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("bicg_kernel1", LaunchConfig::d1((NY / 256) as u32, 256)),
    ("bicg_kernel2", LaunchConfig::d1((NX / 256) as u32, 256)),
];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("bicg:A", NX, NY);
    let r = data::vector("bicg:r", NX);
    let p = data::vector("bicg:p", NY);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let br = mem.alloc_f32(&r);
    let bp = mem.alloc_f32(&p);
    let bs = mem.alloc_zeroed(NY as u32);
    let bq = mem.alloc_zeroed(NX as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1],
        &[
            vec![Arg::Buf(ba), Arg::Buf(br), Arg::Buf(bs)],
            vec![Arg::Buf(ba), Arg::Buf(bp), Arg::Buf(bq)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let mut s = vec![0.0f32; NY];
        for j in 0..NY {
            for i in 0..NX {
                s[j] += r[i] * a[i * NY + j];
            }
        }
        let mut q = vec![0.0f32; NX];
        for i in 0..NX {
            for j in 0..NY {
                q[i] += a[i * NY + j] * p[j];
            }
        }
        data::assert_close(&mem.read_f32(bs), &s, 5e-2, "BICG s");
        data::assert_close(&mem.read_f32(bq), &q, 2e-3, "BICG q");
    }
    stats
}

/// The BICG workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "BICG",
        name: "BiCGStab sub-kernels",
        suite: "Polybench",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "1280x1024",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn catt_table3_decisions() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        assert!(!app.kernels[0].is_transformed(), "BICG#1 is coalesced");
        assert!(app.kernels[1].is_transformed(), "BICG#2 is divergent");
        let k2 = &app.kernels[1].analysis;
        assert_eq!(
            k2.loops[0].tlp(k2.warps_per_tb, k2.plan.resident_tbs),
            (4, 5),
            "Table 3 max-L1D shape (halved warps)"
        );
    }
}
