//! PF — particle filter (Rodinia). Four kernels; kernel 1 carries three
//! loops with *different* contention levels (Table 3: loops 1–2 divergent
//! and throttled, loop 3 coalesced and untouched) — together with ATAX
//! the showcase for CATT's per-loop decisions. Uses 4 KB of shared memory
//! per block (Table 2), so the carve-out planner must leave room for it.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Particles.
pub const NP: usize = 4096;
/// Samples (likelihood points) per particle.
pub const S: usize = 16;
/// Threads per block (Rodinia uses 512).
pub const BLOCK: usize = 512;

const SRC: &str = "
#define NP 4096
#define S 16
__global__ void pf_likelihood(float *arrayX, float *arrayY, float *ind, float *likelihood, float *weights) {
    __shared__ float buf[1024];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NP) {
        for (int s = 0; s < S; s++) {
            ind[i * S + s] = arrayX[i] * 0.5f + arrayY[i] * 0.25f + (float)s;
        }
        for (int s = 0; s < S; s++) {
            float v = ind[i * S + s];
            likelihood[s * NP + i] = v * v / 2.0f - fabsf(v);
        }
        float acc = 0.0f;
        for (int s = 0; s < S; s++) {
            acc += likelihood[s * NP + i];
        }
        weights[i] = weights[i] * expf(acc / (float)S - 4.0f);
    }
    buf[threadIdx.x] = weights[i % NP];
    __syncthreads();
    if (threadIdx.x == 0) {
        weights[i] = weights[i] + buf[0] * 0.0f;
    }
}
__global__ void pf_sum(float *weights, float *partial) {
    __shared__ float buf[1024];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    buf[threadIdx.x] = weights[i % NP];
    __syncthreads();
    if (threadIdx.x == 0) {
        float acc = 0.0f;
        for (int t = 0; t < 512; t++) {
            acc += buf[t];
        }
        partial[blockIdx.x] = acc;
    }
}
__global__ void pf_normalize(float *weights, float *partial, int nblocks) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    float total = 0.0f;
    for (int b = 0; b < nblocks; b++) {
        total += partial[b];
    }
    if (i < NP) {
        weights[i] = weights[i] / total;
    }
}
__global__ void pf_find_index(float *cdf, float *u, float *xj) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < NP) {
        int idx = NP - 1;
        for (int j = 0; j < NP; j++) {
            if (cdf[j] >= u[i]) {
                idx = j;
                break;
            }
        }
        xj[i] = (float)idx;
    }
}
";

const GRID: u32 = (NP / BLOCK) as u32;
const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("pf_likelihood", LaunchConfig::d1(GRID, BLOCK as u32)),
    ("pf_sum", LaunchConfig::d1(GRID, BLOCK as u32)),
    ("pf_normalize", LaunchConfig::d1(GRID, BLOCK as u32)),
    ("pf_find_index", LaunchConfig::d1(GRID, BLOCK as u32)),
];

struct HostRef {
    weights: Vec<f32>,
    xj: Vec<f32>,
}

fn host_reference(ax: &[f32], ay: &[f32], w0: &[f32], cdf: &[f32], u: &[f32]) -> HostRef {
    let mut weights = w0.to_vec();
    // Kernel 1.
    let mut likelihood = vec![0.0f32; NP * S];
    for i in 0..NP {
        let mut acc = 0.0f32;
        for s in 0..S {
            let v = ax[i] * 0.5 + ay[i] * 0.25 + s as f32;
            likelihood[s * NP + i] = v * v / 2.0 - v.abs();
            acc += likelihood[s * NP + i];
        }
        weights[i] *= (acc / S as f32 - 4.0).exp();
    }
    // buf[0]*0.0 contributes nothing; weights unchanged by the epilogue.
    // Kernel 2 + 3.
    let nblocks = GRID as usize;
    let mut partial = vec![0.0f32; nblocks];
    for b in 0..nblocks {
        for t in 0..BLOCK {
            partial[b] += weights[(b * BLOCK + t) % NP];
        }
    }
    let total: f32 = partial.iter().sum();
    for w in &mut weights {
        *w /= total;
    }
    // Kernel 4.
    let mut xj = vec![0.0f32; NP];
    for i in 0..NP {
        let mut idx = NP - 1;
        for (j, c) in cdf.iter().enumerate() {
            if *c >= u[i] {
                idx = j;
                break;
            }
        }
        xj[i] = idx as f32;
    }
    HostRef { weights, xj }
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let ax = data::vector("pf:x", NP);
    let ay = data::vector("pf:y", NP);
    let w0: Vec<f32> = vec![1.0; NP];
    let mut cdf = data::vector("pf:cdf", NP);
    // A CDF must be nondecreasing.
    for i in 1..NP {
        cdf[i] += cdf[i - 1];
    }
    let maxc = *cdf.last().unwrap();
    for c in &mut cdf {
        *c /= maxc;
    }
    let u = data::vector("pf:u", NP);
    let mut mem = GlobalMem::new();
    let bax = mem.alloc_f32(&ax);
    let bay = mem.alloc_f32(&ay);
    let bind = mem.alloc_zeroed((NP * S) as u32);
    let blik = mem.alloc_zeroed((NP * S) as u32);
    let bw = mem.alloc_f32(&w0);
    let bpartial = mem.alloc_zeroed(GRID);
    let bcdf = mem.alloc_f32(&cdf);
    let bu = mem.alloc_f32(&u);
    let bxj = mem.alloc_zeroed(NP as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1, LAUNCHES[2].1, LAUNCHES[3].1],
        &[
            vec![
                Arg::Buf(bax),
                Arg::Buf(bay),
                Arg::Buf(bind),
                Arg::Buf(blik),
                Arg::Buf(bw),
            ],
            vec![Arg::Buf(bw), Arg::Buf(bpartial)],
            vec![Arg::Buf(bw), Arg::Buf(bpartial), Arg::I32(GRID as i32)],
            vec![Arg::Buf(bcdf), Arg::Buf(bu), Arg::Buf(bxj)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let h = host_reference(&ax, &ay, &w0, &cdf, &u);
        data::assert_close(&mem.read_f32(bw), &h.weights, 5e-3, "PF weights");
        data::assert_close(&mem.read_f32(bxj), &h.xj, 0.0, "PF xj");
    }
    stats
}

/// The PF workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "PF",
        name: "Particle filter",
        suite: "Rodinia",
        group: Group::Cs,
        smem_kb: 4.0,
        input: "4096 particles x 16 samples",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn per_loop_decisions_inside_kernel1() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        let k1 = &app.kernels[0].analysis;
        // 4 KB shared memory → carve-out planned, L1D below 128 KB.
        assert!(k1.plan.smem_carveout_bytes >= 4 * 1024);
        // Loops 1 and 2 are divergent (ind/likelihood strided by S)...
        assert!(k1.loops[0].contended, "loop 1 divergent");
        assert!(k1.loops[1].contended, "loop 2 divergent");
        // ...while loop 3's transposed likelihood read is coalesced and
        // stays at full TLP — the per-loop independence Table 3 shows for
        // PF#1.
        assert!(!k1.loops[2].decision.is_throttled(), "loop 3 coalesced");
        let k4 = &app.kernels[3].analysis;
        assert!(
            k4.loops.iter().all(|l| !l.decision.is_throttled()),
            "uniform CDF scan must stay at full TLP"
        );
    }
}
