//! CORR — correlation computation (Polybench/GPU).
//!
//! Four kernels (column means, column standard deviations, data
//! centering, and the correlation matrix proper), mirroring the paper's
//! Table 3 rows CORR#1–#4. The correlation kernel processes a 17-column
//! strip per iteration (a strip-mined port of the upper-triangular
//! update); its per-warp footprint alone exceeds even the 128 KB L1D, so
//! Eq. 9 has **no resolving factor** — the case the paper describes where
//! "kernels and loops need to be split into smaller pieces, which
//! requires algorithm changes", and CATT deliberately leaves the kernel
//! untouched (§5.1).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Columns (variables) of the data matrix — one thread per column.
pub const M: usize = 256;
/// Rows (observations).
pub const N: usize = 128;
/// Strip width of the correlation kernel.
pub const STRIP: usize = 17;

/// Build the strip-mined correlation kernel body (17 updates per
/// iteration — kept as straight-line code exactly because that is what
/// overflows the footprint).
fn corr_kernel_src() -> String {
    let mut body = String::new();
    for u in 0..STRIP {
        body.push_str(&format!(
            "            symmat[j1 * M + j2 + {u}] += data[(j2 + {u}) * 64 + j1] * f;\n"
        ));
    }
    format!(
        "__global__ void corr_kernel(float *data, float *symmat, float *stddev) {{
    int j1 = blockIdx.x * blockDim.x + threadIdx.x;
    if (j1 < M) {{
        float f = stddev[j1];
        for (int j2 = 0; j2 <= M - {STRIP}; j2 += {STRIP}) {{
{body}        }}
    }}
}}"
    )
}

fn full_src() -> String {
    format!(
        "
#define M 256
#define N 128
__global__ void mean_kernel(float *data_in, float *mean) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < M) {{
        for (int i = 0; i < N; i++) {{
            mean[j] += data_in[i * M + j];
        }}
        mean[j] = mean[j] / (float)N;
    }}
}}
__global__ void std_kernel(float *data_in, float *mean, float *stddev) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < M) {{
        for (int i = 0; i < N; i++) {{
            float d = data_in[i * M + j] - mean[j];
            stddev[j] += d * d;
        }}
        stddev[j] = sqrtf(stddev[j] / (float)N) + 0.1f;
    }}
}}
__global__ void center_kernel(float *data_in, float *mean, float *stddev, float *data) {{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < M) {{
        for (int i = 0; i < N; i++) {{
            data[i * M + j] = (data_in[i * M + j] - mean[j]) / stddev[j];
        }}
    }}
}}
{}
",
        corr_kernel_src()
    )
}

const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("mean_kernel", LaunchConfig::d1(1, 256)),
    ("std_kernel", LaunchConfig::d1(1, 256)),
    ("center_kernel", LaunchConfig::d1(1, 256)),
    ("corr_kernel", LaunchConfig::d1(1, 256)),
];

fn host_reference(data_in: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut mean = vec![0.0f32; M];
    for j in 0..M {
        for i in 0..N {
            mean[j] += data_in[i * M + j];
        }
        mean[j] /= N as f32;
    }
    let mut stddev = vec![0.0f32; M];
    for j in 0..M {
        for i in 0..N {
            let d = data_in[i * M + j] - mean[j];
            stddev[j] += d * d;
        }
        stddev[j] = (stddev[j] / N as f32).sqrt() + 0.1;
    }
    let mut data = vec![0.0f32; N * M];
    for i in 0..N {
        for j in 0..M {
            data[i * M + j] = (data_in[i * M + j] - mean[j]) / stddev[j];
        }
    }
    let mut symmat = vec![0.0f32; M * M];
    for j1 in 0..M {
        let f = stddev[j1];
        let mut j2 = 0;
        while j2 + STRIP <= M {
            for u in 0..STRIP {
                symmat[j1 * M + j2 + u] += data[(j2 + u) * 64 + j1] * f;
            }
            j2 += STRIP;
        }
    }
    (mean, stddev, data, symmat)
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let data_in = data::matrix("corr:data", N, M);
    let mut mem = GlobalMem::new();
    let bdin = mem.alloc_f32(&data_in);
    let bmean = mem.alloc_zeroed(M as u32);
    let bstd = mem.alloc_zeroed(M as u32);
    let bdata = mem.alloc_zeroed((N * M) as u32);
    let bsym = mem.alloc_zeroed((M * M) as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1, LAUNCHES[2].1, LAUNCHES[3].1],
        &[
            vec![Arg::Buf(bdin), Arg::Buf(bmean)],
            vec![Arg::Buf(bdin), Arg::Buf(bmean), Arg::Buf(bstd)],
            vec![
                Arg::Buf(bdin),
                Arg::Buf(bmean),
                Arg::Buf(bstd),
                Arg::Buf(bdata),
            ],
            vec![Arg::Buf(bdata), Arg::Buf(bsym), Arg::Buf(bstd)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let (mean, stddev, data, symmat) = host_reference(&data_in);
        data::assert_close(&mem.read_f32(bmean), &mean, 2e-3, "CORR mean");
        data::assert_close(&mem.read_f32(bstd), &stddev, 2e-3, "CORR stddev");
        data::assert_close(&mem.read_f32(bdata), &data, 2e-3, "CORR data");
        data::assert_close(&mem.read_f32(bsym), &symmat, 2e-2, "CORR symmat");
    }
    stats
}

/// The CORR workload descriptor. The source is built once and leaked — the
/// registry hands out `&'static str` sources, and one ~3 KB allocation per
/// process is the cost of keeping every other workload's source a true
/// string constant.
pub fn workload() -> Workload {
    use std::sync::OnceLock;
    static SRC: OnceLock<&'static str> = OnceLock::new();
    let src: &'static str = SRC.get_or_init(|| Box::leak(full_src().into_boxed_str()));
    Workload {
        abbrev: "CORR",
        name: "Correlation computation",
        suite: "Polybench",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "128x256",
        source: src,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn corr_is_unresolvable_and_left_alone() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        // Baseline TLP (8, 1) — Table 3's CORR row.
        let k4 = &app.kernels[3].analysis;
        assert_eq!(k4.baseline_tlp(), (8, 1));
        let l = &k4.loops[0];
        assert!(l.contended, "CORR has very high cache contention");
        assert!(!l.decision.resolved, "no throttling factor can fit it");
        assert!(
            !app.kernels[3].is_transformed(),
            "CATT must pass unresolvable kernels through unchanged"
        );
        // The preparatory kernels are coalesced and untouched.
        for i in 0..3 {
            assert!(!app.kernels[i].is_transformed(), "kernel {i}");
        }
    }
}
