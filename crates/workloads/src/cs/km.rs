//! KM — k-means clustering (Rodinia). Kernel 1 assigns each point to its
//! nearest cluster (row-major features: the distance loop is memory-
//! divergent); kernel 2 transposes the feature matrix (Rodinia's "swap"
//! kernel), also divergent on its input side. Contention is uniform over
//! the run, so CATT and BFTT pick equivalent settings (§5.1).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Points.
pub const P: usize = 8192;
/// Features per point.
pub const F: usize = 16;
/// Clusters.
pub const K: usize = 8;

const SRC: &str = "
#define P 8192
#define F 16
#define K 8
__global__ void kmeans_membership(float *features, float *clusters, int *membership) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < P) {
        float best = 1e30f;
        int best_c = 0;
        for (int c = 0; c < K; c++) {
            float dist = 0.0f;
            for (int f = 0; f < F; f++) {
                float d = features[i * F + f] - clusters[c * F + f];
                dist += d * d;
            }
            if (dist < best) {
                best = dist;
                best_c = c;
            }
        }
        membership[i] = best_c;
    }
}
__global__ void kmeans_swap(float *features, float *features_t) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < P) {
        for (int f = 0; f < F; f++) {
            features_t[f * P + i] = features[i * F + f];
        }
    }
}
";

const GRID: u32 = (P / 256) as u32;
const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("kmeans_membership", LaunchConfig::d1(GRID, 256)),
    ("kmeans_swap", LaunchConfig::d1(GRID, 256)),
];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let features = data::matrix("km:f", P, F);
    let clusters = data::matrix("km:c", K, F);
    let mut mem = GlobalMem::new();
    let bf = mem.alloc_f32(&features);
    let bc = mem.alloc_f32(&clusters);
    let bm = mem.alloc_i32(&vec![0i32; P]);
    let bt = mem.alloc_zeroed((P * F) as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1],
        &[
            vec![Arg::Buf(bf), Arg::Buf(bc), Arg::Buf(bm)],
            vec![Arg::Buf(bf), Arg::Buf(bt)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let device_m = mem.read_i32(bm);
        for i in 0..P {
            let mut best = f32::MAX;
            let mut best_c = 0;
            for c in 0..K {
                let dist: f32 = (0..F)
                    .map(|f| {
                        let d = features[i * F + f] - clusters[c * F + f];
                        d * d
                    })
                    .sum();
                if dist < best {
                    best = dist;
                    best_c = c as i32;
                }
            }
            assert_eq!(device_m[i], best_c, "KM membership[{i}]");
        }
        let t = mem.read_f32(bt);
        for i in 0..P {
            for f in 0..F {
                assert_eq!(t[f * P + i], features[i * F + f], "KM swap ({i},{f})");
            }
        }
    }
    stats
}

/// The KM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "KM",
        name: "K-means clustering",
        suite: "Rodinia",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "8192 points x 16 features, 8 clusters",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn both_kernels_throttled_at_32kb() {
        // Table 3, 32 KB: KM #1 (1, 8), #2 (1, 8).
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_32kb_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        for (i, ck) in app.kernels.iter().enumerate() {
            assert!(
                ck.is_transformed(),
                "kernel {i} should be throttled at 32 KB"
            );
            let a = &ck.analysis;
            assert_eq!(a.baseline_tlp(), (8, 8), "kernel {i}");
            let throttled: Vec<_> = a
                .loops
                .iter()
                .filter(|l| l.decision.is_throttled())
                .collect();
            assert!(!throttled.is_empty(), "kernel {i}");
            assert_eq!(
                throttled[0].tlp(a.warps_per_tb, a.plan.resident_tbs),
                (1, 8),
                "kernel {i}"
            );
        }
    }
}
