//! CFD — an unstructured-mesh Euler solver (Rodinia `euler3d` at
//! simulator scale): per-cell time-step factors, a neighbour-gather flux
//! kernel (the irregular part), and an explicit update, iterated over a
//! few time steps. Like BFS, the neighbour indirection makes `C_tid`
//! unknown at compile time, so CATT stays conservative (paper §4.2,
//! Table 3 keeps CFD at its original (6, 10) TLP).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Mesh cells (`missile.domn.0.2M` stand-in at sim scale).
pub const CELLS: usize = 8192;
/// Neighbours per cell.
pub const NNB: usize = 4;
/// Time steps the host iterates.
pub const STEPS: usize = 3;

const SRC: &str = "
#define CELLS 8192
#define NNB 4
__global__ void cfd_step_factor(float *density, float *energy, float *step_factor) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < CELLS) {
        float d = density[i];
        float e = energy[i];
        step_factor[i] = 0.5f / (sqrtf(d * d + e * e) + 0.01f);
    }
}
__global__ void cfd_compute_flux(int *neighbors, float *density, float *energy, float *flux_d, float *flux_e) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < CELLS) {
        float fd = 0.0f;
        float fe = 0.0f;
        float di = density[i];
        float ei = energy[i];
        for (int nb = 0; nb < NNB; nb++) {
            int j = neighbors[i * NNB + nb];
            float dj = density[j];
            float ej = energy[j];
            fd += 0.25f * (dj - di);
            fe += 0.25f * (ej - ei);
        }
        flux_d[i] = fd;
        flux_e[i] = fe;
    }
}
__global__ void cfd_time_step(float *density, float *energy, float *flux_d, float *flux_e, float *step_factor) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < CELLS) {
        float sf = step_factor[i];
        density[i] = density[i] + sf * flux_d[i];
        energy[i] = energy[i] + sf * flux_e[i];
    }
}
";

/// Rodinia's euler3d block size (192 threads = 6 warps; Table 3's CFD
/// baseline is (6, 10)).
const BLOCK: u32 = 192;
const GRID: u32 = (CELLS as u32).div_ceil(BLOCK);
const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("cfd_step_factor", LaunchConfig::d1(GRID, BLOCK)),
    ("cfd_compute_flux", LaunchConfig::d1(GRID, BLOCK)),
    ("cfd_time_step", LaunchConfig::d1(GRID, BLOCK)),
];

fn host_reference(neighbors: &[i32], d0: &[f32], e0: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let mut density = d0.to_vec();
    let mut energy = e0.to_vec();
    for _ in 0..STEPS {
        let sf: Vec<f32> = density
            .iter()
            .zip(&energy)
            .map(|(d, e)| 0.5 / ((d * d + e * e).sqrt() + 0.01))
            .collect();
        let mut fd = vec![0.0f32; CELLS];
        let mut fe = vec![0.0f32; CELLS];
        for i in 0..CELLS {
            for nb in 0..NNB {
                let j = neighbors[i * NNB + nb] as usize;
                fd[i] += 0.25 * (density[j] - density[i]);
                fe[i] += 0.25 * (energy[j] - energy[i]);
            }
        }
        for i in 0..CELLS {
            density[i] += sf[i] * fd[i];
            energy[i] += sf[i] * fe[i];
        }
    }
    (density, energy)
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let neighbors = data::mesh_neighbors("cfd", CELLS, NNB);
    let d0: Vec<f32> = data::vector("cfd:d", CELLS)
        .iter()
        .map(|v| v + 0.5)
        .collect();
    let e0: Vec<f32> = data::vector("cfd:e", CELLS)
        .iter()
        .map(|v| v + 1.0)
        .collect();
    let mut mem = GlobalMem::new();
    let bnb = mem.alloc_i32(&neighbors);
    let bd = mem.alloc_f32(&d0);
    let be = mem.alloc_f32(&e0);
    let bsf = mem.alloc_zeroed(CELLS as u32);
    let bfd = mem.alloc_zeroed(CELLS as u32);
    let bfe = mem.alloc_zeroed(CELLS as u32);
    let mut total = LaunchStats::default();
    for _ in 0..STEPS {
        let stats = exec_sequence(
            kernels,
            &[LAUNCHES[0].1, LAUNCHES[1].1, LAUNCHES[2].1],
            &[
                vec![Arg::Buf(bd), Arg::Buf(be), Arg::Buf(bsf)],
                vec![
                    Arg::Buf(bnb),
                    Arg::Buf(bd),
                    Arg::Buf(be),
                    Arg::Buf(bfd),
                    Arg::Buf(bfe),
                ],
                vec![
                    Arg::Buf(bd),
                    Arg::Buf(be),
                    Arg::Buf(bfd),
                    Arg::Buf(bfe),
                    Arg::Buf(bsf),
                ],
            ],
            config,
            &mut mem,
        );
        total.accumulate(&stats);
        total.resident_tbs_per_sm = stats.resident_tbs_per_sm;
    }
    if validate {
        let (hd, he) = host_reference(&neighbors, &d0, &e0);
        data::assert_close(&mem.read_f32(bd), &hd, 5e-3, "CFD density");
        data::assert_close(&mem.read_f32(be), &he, 5e-3, "CFD energy");
    }
    total
}

/// The CFD workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "CFD",
        name: "CFD solver (unstructured Euler)",
        suite: "Rodinia",
        group: Group::Cs,
        smem_kb: 0.0,
        input: "8K-cell mesh, 4 neighbours, 3 steps",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;

    #[test]
    fn cfd_baseline_tlp_is_6_10_and_untouched() {
        let w = workload();
        let (out, app) =
            harness::run_catt(&w, &harness::eval_config_max_l1d()).expect("policy run succeeds");
        assert!(out.cycles() > 0);
        // 192-thread blocks: 6 warps, 10 resident blocks (64-warp limit).
        let flux = &app.kernels[1].analysis;
        assert_eq!(flux.baseline_tlp(), (6, 10));
        for (i, k) in app.kernels.iter().enumerate() {
            assert!(!k.is_transformed(), "kernel {i}: CFD must stay untouched");
        }
    }
}
