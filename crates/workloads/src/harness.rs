//! Run workloads under the three evaluation policies: baseline, CATT,
//! and BFTT (the paper's Figures 6–10 machinery).

use crate::registry::Workload;
use catt_core::bftt::{self, BfttResult};
use catt_core::pipeline::{CompiledApp, Pipeline};
use catt_sim::{GpuConfig, LaunchStats};

/// Outcome of one policy run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accumulated statistics over every kernel launch of the app.
    pub stats: LaunchStats,
}

impl RunOutcome {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Run the application untransformed.
pub fn run_baseline(w: &Workload, config: &GpuConfig) -> RunOutcome {
    let kernels = w.kernels();
    let stats = (w.run)(&kernels, config, true);
    RunOutcome { stats }
}

/// Compile the application with CATT and run the transformed kernels.
/// Returns the outcome together with the compilation record (per-loop
/// decisions, Table 3 data).
pub fn run_catt(w: &Workload, config: &GpuConfig) -> (RunOutcome, CompiledApp) {
    let pipe = Pipeline::new(config.clone());
    let kernels = w.kernels();
    let mut compiled = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        compiled.push(
            pipe.compile_kernel(k, w.launch(i))
                .unwrap_or_else(|e| panic!("{}: {e}", w.abbrev)),
        );
    }
    let app = CompiledApp { kernels: compiled };
    let transformed = app.transformed_kernels();
    let stats = (w.run)(&transformed, config, true);
    (RunOutcome { stats }, app)
}

/// Run the BFTT exhaustive sweep for the application and return the best
/// candidate's outcome plus the full sweep record.
///
/// Candidate runs skip output validation (they are timing probes); the
/// winning configuration is re-run with validation on.
pub fn run_bftt(w: &Workload, config: &GpuConfig) -> (RunOutcome, BfttResult) {
    let kernels = w.kernels();
    let launch = w.block_launch();
    let result = bftt::sweep(&kernels, launch, config, |ks, cfg| (w.run)(ks, cfg, false));
    let best = result.best_candidate();
    // Re-run the winner with validation.
    let warps = launch.warps_per_block();
    let transformed: Vec<_> = kernels
        .iter()
        .map(|k| {
            catt_core::pipeline::apply_uniform(
                k,
                best.n,
                best.m,
                warps,
                best.tbs + best.m,
                config.smem_carveout_bytes,
            )
        })
        .collect();
    let stats = (w.run)(&transformed, config, true);
    (RunOutcome { stats }, result)
}

/// Launch a sequence of kernels back to back on one device, accumulating
/// statistics (the host side of every multi-kernel application).
pub fn exec_sequence(
    kernels: &[catt_ir::Kernel],
    launches: &[catt_ir::LaunchConfig],
    args: &[Vec<catt_sim::Arg>],
    config: &GpuConfig,
    mem: &mut catt_sim::GlobalMem,
) -> LaunchStats {
    assert_eq!(kernels.len(), launches.len());
    assert_eq!(kernels.len(), args.len());
    let mut gpu = catt_sim::Gpu::new(config.clone());
    let mut total = LaunchStats::default();
    for ((k, launch), a) in kernels.iter().zip(launches).zip(args) {
        let stats = gpu
            .launch(k, *launch, a, mem)
            .unwrap_or_else(|e| panic!("kernel `{}`: {e}", k.name));
        total.resident_tbs_per_sm = stats.resident_tbs_per_sm;
        total.accumulate(&stats);
    }
    total
}

/// Geometric mean of a slice (the paper reports geomean speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The evaluation GPU: one Titan V SM with the maximum L1D (the
/// "Max. L1D" columns of the paper's figures). See DESIGN.md for why one
/// SM is the evaluation vehicle.
pub fn eval_config_max_l1d() -> GpuConfig {
    GpuConfig::titan_v_1sm()
}

/// The 32 KB L1D sensitivity configuration (paper §5.1.3, Fig. 10).
pub fn eval_config_32kb_l1d() -> GpuConfig {
    let mut c = GpuConfig::titan_v_1sm();
    c.l1_cap_bytes = Some(32 * 1024);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn eval_configs_differ_in_l1d() {
        assert_eq!(eval_config_max_l1d().l1d_bytes(), 128 * 1024);
        assert_eq!(eval_config_32kb_l1d().l1d_bytes(), 32 * 1024);
    }
}
