//! Run workloads under the three evaluation policies: baseline, CATT,
//! and BFTT (the paper's Figures 6–10 machinery).
//!
//! All policy runs go through the process-wide [`Engine`]: simulations
//! are memoized in the content-addressed cache (keyed by lowered
//! kernels + launch geometry + [`GpuConfig`]), and failures surface as
//! [`EvalError`]s instead of panics. BFTT probe runs skip output
//! validation and are cached under a separate `<abbrev>#probe` scope so
//! a validated run is never served from an unvalidated probe's entry.

use crate::registry::Workload;
use catt_core::bftt::{self, BfttResult, SweepError};
use catt_core::engine::{Engine, JobError};
use catt_core::pipeline::{CompiledApp, Pipeline};
use catt_ir::LaunchConfig;
use catt_sim::{GpuConfig, LaunchStats};
use std::fmt;

/// A policy run failed.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// CATT compilation of one kernel failed.
    Compile {
        /// Workload abbreviation.
        abbrev: &'static str,
        /// Kernel that failed to compile.
        kernel: String,
        /// The pipeline's error message.
        message: String,
    },
    /// A simulation job failed (panicked or errored).
    Sim(JobError),
    /// A BFTT sweep candidate failed.
    Sweep(SweepError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Compile {
                abbrev,
                kernel,
                message,
            } => write!(f, "{abbrev}: compiling kernel `{kernel}`: {message}"),
            EvalError::Sim(e) => e.fmt(f),
            EvalError::Sweep(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<JobError> for EvalError {
    fn from(e: JobError) -> EvalError {
        EvalError::Sim(e)
    }
}

impl From<SweepError> for EvalError {
    fn from(e: SweepError) -> EvalError {
        EvalError::Sweep(e)
    }
}

/// Outcome of one policy run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Accumulated statistics over every kernel launch of the app.
    pub stats: LaunchStats,
}

impl RunOutcome {
    /// Total cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }
}

/// Declared launch geometry of every kernel, in order — the launch part
/// of the workload's simulation-cache identity. (Iterative apps such as
/// BFS derive their actual launch sequence from these deterministically.)
fn declared_launches(w: &Workload, n_kernels: usize) -> Vec<LaunchConfig> {
    (0..n_kernels).map(|i| w.launch(i)).collect()
}

/// Run (possibly transformed) `kernels` of `w` through the global
/// [`Engine`]'s simulation cache. `validate` selects host-side output
/// validation and, with it, the cache scope: validated runs and
/// unvalidated timing probes never share entries (a validated result
/// must never be served from a run that skipped validation).
pub fn run_cached(
    w: &Workload,
    kernels: &[catt_ir::Kernel],
    config: &GpuConfig,
    validate: bool,
) -> Result<RunOutcome, EvalError> {
    let scope = if validate {
        w.abbrev.to_string()
    } else {
        format!("{}#probe", w.abbrev)
    };
    let launches = declared_launches(w, kernels.len());
    let stats = Engine::global().sim_app(&scope, kernels, &launches, config, || {
        (w.run)(kernels, config, validate)
    })?;
    Ok(RunOutcome { stats })
}

/// Run the application untransformed, memoized on the global [`Engine`].
pub fn run_baseline(w: &Workload, config: &GpuConfig) -> Result<RunOutcome, EvalError> {
    run_cached(w, &w.kernels(), config, true)
}

/// Run the application untransformed with the profiling sink armed and
/// return the per-launch profiles alongside the outcome (one
/// [`LaunchProfile`](catt_sim::LaunchProfile) per kernel launch, in
/// launch order). Profiled runs bypass the engine's simulation cache —
/// the profile is a side channel the cache does not store — and are
/// bit-identical to unprofiled runs in stats and memory effects (see
/// DESIGN.md "Profiling & trace subsystem").
pub fn run_profiled(
    w: &Workload,
    config: &GpuConfig,
) -> Result<(RunOutcome, Vec<catt_sim::LaunchProfile>), EvalError> {
    let mut cfg = config.clone();
    cfg.profile = Some(true);
    catt_sim::profile::set_capture(true);
    let res = run_cached(w, &w.kernels(), &cfg, true);
    let profiles = catt_sim::profile::take_captured();
    catt_sim::profile::set_capture(false);
    let out = res?;
    Ok((out, profiles))
}

/// Compile the application with CATT and run the transformed kernels.
/// Returns the outcome together with the compilation record (per-loop
/// decisions, Table 3 data).
pub fn run_catt(w: &Workload, config: &GpuConfig) -> Result<(RunOutcome, CompiledApp), EvalError> {
    let pipe = Pipeline::new(config.clone());
    let kernels = w.kernels();
    let mut compiled = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        compiled.push(
            pipe.compile_kernel(k, w.launch(i))
                .map_err(|e| EvalError::Compile {
                    abbrev: w.abbrev,
                    kernel: k.name.clone(),
                    message: e.to_string(),
                })?,
        );
    }
    let app = CompiledApp { kernels: compiled };
    let transformed = app.transformed_kernels();
    let out = run_cached(w, &transformed, config, true)?;
    Ok((out, app))
}

/// Run the BFTT exhaustive sweep for the application and return the best
/// candidate's outcome plus the full sweep record.
///
/// Candidate runs skip output validation (they are timing probes) and
/// are cached under the `<abbrev>#probe` scope; the winning
/// configuration is re-run with validation on under the plain scope.
pub fn run_bftt(w: &Workload, config: &GpuConfig) -> Result<(RunOutcome, BfttResult), EvalError> {
    let kernels = w.kernels();
    let launch = w.block_launch();
    let probe_scope = format!("{}#probe", w.abbrev);
    let result = bftt::sweep(&probe_scope, &kernels, launch, config, |ks, cfg| {
        (w.run)(ks, cfg, false)
    })?;
    let best = result.best_candidate();
    // Re-run the winner with validation.
    let warps = launch.warps_per_block();
    let transformed: Vec<_> = kernels
        .iter()
        .map(|k| {
            catt_core::pipeline::apply_uniform(
                k,
                best.n,
                best.m,
                warps,
                best.tbs + best.m,
                config.smem_carveout_bytes,
            )
        })
        .collect();
    let out = run_cached(w, &transformed, config, true)?;
    Ok((out, result))
}

/// Launch a sequence of kernels back to back on one device, accumulating
/// statistics (the host side of every multi-kernel application).
pub fn exec_sequence(
    kernels: &[catt_ir::Kernel],
    launches: &[catt_ir::LaunchConfig],
    args: &[Vec<catt_sim::Arg>],
    config: &GpuConfig,
    mem: &mut catt_sim::GlobalMem,
) -> LaunchStats {
    assert_eq!(kernels.len(), launches.len());
    assert_eq!(kernels.len(), args.len());
    let mut gpu = catt_sim::Gpu::new(config.clone());
    let mut total = LaunchStats::default();
    for ((k, launch), a) in kernels.iter().zip(launches).zip(args) {
        let stats = gpu
            .launch(k, *launch, a, mem)
            .unwrap_or_else(|e| panic!("kernel `{}`: {e}", k.name));
        total.resident_tbs_per_sm = stats.resident_tbs_per_sm;
        total.accumulate(&stats);
    }
    MEM_DIGEST.with(|d| {
        if d.get().0 {
            d.set((true, Some(mem.content_digest())));
        }
    });
    total
}

thread_local! {
    /// (capture enabled, digest of the memory image after the most recent
    /// `exec_sequence` on this thread).
    static MEM_DIGEST: std::cell::Cell<(bool, Option<u64>)> =
        const { std::cell::Cell::new((false, None)) };
}

/// Enable or disable capturing the post-run memory digest in
/// [`exec_sequence`] (thread-local; off by default because hashing the
/// full footprint after every run is measurable in sweeps). The
/// parallel-vs-sequential equivalence suite turns it on to assert
/// bit-identical output buffers across execution modes.
pub fn set_mem_digest_capture(enabled: bool) {
    MEM_DIGEST.with(|d| d.set((enabled, None)));
}

/// The memory digest recorded by the most recent [`exec_sequence`] on this
/// thread, if capture is enabled and a run has completed.
pub fn last_mem_digest() -> Option<u64> {
    MEM_DIGEST.with(|d| d.get().1)
}

/// Geometric mean of a slice (the paper reports geomean speedups).
/// `None` on an empty slice — callers that need a neutral element for an
/// empty group use `.unwrap_or(1.0)` (the geomean identity).
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// L2 capacity granted to the single-SM evaluation vehicle, in KB.
///
/// A real Titan V SM competes with 79 others for the 4.5–6 MB device
/// L2; giving the 1-SM vehicle the whole cache would let it hold entire
/// working sets that a contended SM never could. 256 KB models a busy
/// device's per-SM share (substitution documented in DESIGN.md §3h).
pub const EVAL_L2_KB: u32 = 256;

/// The evaluation GPU: one Titan V SM with the maximum L1D (the
/// "Max. L1D" columns of the paper's figures). See DESIGN.md for why one
/// SM is the evaluation vehicle.
pub fn eval_config_max_l1d() -> GpuConfig {
    let mut c = GpuConfig::titan_v_1sm();
    c.l2_kb = Some(EVAL_L2_KB);
    c
}

/// The 32 KB L1D sensitivity configuration (paper §5.1.3, Fig. 10).
pub fn eval_config_32kb_l1d() -> GpuConfig {
    let mut c = GpuConfig::titan_v_1sm();
    c.l1_cap_bytes = Some(32 * 1024);
    c.l2_kb = Some(EVAL_L2_KB);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn eval_configs_differ_in_l1d() {
        assert_eq!(eval_config_max_l1d().l1d_bytes(), 128 * 1024);
        assert_eq!(eval_config_32kb_l1d().l1d_bytes(), 32 * 1024);
    }
}
