//! The TLP / cache-footprint microbenchmarks of paper Fig. 3.
//!
//! `L1D-full-with-W-warps`: a kernel whose per-warp working set is sized
//! so that exactly `W` concurrent warps fill the L1D. Sweeping the actual
//! TLP from 1 to 32 warps shows the paper's trade-off: below `W`, more
//! warps help (latency hiding); above `W`, the aggregate footprint
//! exceeds the L1D and contention dominates.

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

/// Total work budget: pass-count × warp-count is held constant across the
/// TLP sweep (32 warp-passes), so the x-axis of Fig. 3 varies parallelism
/// at *fixed total work*, exactly as the paper's "execution times at 1, 2,
/// and 4 TLPs are higher than that of 8" reading requires.
pub const WARP_PASSES: u32 = 96;

/// Build the microbenchmark kernel source: each warp owns `lines_per_warp`
/// cache lines and re-reads them `passes` times (a runtime parameter so
/// the host can hold total work constant across TLPs).
pub fn source(lines_per_warp: u32) -> String {
    format!(
        "#define S {lines_per_warp}
         __global__ void l1d_fill(float *a, float *out, int passes) {{
             int t = blockIdx.x * blockDim.x + threadIdx.x;
             int wid = t / 32;
             int lane = t % 32;
             float acc = 0.0f;
             for (int r = 0; r < passes; r++) {{
                 for (int s = 0; s < S; s++) {{
                     acc += a[(wid * S + s) * 32 + lane];
                 }}
             }}
             out[t] = acc;
         }}"
    )
}

/// Run `L1D-full-with-{full_with}-warps` at `tlp` concurrent warps (one
/// thread block of `tlp` warps on one SM), with total work fixed at
/// [`WARP_PASSES`] warp-passes over the per-warp working set. Returns the
/// launch statistics; the kernel's output is validated internally.
pub fn run(full_with: u32, tlp: u32, config: &GpuConfig) -> LaunchStats {
    assert!((1..=32).contains(&tlp), "tlp must be 1..=32 warps");
    assert!(
        WARP_PASSES.is_multiple_of(tlp),
        "tlp must divide the work budget"
    );
    let l1_lines = config.l1d_bytes() / config.l1_line_bytes;
    let lines_per_warp = (l1_lines / full_with).max(1);
    let passes = WARP_PASSES / tlp;
    let src = source(lines_per_warp);
    let kernel = parse_kernel(&src).unwrap();
    let threads = tlp * 32;
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; (tlp * lines_per_warp * 32) as usize]);
    let out = mem.alloc_zeroed(threads);
    let mut gpu = Gpu::new(config.clone());
    let stats = gpu
        .launch(
            &kernel,
            LaunchConfig::d1(1, threads),
            &[Arg::Buf(a), Arg::Buf(out), Arg::I32(passes as i32)],
            &mut mem,
        )
        .unwrap();
    let expect = (passes * lines_per_warp) as f32;
    assert!(
        mem.read_f32(out).iter().all(|&v| v == expect),
        "microbenchmark output mismatch"
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_sm() -> GpuConfig {
        let mut c = GpuConfig::titan_v_1sm();
        c.l1_cap_bytes = Some(32 * 1024); // 256 lines
                                          // Fig. 3 isolates *L1* contention: a warm L2 would absorb the
                                          // thrash misses and flatten the U-shape the paper plots.
        c.l2_kb = Some(0);
        c
    }

    /// The Fig. 3 shape: for `L1D-full-with-8-warps`, 8 warps is no
    /// slower than 32 warps (which thrash), and hit rates collapse past
    /// the fill point.
    #[test]
    fn fig3_shape_for_full_with_8() {
        let cfg = one_sm();
        let at8 = run(8, 8, &cfg);
        let at32 = run(8, 32, &cfg);
        assert!(
            at8.l1_hit_rate() > 0.9,
            "at the fill point the working set fits: {:.3}",
            at8.l1_hit_rate()
        );
        assert!(
            at32.l1_hit_rate() < 0.6,
            "4× oversubscription must thrash: {:.3}",
            at32.l1_hit_rate()
        );
        // Total work is fixed, so thrashing shows directly in wall time.
        assert!(
            at32.cycles > at8.cycles,
            "oversubscription must be slower at fixed work: {} vs {}",
            at8.cycles,
            at32.cycles
        );
    }

    #[test]
    fn low_tlp_underutilizes() {
        let cfg = one_sm();
        let at1 = run(8, 1, &cfg);
        let at8 = run(8, 8, &cfg);
        // Same total work: one warp cannot hide latency, eight can.
        assert!(
            at8.cycles < at1.cycles,
            "8 warps must beat 1 warp at fixed work: {} vs {}",
            at8.cycles,
            at1.cycles
        );
    }

    /// The full Fig. 3 U-shape: the minimum of the TLP sweep sits at (or
    /// adjacent to) the fill point. Checked for the fill points with
    /// enough parallelism to be throughput-bound (at `full-with-4` on a
    /// 32 KB L1D, four warps cannot hide latency and over-subscription
    /// genuinely wins — see EXPERIMENTS.md).
    #[test]
    fn minimum_sits_at_the_fill_point() {
        let cfg = one_sm();
        for full_with in [8u32, 16] {
            let times: Vec<(u32, u64)> = [1u32, 2, 4, 8, 16, 32]
                .iter()
                .map(|&t| (t, run(full_with, t, &cfg).cycles))
                .collect();
            let (best_tlp, _) = times.iter().min_by_key(|(_, c)| *c).unwrap();
            assert!(
                (full_with / 2..=full_with * 2).contains(best_tlp),
                "full-with-{full_with}: best TLP {best_tlp}, times {times:?}"
            );
        }
    }
}
