//! HM — Huffman encoding (Rodinia `huffman`): the code table (256 code
//! words + 256 lengths, staged into 6.13 KB of shared memory per Table 2)
//! serves data-dependent lookups; the symbol stream itself is laid out
//! transposed so loads coalesce. Tiny resident footprint →
//! cache-insensitive.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Encoding threads.
pub const NT: usize = 1024;
/// Symbols per thread.
pub const CHUNK: usize = 8;
/// Alphabet size.
pub const ALPHABET: usize = 256;
/// Shared table: 1570 × 4 B = 6.13 KB (Table 2).
pub const SMEM_FLOATS: usize = 1570;

const SRC: &str = "
#define NT 1024
#define CHUNK 8
#define ALPHABET 256
__global__ void huffman_encode(int *table_bits, int *data, int *out_bits) {
    __shared__ int tbl[1570];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    tbl[threadIdx.x % ALPHABET] = table_bits[threadIdx.x % ALPHABET];
    __syncthreads();
    if (i < NT) {
        int bits = 0;
        for (int s = 0; s < CHUNK; s++) {
            int sym = data[s * NT + i];
            bits += tbl[sym];
        }
        out_bits[i] = bits;
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] =
    &[("huffman_encode", LaunchConfig::d1((NT / 256) as u32, 256))];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    // Code lengths 1..=16 bits per symbol.
    let table: Vec<i32> = data::int_vector("hm:tbl", ALPHABET, 16)
        .iter()
        .map(|v| v + 1)
        .collect();
    let symbols = data::int_vector("hm:data", NT * CHUNK, ALPHABET as i32);
    let mut mem = GlobalMem::new();
    let bt = mem.alloc_i32(&table);
    let bd = mem.alloc_i32(&symbols);
    let bo = mem.alloc_i32(&vec![0; NT]);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(bt), Arg::Buf(bd), Arg::Buf(bo)]],
        config,
        &mut mem,
    );
    if validate {
        let out = mem.read_i32(bo);
        for i in 0..NT {
            let expect: i32 = (0..CHUNK)
                .map(|s| table[symbols[s * NT + i] as usize])
                .sum();
            assert_eq!(out[i], expect, "HM out[{i}]");
        }
    }
    stats
}

/// The HM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "HM",
        name: "Huffman encoding",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 6.13,
        input: "8K symbols, 256-entry code table",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn hm_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
