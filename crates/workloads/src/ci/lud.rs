//! LUD — blocked LU decomposition, diagonal-tile kernel (Rodinia `lud`):
//! each block stages a 16×16 tile in shared memory (6.00 KB per block per
//! Table 2, covering the diagonal/perimeter staging buffers) and
//! eliminates it with a barrier per pivot step. The hot tile lives in
//! shared memory, so the kernel is cache-insensitive; its pivot loop
//! contains `__syncthreads()` and therefore may never be warp-split.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Tile edge.
pub const T: usize = 16;
/// Number of independent diagonal tiles processed per launch.
pub const TILES: usize = 4;
/// Shared staging: 1536 × 4 B = 6.00 KB (Table 2; the diagonal kernel's
/// tile plus Rodinia's perimeter staging).
pub const SMEM_FLOATS: usize = 1536;

const SRC: &str = "
#define T 16
__global__ void lud_diagonal(float *A) {
    __shared__ float tile[1536];
    int col = threadIdx.x;
    int row = threadIdx.y;
    int base = blockIdx.x * T * T;
    tile[row * T + col] = A[base + row * T + col];
    __syncthreads();
    for (int k = 0; k < T - 1; k++) {
        float factor = 0.0f;
        if (row > k) {
            factor = tile[row * T + k] / tile[k * T + k];
        }
        __syncthreads();
        if (row > k && col > k) {
            tile[row * T + col] -= factor * tile[k * T + col];
        }
        if (row > k && col == k) {
            tile[row * T + col] = factor;
        }
        __syncthreads();
    }
    A[base + row * T + col] = tile[row * T + col];
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "lud_diagonal",
    LaunchConfig {
        grid: Dim3::x(TILES as u32),
        block: Dim3::xy(T as u32, T as u32),
    },
)];

fn host_lu_tile(tile: &mut [f32]) {
    for k in 0..T - 1 {
        let mut factors = [0.0f32; T];
        for (row, f) in factors.iter_mut().enumerate() {
            if row > k {
                *f = tile[row * T + k] / tile[k * T + k];
            }
        }
        for row in k + 1..T {
            for col in k + 1..T {
                tile[row * T + col] -= factors[row] * tile[k * T + col];
            }
            tile[row * T + k] = factors[row];
        }
    }
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    // Diagonally dominant tiles keep the (pivot-free) elimination stable.
    let mut a = data::matrix("lud:A", TILES, T * T);
    for tile in 0..TILES {
        for d in 0..T {
            a[tile * T * T + d * T + d] += T as f32;
        }
    }
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(ba)]],
        config,
        &mut mem,
    );
    if validate {
        let mut host = a.clone();
        for tile in 0..TILES {
            host_lu_tile(&mut host[tile * T * T..(tile + 1) * T * T]);
        }
        data::assert_close(&mem.read_f32(ba), &host, 1e-2, "LUD tiles");
    }
    stats
}

/// The LUD workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "LUD",
        name: "LU decomposition (diagonal tiles)",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 6.0,
        input: "4 tiles of 16x16",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn lud_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
