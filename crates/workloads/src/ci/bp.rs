//! BP — back-propagation forward layer (Rodinia `backprop`): the input
//! activations are staged in shared memory (1.06 KB, Table 2) and the
//! weight matrix is read with unit stride along the warp — a streaming,
//! cache-insensitive kernel.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Input units (staged in shared memory).
pub const IN: usize = 256;
/// Hidden units (one thread each).
pub const HID: usize = 512;
/// Shared staging buffer: 272 × 4 B = 1.06 KB (Table 2).
pub const SMEM_FLOATS: usize = 272;

const SRC: &str = "
#define IN 256
#define HID 512
__global__ void bp_layerforward(float *input, float *w, float *hidden) {
    __shared__ float buf[272];
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    buf[threadIdx.x] = input[threadIdx.x % IN];
    __syncthreads();
    if (j < HID) {
        float acc = 0.0f;
        for (int i = 0; i < IN; i++) {
            acc += buf[i] * w[i * HID + j];
        }
        hidden[j] = 1.0f / (1.0f + expf(-acc));
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] =
    &[("bp_layerforward", LaunchConfig::d1((HID / 256) as u32, 256))];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let input = data::vector("bp:in", IN);
    let w = data::matrix("bp:w", IN, HID);
    let mut mem = GlobalMem::new();
    let bi = mem.alloc_f32(&input);
    let bw = mem.alloc_f32(&w);
    let bh = mem.alloc_zeroed(HID as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(bi), Arg::Buf(bw), Arg::Buf(bh)]],
        config,
        &mut mem,
    );
    if validate {
        let hidden = mem.read_f32(bh);
        for j in 0..HID {
            let acc: f32 = (0..IN).map(|i| input[i] * w[i * HID + j]).sum();
            let expect = 1.0 / (1.0 + (-acc).exp());
            assert!(
                (hidden[j] - expect).abs() < 5e-3,
                "BP hidden[{j}]: {} vs {expect}",
                hidden[j]
            );
        }
    }
    stats
}

/// The BP workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "BP",
        name: "Back propagation (layer forward)",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 1.06,
        input: "256 -> 512 units",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bp_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
