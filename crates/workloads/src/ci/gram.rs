//! GRAM — Gram-Schmidt orthonormalization sweep (Polybench/GPU
//! `gramschmidt`). One thread per column, row-major storage: every access
//! is unit-stride along the warp, so the footprint stays small.
//!
//! Kernels: column norms, normalization, and projection coefficients
//! against the first column (one modified-GS step — representative of the
//! per-column kernels Polybench launches in a host loop).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows.
pub const R: usize = 128;
/// Columns (one thread each).
pub const C: usize = 256;

const SRC: &str = "
#define R 128
#define C 256
__global__ void gram_norm(float *A, float *nrm) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < C) {
        for (int i = 0; i < R; i++) {
            nrm[j] += A[i * C + j] * A[i * C + j];
        }
        nrm[j] = sqrtf(nrm[j]) + 0.001f;
    }
}
__global__ void gram_normalize(float *A, float *nrm, float *Q) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < C) {
        for (int i = 0; i < R; i++) {
            Q[i * C + j] = A[i * C + j] / nrm[j];
        }
    }
}
__global__ void gram_project(float *Q, float *rmat) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j < C) {
        for (int i = 0; i < R; i++) {
            rmat[j] += Q[i * C] * Q[i * C + j];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("gram_norm", LaunchConfig::d1(1, 256)),
    ("gram_normalize", LaunchConfig::d1(1, 256)),
    ("gram_project", LaunchConfig::d1(1, 256)),
];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("gram:A", R, C);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bn = mem.alloc_zeroed(C as u32);
    let bq = mem.alloc_zeroed((R * C) as u32);
    let br = mem.alloc_zeroed(C as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1, LAUNCHES[1].1, LAUNCHES[2].1],
        &[
            vec![Arg::Buf(ba), Arg::Buf(bn)],
            vec![Arg::Buf(ba), Arg::Buf(bn), Arg::Buf(bq)],
            vec![Arg::Buf(bq), Arg::Buf(br)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let mut nrm = vec![0.0f32; C];
        for j in 0..C {
            for i in 0..R {
                nrm[j] += a[i * C + j] * a[i * C + j];
            }
            nrm[j] = nrm[j].sqrt() + 0.001;
        }
        let mut q = vec![0.0f32; R * C];
        for i in 0..R {
            for j in 0..C {
                q[i * C + j] = a[i * C + j] / nrm[j];
            }
        }
        let mut rmat = vec![0.0f32; C];
        for j in 0..C {
            for i in 0..R {
                rmat[j] += q[i * C] * q[i * C + j];
            }
        }
        data::assert_close(&mem.read_f32(bn), &nrm, 2e-3, "GRAM nrm");
        data::assert_close(&mem.read_f32(br), &rmat, 2e-2, "GRAM r");
    }
    stats
}

/// The GRAM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "GRAM",
        name: "Gram-Schmidt process",
        suite: "Polybench",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "128x256",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn gram_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
