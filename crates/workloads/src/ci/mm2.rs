//! 2MM — two chained matrix multiplications `D = A·B`, `E = D·C`
//! (Polybench/GPU), both with the coalesced 2-D GEMM mapping.

use crate::ci::gemm::host_gemm;
use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Matrix dimension (square chain).
pub const N: usize = 64;

const SRC: &str = "
#define N 64
__global__ void mm2_kernel1(float *A, float *B, float *D) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        for (int k = 0; k < N; k++) {
            D[i * N + j] += A[i * N + k] * B[k * N + j];
        }
    }
}
__global__ void mm2_kernel2(float *D, float *C, float *E) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        for (int k = 0; k < N; k++) {
            E[i * N + j] += D[i * N + k] * C[k * N + j];
        }
    }
}
";

const LC: LaunchConfig = LaunchConfig {
    grid: Dim3::xy((N / 32) as u32, (N / 8) as u32),
    block: Dim3::xy(32, 8),
};
const LAUNCHES: &[(&str, LaunchConfig)] = &[("mm2_kernel1", LC), ("mm2_kernel2", LC)];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("2mm:A", N, N);
    let b = data::matrix("2mm:B", N, N);
    let c = data::matrix("2mm:C", N, N);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bb = mem.alloc_f32(&b);
    let bc = mem.alloc_f32(&c);
    let bd = mem.alloc_zeroed((N * N) as u32);
    let be = mem.alloc_zeroed((N * N) as u32);
    let stats = exec_sequence(
        kernels,
        &[LC, LC],
        &[
            vec![Arg::Buf(ba), Arg::Buf(bb), Arg::Buf(bd)],
            vec![Arg::Buf(bd), Arg::Buf(bc), Arg::Buf(be)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let mut d = vec![0.0f32; N * N];
        host_gemm(&a, &b, &mut d, N, N, N, 1.0, 1.0);
        let mut e = vec![0.0f32; N * N];
        host_gemm(&d, &c, &mut e, N, N, N, 1.0, 1.0);
        data::assert_close(&mem.read_f32(be), &e, 5e-3, "2MM E");
    }
    stats
}

/// The 2MM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "2MM",
        name: "Two matrix multiplications",
        suite: "Polybench",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "64x64 chain",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mm2_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
