//! 3MM — three chained matrix multiplications `E = A·B`, `F = C·D`,
//! `G = E·F` (Polybench/GPU), coalesced 2-D GEMM mapping throughout.

use crate::ci::gemm::host_gemm;
use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Matrix dimension.
pub const N: usize = 64;

const SRC: &str = "
#define N 64
__global__ void mm3_kernel1(float *A, float *B, float *E) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        for (int k = 0; k < N; k++) {
            E[i * N + j] += A[i * N + k] * B[k * N + j];
        }
    }
}
__global__ void mm3_kernel2(float *C, float *D, float *F) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        for (int k = 0; k < N; k++) {
            F[i * N + j] += C[i * N + k] * D[k * N + j];
        }
    }
}
__global__ void mm3_kernel3(float *E, float *F, float *G) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        for (int k = 0; k < N; k++) {
            G[i * N + j] += E[i * N + k] * F[k * N + j];
        }
    }
}
";

const LC: LaunchConfig = LaunchConfig {
    grid: Dim3::xy((N / 32) as u32, (N / 8) as u32),
    block: Dim3::xy(32, 8),
};
const LAUNCHES: &[(&str, LaunchConfig)] = &[
    ("mm3_kernel1", LC),
    ("mm3_kernel2", LC),
    ("mm3_kernel3", LC),
];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("3mm:A", N, N);
    let b = data::matrix("3mm:B", N, N);
    let c = data::matrix("3mm:C", N, N);
    let d = data::matrix("3mm:D", N, N);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bb = mem.alloc_f32(&b);
    let bc = mem.alloc_f32(&c);
    let bd = mem.alloc_f32(&d);
    let be = mem.alloc_zeroed((N * N) as u32);
    let bf = mem.alloc_zeroed((N * N) as u32);
    let bg = mem.alloc_zeroed((N * N) as u32);
    let stats = exec_sequence(
        kernels,
        &[LC, LC, LC],
        &[
            vec![Arg::Buf(ba), Arg::Buf(bb), Arg::Buf(be)],
            vec![Arg::Buf(bc), Arg::Buf(bd), Arg::Buf(bf)],
            vec![Arg::Buf(be), Arg::Buf(bf), Arg::Buf(bg)],
        ],
        config,
        &mut mem,
    );
    if validate {
        let mut e = vec![0.0f32; N * N];
        host_gemm(&a, &b, &mut e, N, N, N, 1.0, 1.0);
        let mut f = vec![0.0f32; N * N];
        host_gemm(&c, &d, &mut f, N, N, N, 1.0, 1.0);
        let mut g = vec![0.0f32; N * N];
        host_gemm(&e, &f, &mut g, N, N, N, 1.0, 1.0);
        data::assert_close(&mem.read_f32(bg), &g, 2e-2, "3MM G");
    }
    stats
}

/// The 3MM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "3MM",
        name: "Three matrix multiplications",
        suite: "Polybench",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "64x64 chain",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mm3_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
