//! Cache-insensitive applications (paper Table 2, CI group).
//!
//! Table 2's garbled "DC" row is interpreted as the Polybench `doitgen`
//! kernel (multi-resolution analysis); see `dc.rs`. The complex Rodinia
//! applications (heart wall, myocyte, huffman, lavaMD) are ported as
//! representative kernels that preserve their memory-access character —
//! see DESIGN.md "Substitutions".

pub mod bp;
pub mod bt;
pub mod dc;
pub mod gemm;
pub mod gram;
pub mod hm;
pub mod hp;
pub mod hw;
pub mod lud;
pub mod lvmd;
pub mod mc;
pub mod mm2;
pub mod mm3;
pub mod syrk;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::harness;
    use crate::registry::Workload;

    /// The CI-group invariant (paper §5.1.1 / Fig. 8): CATT's analysis
    /// must conclude that no throttling is needed at the maximum L1D, so
    /// the transformed kernels are byte-identical to the originals — and
    /// the run must still validate.
    pub fn assert_untouched_and_valid(w: &Workload) {
        let cfg = harness::eval_config_max_l1d();
        let (out, app) = harness::run_catt(w, &cfg).expect("policy run succeeds");
        assert!(out.cycles() > 0, "{}", w.abbrev);
        for (i, k) in app.kernels.iter().enumerate() {
            assert!(
                !k.is_transformed(),
                "{} kernel {i} (`{}`) must not be throttled: CI group",
                w.abbrev,
                k.original.name
            );
        }
    }
}
