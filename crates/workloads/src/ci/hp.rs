//! HP — Hotspot3D (Rodinia): a 3-D thermal stencil. One thread per (x,y)
//! column marching over z; all seven neighbour reads are unit-stride or
//! plane-stride along the warp, so requests coalesce and the footprint is
//! streaming, not resident — cache-insensitive.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Grid extent in x and y.
pub const NX: usize = 64;
/// See [`NX`].
pub const NY: usize = 64;
/// Layers.
pub const NZ: usize = 8;
/// Host-iterated time steps.
pub const STEPS: usize = 2;

const SRC: &str = "
#define NX 64
#define NY 64
#define NZ 8
__global__ void hotspot3d_kernel(float *tin, float *power, float *tout) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int x = i % NX;
    int y = i / NX;
    if (x > 0 && x < NX - 1 && y > 0 && y < NY - 1) {
        for (int z = 1; z < NZ - 1; z++) {
            int c = z * NX * NY + y * NX + x;
            tout[c] = 0.4f * tin[c]
                    + 0.1f * (tin[c - 1] + tin[c + 1])
                    + 0.1f * (tin[c - NX] + tin[c + NX])
                    + 0.1f * (tin[c - NX * NY] + tin[c + NX * NY])
                    + 0.05f * power[c];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "hotspot3d_kernel",
    LaunchConfig::d1((NX * NY / 256) as u32, 256),
)];

fn host_step(tin: &[f32], power: &[f32], tout: &mut [f32]) {
    for y in 1..NY - 1 {
        for x in 1..NX - 1 {
            for z in 1..NZ - 1 {
                let c = z * NX * NY + y * NX + x;
                tout[c] = 0.4 * tin[c]
                    + 0.1 * (tin[c - 1] + tin[c + 1])
                    + 0.1 * (tin[c - NX] + tin[c + NX])
                    + 0.1 * (tin[c - NX * NY] + tin[c + NX * NY])
                    + 0.05 * power[c];
            }
        }
    }
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let t0 = data::vector("hp:t", NX * NY * NZ);
    let power = data::vector("hp:p", NX * NY * NZ);
    let mut mem = GlobalMem::new();
    let mut ba = mem.alloc_f32(&t0);
    let bp = mem.alloc_f32(&power);
    let mut bb = mem.alloc_f32(&t0);
    let mut total = LaunchStats::default();
    for _ in 0..STEPS {
        let stats = exec_sequence(
            kernels,
            &[LAUNCHES[0].1],
            &[vec![Arg::Buf(ba), Arg::Buf(bp), Arg::Buf(bb)]],
            config,
            &mut mem,
        );
        total.accumulate(&stats);
        total.resident_tbs_per_sm = stats.resident_tbs_per_sm;
        std::mem::swap(&mut ba, &mut bb);
    }
    if validate {
        let mut hin = t0.clone();
        let mut hout = t0.clone();
        for _ in 0..STEPS {
            host_step(&hin, &power, &mut hout);
            std::mem::swap(&mut hin, &mut hout);
        }
        data::assert_close(&mem.read_f32(ba), &hin, 2e-3, "HP temperature");
    }
    total
}

/// The HP workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "HP",
        name: "Hotspot3D",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "64x64x8, 2 steps",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn hp_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
