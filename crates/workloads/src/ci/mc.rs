//! MC — Myocyte (Rodinia `myocyte`): cardiac-cell ODE integration. The
//! computational character is a long dependent chain of transcendental
//! operations per thread with almost no memory traffic — the compute-bound
//! extreme of the CI group.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Simulated cells (paper input "100"; one thread each, rounded to a
/// block).
pub const CELLS: usize = 128;
/// Integration steps.
pub const STEPS: usize = 64;
/// Time step.
pub const DT: f32 = 0.01;

const SRC: &str = "
#define CELLS 128
#define STEPS 64
__global__ void myocyte_kernel(float *v0, float *w0, float *vout, float *wout, float dt) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < CELLS) {
        float v = v0[i];
        float w = w0[i];
        for (int t = 0; t < STEPS; t++) {
            float dv = v - v * v * v / 3.0f - w + 0.5f;
            float dw = 0.08f * (v + 0.7f - 0.8f * w) * expf(-fabsf(v) * 0.01f);
            v = v + dt * dv;
            w = w + dt * dw;
        }
        vout[i] = v;
        wout[i] = w;
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[("myocyte_kernel", LaunchConfig::d1(1, CELLS as u32))];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let v0 = data::vector("mc:v", CELLS);
    let w0 = data::vector("mc:w", CELLS);
    let mut mem = GlobalMem::new();
    let bv0 = mem.alloc_f32(&v0);
    let bw0 = mem.alloc_f32(&w0);
    let bv = mem.alloc_zeroed(CELLS as u32);
    let bw = mem.alloc_zeroed(CELLS as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![
            Arg::Buf(bv0),
            Arg::Buf(bw0),
            Arg::Buf(bv),
            Arg::Buf(bw),
            Arg::F32(DT),
        ]],
        config,
        &mut mem,
    );
    if validate {
        let dv_out = mem.read_f32(bv);
        let dw_out = mem.read_f32(bw);
        for i in 0..CELLS {
            let (mut v, mut w) = (v0[i], w0[i]);
            for _ in 0..STEPS {
                let dv = v - v * v * v / 3.0 - w + 0.5;
                let dw = 0.08 * (v + 0.7 - 0.8 * w) * (-v.abs() * 0.01).exp();
                v += DT * dv;
                w += DT * dw;
            }
            assert!(
                (dv_out[i] - v).abs() < 1e-3 && (dw_out[i] - w).abs() < 1e-3,
                "MC cell {i}: ({}, {}) vs ({v}, {w})",
                dv_out[i],
                dw_out[i]
            );
        }
    }
    stats
}

/// The MC workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "MC",
        name: "Myocyte (cardiac-cell ODE)",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "128 cells x 64 steps",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mc_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
