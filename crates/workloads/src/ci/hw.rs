//! HW — Heart Wall tracking (Rodinia `heartwall`), ported as its
//! computational core: template matching of a staged template (11.59 KB
//! in shared memory, Table 2) against a frame, one correlation window per
//! thread. Frame reads are unit-stride along the warp → cache-insensitive.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Correlation windows (one thread each).
pub const WINDOWS: usize = 1024;
/// Template taps actually correlated.
pub const TAPS: usize = 24;
/// Frame samples.
pub const FRAME: usize = WINDOWS + TAPS;
/// Shared staging: 2967 × 4 B = 11.59 KB (Table 2; the kernel's staged
/// template, endo/epi point buffers).
pub const SMEM_FLOATS: usize = 2967;

const SRC: &str = "
#define WINDOWS 1024
#define TAPS 24
__global__ void heartwall_track(float *frame, float *tmpl, float *corr) {
    __shared__ float buf[2967];
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (threadIdx.x < TAPS) {
        buf[threadIdx.x] = tmpl[threadIdx.x];
    }
    __syncthreads();
    if (i < WINDOWS) {
        float acc = 0.0f;
        for (int t = 0; t < TAPS; t++) {
            acc += frame[i + t] * buf[t];
        }
        corr[i] = acc;
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "heartwall_track",
    LaunchConfig::d1((WINDOWS / 256) as u32, 256),
)];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let frame = data::vector("hw:frame", FRAME);
    let tmpl = data::vector("hw:tmpl", TAPS);
    let mut mem = GlobalMem::new();
    let bf = mem.alloc_f32(&frame);
    let bt = mem.alloc_f32(&tmpl);
    let bc = mem.alloc_zeroed(WINDOWS as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(bf), Arg::Buf(bt), Arg::Buf(bc)]],
        config,
        &mut mem,
    );
    if validate {
        let corr = mem.read_f32(bc);
        for i in 0..WINDOWS {
            let expect: f32 = (0..TAPS).map(|t| frame[i + t] * tmpl[t]).sum();
            assert!(
                (corr[i] - expect).abs() < 1e-3,
                "HW corr[{i}]: {} vs {expect}",
                corr[i]
            );
        }
    }
    stats
}

/// The HW workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "HW",
        name: "Heart wall tracking",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 11.59,
        input: "1024 windows x 24 taps",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn hw_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
