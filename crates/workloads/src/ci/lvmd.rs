//! LVMD — LavaMD (Rodinia): particle interactions between neighbouring
//! boxes. One block per home box; each neighbour box's particles are
//! staged through shared memory (7.03 KB per block, Table 2) before the
//! O(n²) interaction loop, so global traffic is a coalesced stream and
//! the hot data lives in shared memory, not the L1D.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Boxes (one block each).
pub const BOXES: usize = 64;
/// Particles per box.
pub const PPB: usize = 128;
/// Neighbour boxes examined per home box.
pub const NEIGH: usize = 4;
/// Shared staging buffer (floats): 1800 × 4 B = 7.03 KB (Table 2).
pub const SMEM_FLOATS: usize = 1800;

const SRC: &str = "
#define BOXES 64
#define PPB 128
#define NEIGH 4
__global__ void lavamd_kernel(int *nbox, float *pos, float *force) {
    __shared__ float buf[1800];
    int home = blockIdx.x;
    int t = threadIdx.x;
    float acc = 0.0f;
    float mine = pos[home * PPB + t];
    for (int n = 0; n < NEIGH; n++) {
        int other = nbox[home * NEIGH + n];
        buf[t] = pos[other * PPB + t];
        __syncthreads();
        for (int p = 0; p < PPB; p++) {
            float d = mine - buf[p];
            acc += 1.0f / (d * d + 0.5f);
        }
        __syncthreads();
    }
    force[home * PPB + t] = acc;
}
";

const LAUNCHES: &[(&str, LaunchConfig)] =
    &[("lavamd_kernel", LaunchConfig::d1(BOXES as u32, PPB as u32))];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let nbox = data::int_vector("lvmd:nb", BOXES * NEIGH, BOXES as i32);
    let pos = data::vector("lvmd:pos", BOXES * PPB);
    let mut mem = GlobalMem::new();
    let bn = mem.alloc_i32(&nbox);
    let bp = mem.alloc_f32(&pos);
    let bf = mem.alloc_zeroed((BOXES * PPB) as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(bn), Arg::Buf(bp), Arg::Buf(bf)]],
        config,
        &mut mem,
    );
    if validate {
        let force = mem.read_f32(bf);
        for home in 0..BOXES {
            for t in 0..PPB {
                let mine = pos[home * PPB + t];
                let mut acc = 0.0f32;
                for n in 0..NEIGH {
                    let other = nbox[home * NEIGH + n] as usize;
                    for p in 0..PPB {
                        let d = mine - pos[other * PPB + p];
                        acc += 1.0 / (d * d + 0.5);
                    }
                }
                let got = force[home * PPB + t];
                assert!(
                    (got - acc).abs() <= 1e-2 * acc.abs().max(1.0),
                    "LVMD force[{home},{t}]: {got} vs {acc}"
                );
            }
        }
    }
    stats
}

/// The LVMD workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "LVMD",
        name: "LavaMD particle interactions",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 7.03,
        input: "64 boxes x 128 particles, 4 neighbours",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn lvmd_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
