//! GEMM — `C = α·A·B + β·C` (Polybench/GPU), the canonical coalesced
//! kernel: with 2-D blocks the row index comes from `threadIdx.y`, so both
//! input streams are uniform or unit-stride along the warp's x-dimension
//! and the L1D footprint stays far below capacity.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Rows of C.
pub const NI: usize = 96;
/// Columns of C.
pub const NJ: usize = 96;
/// Inner dimension.
pub const NK: usize = 64;
/// GEMM scalars.
pub const ALPHA: f32 = 1.25;
/// See [`ALPHA`].
pub const BETA: f32 = 0.75;

const SRC: &str = "
#define NI 96
#define NJ 96
#define NK 64
__global__ void gemm_kernel(float *A, float *B, float *C, float alpha, float beta) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < NI && j < NJ) {
        C[i * NJ + j] *= beta;
        for (int k = 0; k < NK; k++) {
            C[i * NJ + j] += alpha * A[i * NK + k] * B[k * NJ + j];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "gemm_kernel",
    LaunchConfig {
        grid: Dim3::xy(NJ.div_ceil(32) as u32, NI.div_ceil(8) as u32),
        block: Dim3::xy(32, 8),
    },
)];

/// Host GEMM used by 2MM/3MM as well.
#[allow(clippy::too_many_arguments)]
pub(crate) fn host_gemm(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ni: usize,
    nj: usize,
    nk: usize,
    alpha: f32,
    beta: f32,
) {
    for i in 0..ni {
        for j in 0..nj {
            c[i * nj + j] *= beta;
            for k in 0..nk {
                c[i * nj + j] += alpha * a[i * nk + k] * b[k * nj + j];
            }
        }
    }
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("gemm:A", NI, NK);
    let b = data::matrix("gemm:B", NK, NJ);
    let c0 = data::matrix("gemm:C", NI, NJ);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bb = mem.alloc_f32(&b);
    let bc = mem.alloc_f32(&c0);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![
            Arg::Buf(ba),
            Arg::Buf(bb),
            Arg::Buf(bc),
            Arg::F32(ALPHA),
            Arg::F32(BETA),
        ]],
        config,
        &mut mem,
    );
    if validate {
        let mut c = c0.clone();
        host_gemm(&a, &b, &mut c, NI, NJ, NK, ALPHA, BETA);
        data::assert_close(&mem.read_f32(bc), &c, 2e-3, "GEMM C");
    }
    stats
}

/// The GEMM workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "GEMM",
        name: "Matrix multiply",
        suite: "Polybench",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "96x96, k=64",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn gemm_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
