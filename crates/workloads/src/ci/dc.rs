//! DC — multi-resolution analysis kernel (interpreting Table 2's garbled
//! "DC" row as Polybench's `doitgen`): `sum[q][p] = Σ_s A[q][s]·C4[s][p]`.
//! One thread per `p`, so the `C4` stream and the output are coalesced
//! and the `A` element is warp-uniform per iteration.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Output columns (one thread each).
pub const P: usize = 256;
/// Rows processed per launch.
pub const Q: usize = 64;
/// Inner dimension.
pub const S: usize = 16;

const SRC: &str = "
#define P 256
#define Q 64
#define S 16
__global__ void doitgen_kernel(float *A, float *C4, float *sum) {
    int p = blockIdx.x * blockDim.x + threadIdx.x;
    if (p < P) {
        for (int q = 0; q < Q; q++) {
            for (int s = 0; s < S; s++) {
                sum[q * P + p] += A[q * S + s] * C4[s * P + p];
            }
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[("doitgen_kernel", LaunchConfig::d1(1, 256))];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let a = data::matrix("dc:A", Q, S);
    let c4 = data::matrix("dc:C4", S, P);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bc4 = mem.alloc_f32(&c4);
    let bsum = mem.alloc_zeroed((Q * P) as u32);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(ba), Arg::Buf(bc4), Arg::Buf(bsum)]],
        config,
        &mut mem,
    );
    if validate {
        let mut sum = vec![0.0f32; Q * P];
        for q in 0..Q {
            for p in 0..P {
                for s in 0..S {
                    sum[q * P + p] += a[q * S + s] * c4[s * P + p];
                }
            }
        }
        data::assert_close(&mem.read_f32(bsum), &sum, 2e-3, "DC sum");
    }
    stats
}

/// The DC workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "DC",
        name: "Multi-resolution analysis (doitgen)",
        suite: "Polybench",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "64x16x256",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn dc_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
