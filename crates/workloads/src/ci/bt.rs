//! BT — B+ tree search (Rodinia `b+tree`): each thread descends an
//! array-packed B+ tree for its own query key. The node walks are
//! data-dependent (irregular), but the touched footprint per descent is a
//! handful of lines, so the application is cache-insensitive and CATT's
//! conservative irregular handling leaves it at full TLP.

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// Fan-out per node.
pub const FANOUT: usize = 8;
/// Tree levels (8^4 = 4096 leaves).
pub const LEVELS: usize = 4;
/// Queries (one thread each).
pub const QUERIES: usize = 4096;
/// Leaves.
pub const LEAVES: usize = FANOUT.pow(LEVELS as u32);

const SRC: &str = "
#define FANOUT 8
#define LEVELS 4
#define QUERIES 4096
__global__ void btree_search(int *keys, int *queries, int *results) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < QUERIES) {
        int q = queries[i];
        int node = 0;
        for (int level = 0; level < LEVELS; level++) {
            int child = FANOUT - 1;
            for (int c = 0; c < FANOUT - 1; c++) {
                if (q < keys[node * FANOUT + c]) {
                    child = c;
                    break;
                }
            }
            node = node * FANOUT + child + 1;
        }
        results[i] = node;
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "btree_search",
    LaunchConfig::d1((QUERIES / 256) as u32, 256),
)];

/// Internal nodes of a complete tree of the given fan-out/levels
/// (`(8^4 − 1) / 7` in the default geometry).
pub fn internal_nodes() -> usize {
    (LEAVES - 1) / (FANOUT - 1)
}

/// Build separator keys so leaf `l` covers keys `[l*8, (l+1)*8)`.
fn build_keys() -> Vec<i32> {
    let nodes = internal_nodes();
    let mut keys = vec![i32::MAX; nodes * FANOUT];
    // Node numbering matches the kernel: child of `node` taking branch
    // `child` is `node * FANOUT + child + 1` (heap-like layout).
    // Separator c of a node at depth d spanning `span` keys from `base`:
    // key = base + (c+1) * span / FANOUT.
    fn fill(keys: &mut [i32], node: usize, base: i32, span: i32, depth: usize) {
        if depth == LEVELS {
            return;
        }
        let child_span = span / FANOUT as i32;
        for c in 0..FANOUT - 1 {
            keys[node * FANOUT + c] = base + (c as i32 + 1) * child_span;
        }
        for c in 0..FANOUT {
            fill(
                keys,
                node * FANOUT + c + 1,
                base + c as i32 * child_span,
                child_span,
                depth + 1,
            );
        }
    }
    fill(&mut keys, 0, 0, (LEAVES * FANOUT / FANOUT) as i32 * 8, 0);
    keys
}

fn host_search(keys: &[i32], q: i32) -> i32 {
    let mut node = 0usize;
    for _ in 0..LEVELS {
        let mut child = FANOUT - 1;
        for c in 0..FANOUT - 1 {
            if q < keys[node * FANOUT + c] {
                child = c;
                break;
            }
        }
        node = node * FANOUT + child + 1;
    }
    node as i32
}

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    let keys = build_keys();
    let queries = data::int_vector("bt:q", QUERIES, (LEAVES * 8) as i32);
    let mut mem = GlobalMem::new();
    let bkeys = mem.alloc_i32(&keys);
    let bq = mem.alloc_i32(&queries);
    let bres = mem.alloc_i32(&vec![0; QUERIES]);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![Arg::Buf(bkeys), Arg::Buf(bq), Arg::Buf(bres)]],
        config,
        &mut mem,
    );
    if validate {
        let res = mem.read_i32(bres);
        for i in 0..QUERIES {
            assert_eq!(res[i], host_search(&keys, queries[i]), "BT query {i}");
        }
    }
    stats
}

/// The BT workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "BT",
        name: "B+ tree search",
        suite: "Rodinia",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "4-level tree, 4096 queries",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bt_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
