//! SYRK — symmetric rank-k update `C = α·A·Aᵀ + β·C` (Polybench/GPU),
//! ported with the transposed operand layout (`At[k][i]`) common in tuned
//! GPU BLAS so both streams are coalesced along the warp's x-dimension.
//! This matches the paper's empirical CI classification of SYRK (its
//! Table 2 groups it cache-insensitive at the 1K input).

use crate::data;
use crate::harness::exec_sequence;
use crate::registry::{Group, RunFn, Workload};
use catt_ir::kernel::{Kernel, LaunchConfig};
use catt_ir::Dim3;
use catt_sim::{Arg, GlobalMem, GpuConfig, LaunchStats};

/// C is N×N.
pub const N: usize = 96;
/// Inner dimension.
pub const K: usize = 48;
/// Scalars.
pub const ALPHA: f32 = 0.5;
/// See [`ALPHA`].
pub const BETA: f32 = 1.0;

const SRC: &str = "
#define N 96
#define K 48
__global__ void syrk_kernel(float *At, float *C, float alpha, float beta) {
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < N && j < N) {
        C[i * N + j] *= beta;
        for (int k = 0; k < K; k++) {
            C[i * N + j] += alpha * At[k * N + i] * At[k * N + j];
        }
    }
}
";

const LAUNCHES: &[(&str, LaunchConfig)] = &[(
    "syrk_kernel",
    LaunchConfig {
        grid: Dim3::xy(N.div_ceil(32) as u32, N.div_ceil(8) as u32),
        block: Dim3::xy(32, 8),
    },
)];

fn run(kernels: &[Kernel], config: &GpuConfig, validate: bool) -> LaunchStats {
    // At is K×N: At[k][i] = A[i][k].
    let at = data::matrix("syrk:At", K, N);
    let c0 = data::matrix("syrk:C", N, N);
    let mut mem = GlobalMem::new();
    let bat = mem.alloc_f32(&at);
    let bc = mem.alloc_f32(&c0);
    let stats = exec_sequence(
        kernels,
        &[LAUNCHES[0].1],
        &[vec![
            Arg::Buf(bat),
            Arg::Buf(bc),
            Arg::F32(ALPHA),
            Arg::F32(BETA),
        ]],
        config,
        &mut mem,
    );
    if validate {
        let mut c = c0.clone();
        for i in 0..N {
            for j in 0..N {
                c[i * N + j] *= BETA;
                for k in 0..K {
                    c[i * N + j] += ALPHA * at[k * N + i] * at[k * N + j];
                }
            }
        }
        data::assert_close(&mem.read_f32(bc), &c, 2e-3, "SYRK C");
    }
    stats
}

/// The SYRK workload descriptor.
pub fn workload() -> Workload {
    Workload {
        abbrev: "SYRK",
        name: "Symmetric rank-k operations",
        suite: "Polybench",
        group: Group::Ci,
        smem_kb: 0.0,
        input: "96x96, k=48 (transposed operand)",
        source: SRC,
        launches: LAUNCHES,
        run: run as RunFn,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn syrk_is_untouched() {
        crate::ci::testutil::assert_untouched_and_valid(&super::workload());
    }
}
