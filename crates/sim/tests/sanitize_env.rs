//! `CATT_SANITIZE` environment override. Kept to a single test so the
//! process-global environment mutation cannot race another test in the
//! same binary (the main sanitizer suite pins the knob explicitly).

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, SanitizerKind, SimError};

#[test]
fn env_enables_the_sanitizer_and_explicit_config_wins() {
    let src = "
        __global__ void ww(float *a) {
            a[threadIdx.x] = 1.0f;
        }";
    let k = parse_kernel(src).unwrap();
    let launch = LaunchConfig::d1(2, 32);

    std::env::set_var("CATT_SANITIZE", "on");
    let config = GpuConfig::small();
    assert!(config.sanitize_enabled());
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let err = Gpu::new(config)
        .launch(&k, launch, &[Arg::Buf(ba)], &mut mem)
        .unwrap_err();
    match err {
        SimError::Sanitizer(report) => {
            assert_eq!(report.kind, SanitizerKind::GlobalRace);
            assert_eq!(report.kernel, "ww");
        }
        other => panic!("expected a sanitizer report, got {other}"),
    }

    // Explicit config beats the environment: the same racy launch
    // completes under the forgiving semantics.
    let mut config = GpuConfig::small();
    config.sanitize = Some(false);
    assert!(!config.sanitize_enabled());
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    Gpu::new(config)
        .launch(&k, launch, &[Arg::Buf(ba)], &mut mem)
        .unwrap();

    std::env::remove_var("CATT_SANITIZE");
    assert!(!GpuConfig::small().sanitize_enabled());
}
