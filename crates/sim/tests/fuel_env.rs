//! `CATT_SIM_FUEL` environment override. Kept to a single test so the
//! process-global environment mutation cannot race another test in the
//! same binary.

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, SimError, FUEL_BASE};

#[test]
fn env_fuel_overrides_config_and_off_disables_it() {
    let src = "
        __global__ void spin(float *a, int n) {
            for (int j = 0; j < n; j++) { a[j % 32] += 1.0; }
        }";
    let k = parse_kernel(src).unwrap();
    let launch = LaunchConfig::d1(1, 32);

    // Env beats the (generous) config budget: a tiny env fuel starves
    // the loop even though the config would allow it.
    std::env::set_var("CATT_SIM_FUEL", "1500");
    let mut config = GpuConfig::small();
    config.sim_fuel = Some(FUEL_BASE);
    assert_eq!(config.fuel_budget(0), Some(1_500));
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let err = Gpu::new(config.clone())
        .launch(&k, launch, &[Arg::Buf(ba), Arg::I32(1_000_000)], &mut mem)
        .unwrap_err();
    assert!(matches!(err, SimError::FuelExhausted { .. }), "{err}");

    // "off" (or "0") disables the budget entirely: a finite loop that
    // would overrun 1500 cycles now completes.
    std::env::set_var("CATT_SIM_FUEL", "off");
    assert_eq!(config.fuel_budget(0), None);
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let stats = Gpu::new(config)
        .launch(&k, launch, &[Arg::Buf(ba), Arg::I32(500)], &mut mem)
        .unwrap();
    assert!(stats.cycles > 1_500);

    std::env::remove_var("CATT_SIM_FUEL");
}
