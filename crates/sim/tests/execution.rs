//! Functional integration tests: kernels parsed from CUDA source, run on
//! the simulator, outputs validated against host computation.

#![allow(clippy::needless_range_loop)]

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};

fn run(
    src: &str,
    launch: LaunchConfig,
    args: &[Arg],
    mem: &mut GlobalMem,
) -> catt_sim::LaunchStats {
    let k = parse_kernel(src).unwrap();
    let mut gpu = Gpu::new(GpuConfig::small());
    gpu.launch(&k, launch, args, mem).unwrap()
}

#[test]
fn saxpy_matches_host() {
    let n = 1000u32;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
    let mut mem = GlobalMem::new();
    let bx = mem.alloc_f32(&x);
    let by = mem.alloc_f32(&y);
    let src = "
        __global__ void saxpy(float *x, float *y, float a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { y[i] = a * x[i] + y[i]; }
        }";
    run(
        src,
        LaunchConfig::d1(n.div_ceil(128), 128),
        &[
            Arg::Buf(bx),
            Arg::Buf(by),
            Arg::F32(3.0),
            Arg::I32(n as i32),
        ],
        &mut mem,
    );
    let out = mem.read_f32(by);
    for i in 0..n as usize {
        assert_eq!(out[i], 3.0 * i as f32 + 2.0 * i as f32, "lane {i}");
    }
}

#[test]
fn matvec_accumulation_loop() {
    // y = A * x with row-per-thread (the ATAX pattern).
    let n = 64usize;
    let a: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32) * 0.5).collect();
    let x: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&a);
    let bx = mem.alloc_f32(&x);
    let by = mem.alloc_zeroed(n as u32);
    let src = format!(
        "#define N {n}
         __global__ void mv(float *A, float *x, float *y) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     y[i] += A[i * N + j] * x[j];
                 }}
             }}
         }}"
    );
    run(
        &src,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(ba), Arg::Buf(bx), Arg::Buf(by)],
        &mut mem,
    );
    let out = mem.read_f32(by);
    for i in 0..n {
        let expect: f32 = (0..n).map(|j| a[i * n + j] * x[j]).sum();
        assert!(
            (out[i] - expect).abs() < 1e-3,
            "row {i}: {} vs {expect}",
            out[i]
        );
    }
}

#[test]
fn divergent_if_else() {
    let n = 64u32;
    let mut mem = GlobalMem::new();
    let b = mem.alloc_zeroed(n);
    let src = "
        __global__ void k(float *a, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                if (i % 2 == 0) { a[i] = 1.0f; } else { a[i] = 2.0f; }
            }
        }";
    run(
        src,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(b), Arg::I32(n as i32)],
        &mut mem,
    );
    let out = mem.read_f32(b);
    for i in 0..n as usize {
        assert_eq!(out[i], if i % 2 == 0 { 1.0 } else { 2.0 }, "lane {i}");
    }
}

#[test]
fn data_dependent_while_with_divergent_trip_counts() {
    // Each thread counts down from its own value.
    let n = 64u32;
    let mut mem = GlobalMem::new();
    let b = mem.alloc_zeroed(n);
    let src = "
        __global__ void k(float *out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                int c = i % 7;
                int acc = 0;
                while (c > 0) {
                    acc += c;
                    c = c - 1;
                }
                out[i] = (float)acc;
            }
        }";
    run(
        src,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(b), Arg::I32(n as i32)],
        &mut mem,
    );
    let out = mem.read_f32(b);
    for i in 0..n as usize {
        let c = i % 7;
        let expect = (c * (c + 1) / 2) as f32;
        assert_eq!(out[i], expect, "lane {i}");
    }
}

#[test]
fn break_with_divergent_exit() {
    let n = 64u32;
    let mut mem = GlobalMem::new();
    let b = mem.alloc_zeroed(n);
    // Each thread scans until it passes its own threshold, then breaks.
    let src = "
        __global__ void k(float *out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) {
                int found = -1;
                for (int j = 0; j < 100; j++) {
                    if (j * 3 > i) {
                        found = j;
                        break;
                    }
                }
                out[i] = (float)found;
            }
        }";
    run(
        src,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(b), Arg::I32(n as i32)],
        &mut mem,
    );
    let out = mem.read_f32(b);
    for i in 0..n as usize {
        let expect = (0..100).find(|j| j * 3 > i).unwrap() as f32;
        assert_eq!(out[i], expect, "lane {i}");
    }
}

#[test]
fn early_return_retires_lanes() {
    let n = 40u32; // partial warp + early return
    let mut mem = GlobalMem::new();
    let b = mem.alloc_zeroed(64);
    let src = "
        __global__ void k(float *out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i >= n) { return; }
            out[i] = 1.0f;
        }";
    run(
        src,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(b), Arg::I32(n as i32)],
        &mut mem,
    );
    let out = mem.read_f32(b);
    for i in 0..64usize {
        assert_eq!(out[i], if (i as u32) < n { 1.0 } else { 0.0 }, "lane {i}");
    }
}

#[test]
fn shared_memory_staging_with_barrier() {
    // Block-wide reversal through shared memory: requires a working
    // barrier and per-block shared segments.
    let mut mem = GlobalMem::new();
    let input: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let bi = mem.alloc_f32(&input);
    let bo = mem.alloc_zeroed(128);
    let src = "
        __global__ void rev(float *in, float *out) {
            __shared__ float buf[64];
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            buf[threadIdx.x] = in[i];
            __syncthreads();
            out[i] = buf[blockDim.x - 1 - threadIdx.x];
        }";
    run(
        src,
        LaunchConfig::d1(2, 64),
        &[Arg::Buf(bi), Arg::Buf(bo)],
        &mut mem,
    );
    let out = mem.read_f32(bo);
    for blk in 0..2usize {
        for t in 0..64usize {
            let i = blk * 64 + t;
            let expect = (blk * 64 + (63 - t)) as f32;
            assert_eq!(out[i], expect, "block {blk} thread {t}");
        }
    }
}

#[test]
fn intra_block_barrier_ordering_enforced() {
    // Warp 0 writes, all sync, warp 1 reads — must see warp 0's value.
    let mut mem = GlobalMem::new();
    let bo = mem.alloc_zeroed(64);
    let src = "
        __global__ void k(float *out) {
            __shared__ float flag[1];
            int w = threadIdx.x / 32;
            if (w == 0) { flag[0] = 42.0f; }
            __syncthreads();
            if (w == 1) { out[threadIdx.x] = flag[0]; }
        }";
    run(src, LaunchConfig::d1(1, 64), &[Arg::Buf(bo)], &mut mem);
    let out = mem.read_f32(bo);
    for t in 32..64 {
        assert_eq!(out[t], 42.0, "thread {t}");
    }
}

#[test]
fn multi_block_grid_covers_all_blocks() {
    let mut mem = GlobalMem::new();
    let bo = mem.alloc_zeroed(32 * 16);
    let src = "
        __global__ void k(float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            out[i] = (float)blockIdx.x;
        }";
    let stats = run(src, LaunchConfig::d1(16, 32), &[Arg::Buf(bo)], &mut mem);
    assert_eq!(stats.tbs, 16);
    let out = mem.read_f32(bo);
    for b in 0..16usize {
        for t in 0..32usize {
            assert_eq!(out[b * 32 + t], b as f32);
        }
    }
}

#[test]
fn nested_loops_with_inner_accumulation() {
    let mut mem = GlobalMem::new();
    let bo = mem.alloc_zeroed(32);
    let src = "
        __global__ void k(float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            int acc = 0;
            for (int a = 0; a < 4; a++) {
                for (int b = 0; b < 3; b++) {
                    acc += a * b + i;
                }
            }
            out[i] = (float)acc;
        }";
    run(src, LaunchConfig::d1(1, 32), &[Arg::Buf(bo)], &mut mem);
    let out = mem.read_f32(bo);
    for i in 0..32usize {
        let mut acc = 0;
        for a in 0..4 {
            for b in 0..3 {
                acc += a * b + i;
            }
        }
        assert_eq!(out[i], acc as f32, "lane {i}");
    }
}

#[test]
fn indirect_gather_loads() {
    let mut mem = GlobalMem::new();
    let idx: Vec<i32> = (0..64).map(|i| (i * 7) % 64).collect();
    let vals: Vec<f32> = (0..64).map(|i| i as f32 * 10.0).collect();
    let bidx = mem.alloc_i32(&idx);
    let bvals = mem.alloc_f32(&vals);
    let bo = mem.alloc_zeroed(64);
    let src = "
        __global__ void gather(int *idx, float *vals, float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            out[i] = vals[idx[i]];
        }";
    run(
        src,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(bidx), Arg::Buf(bvals), Arg::Buf(bo)],
        &mut mem,
    );
    let out = mem.read_f32(bo);
    for i in 0..64usize {
        assert_eq!(out[i], vals[idx[i] as usize], "lane {i}");
    }
}

#[test]
fn two_dimensional_blocks() {
    let mut mem = GlobalMem::new();
    let bo = mem.alloc_zeroed(16 * 16);
    let src = "
        __global__ void k(float *out, int w) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y * blockDim.y + threadIdx.y;
            out[y * w + x] = (float)(x + y * 100);
        }";
    let launch = LaunchConfig {
        grid: catt_ir::Dim3::xy(2, 2),
        block: catt_ir::Dim3::xy(8, 8),
    };
    run(src, launch, &[Arg::Buf(bo), Arg::I32(16)], &mut mem);
    let out = mem.read_f32(bo);
    for y in 0..16usize {
        for x in 0..16usize {
            assert_eq!(out[y * 16 + x], (x + y * 100) as f32, "({x},{y})");
        }
    }
}

#[test]
fn intrinsics_evaluate() {
    let mut mem = GlobalMem::new();
    let bo = mem.alloc_zeroed(32);
    let src = "
        __global__ void k(float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            out[i] = sqrtf((float)(i * i)) + fminf(1.0f, (float)i) + max(i, 3);
        }";
    run(src, LaunchConfig::d1(1, 32), &[Arg::Buf(bo)], &mut mem);
    let out = mem.read_f32(bo);
    for i in 0..32usize {
        let expect = i as f32 + (i as f32).min(1.0) + (i.max(3)) as f32;
        assert!(
            (out[i] - expect).abs() < 1e-4,
            "lane {i}: {} vs {expect}",
            out[i]
        );
    }
}
