//! Parallel-vs-sequential equivalence for the per-SM launch path.
//!
//! The parallel path (DESIGN.md "Parallel SM execution") runs every SM of
//! one launch on worker threads against a shared pre-launch snapshot plus
//! a private store log, then merges logs in ascending SM-id order. This
//! suite pins the contract:
//!
//! * bit-identical `LaunchStats` *and* output buffers between
//!   `sm_parallel = on` and `off` for every registry workload;
//! * the documented snapshot-vs-sequential memory-visibility difference
//!   on a deliberately cross-block-racy kernel;
//! * thread-budget clamping and error-path equivalence;
//! * the work-stealing dispatcher (`sm_steal`): same bit-identity across
//!   stealing on/off, every thread budget, and an adversarial launch
//!   where one SM carries nearly all the work (the LVMD shape stealing
//!   exists for).
//!
//! Modes are selected through the explicit `GpuConfig` fields, which win
//! over `CATT_SIM_SM_PARALLEL`/`CATT_SIM_SM_THREADS`/`CATT_SIM_STEAL` —
//! so this suite tests all sides regardless of what the environment
//! (e.g. check.sh's sequential-fallback pass) sets.

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats, SimError};
use catt_workloads::harness;
use catt_workloads::registry;

/// Multi-SM evaluation config forced into the given execution mode.
/// `sm_threads = 4` exercises real cross-thread execution even on a
/// single-core CI runner (the default budget there would be 1).
fn mode_config(parallel: bool) -> GpuConfig {
    let mut c = GpuConfig::titan_v();
    c.num_sms = 4;
    c.sm_parallel = Some(parallel);
    c.sm_threads = Some(4);
    c
}

fn assert_stats_identical(a: &LaunchStats, b: &LaunchStats, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(a.l1_accesses, b.l1_accesses, "{what}: l1_accesses");
    assert_eq!(a.l1_hits, b.l1_hits, "{what}: l1_hits");
    assert_eq!(
        a.offchip_requests, b.offchip_requests,
        "{what}: offchip_requests"
    );
    assert_eq!(a.l2_accesses, b.l2_accesses, "{what}: l2_accesses");
    assert_eq!(a.l2_hits, b.l2_hits, "{what}: l2_hits");
    assert_eq!(a.l2_evictions, b.l2_evictions, "{what}: l2_evictions");
    assert_eq!(a.tbs, b.tbs, "{what}: tbs");
    assert_eq!(a.warps, b.warps, "{what}: warps");
    assert_eq!(
        a.resident_tbs_per_sm, b.resident_tbs_per_sm,
        "{what}: resident_tbs_per_sm"
    );
}

/// Every registry workload (validation on) produces bit-identical stats
/// and output buffers in both execution modes. The workloads' cross-block
/// stores are either to disjoint per-block ranges or write identical
/// values (BFS's frontier flags), so snapshot semantics cannot diverge
/// from the sequential order here.
#[test]
fn registry_workloads_are_bit_identical_across_modes() {
    harness::set_mem_digest_capture(true);
    for w in registry::all_workloads() {
        let kernels = w.kernels();
        let par = (w.run)(&kernels, &mode_config(true), true);
        let par_mem = harness::last_mem_digest()
            .unwrap_or_else(|| panic!("{}: no digest captured (parallel)", w.abbrev));
        let seq = (w.run)(&kernels, &mode_config(false), true);
        let seq_mem = harness::last_mem_digest()
            .unwrap_or_else(|| panic!("{}: no digest captured (sequential)", w.abbrev));
        assert_stats_identical(&par, &seq, w.abbrev);
        assert_eq!(
            par_mem, seq_mem,
            "{}: final memory image differs between modes",
            w.abbrev
        );
    }
    harness::set_mem_digest_capture(false);
}

/// A deliberately cross-block-racy kernel documenting the snapshot
/// semantics: block `b` publishes `a[b] = a[b + 1] + 1`, so what block
/// `b` *reads* depends on whether the block owning `a[b + 1]` already
/// ran.
///
/// * Parallel mode: every SM reads the pre-launch snapshot, so every
///   block sees the initial `a` — the semantics no real GPU is further
///   from guaranteeing than this.
/// * Sequential mode: SM 1 runs after SM 0 and observes its stores
///   mid-launch (the historical behaviour, kept as the fallback).
///
/// Neither order is "the right one" — CUDA leaves inter-block visibility
/// within a launch undefined — but each mode's result is deterministic,
/// and the two differ exactly where the race is.
#[test]
fn racy_cross_block_kernel_documents_snapshot_semantics() {
    let k = parse_kernel(
        "__global__ void chain(float *a) {
             if (threadIdx.x == 0) {
                 a[blockIdx.x] = a[blockIdx.x + 1] + 1.0f;
             }
         }",
    )
    .unwrap();
    let run = |parallel: bool| {
        let mut c = GpuConfig::titan_v();
        c.num_sms = 2; // SM 0: blocks 0, 2; SM 1: blocks 1, 3
        c.sm_parallel = Some(parallel);
        c.sm_threads = Some(2);
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(&[0.0, 0.0, 0.0, 0.0, 100.0]);
        let mut gpu = Gpu::new(c);
        gpu.launch(&k, LaunchConfig::d1(4, 32), &[Arg::Buf(a)], &mut mem)
            .unwrap();
        mem.read_f32(a)
    };
    // Snapshot: every block reads initial a = [0, 0, 0, 0, 100].
    assert_eq!(run(true), vec![1.0, 1.0, 1.0, 101.0, 100.0]);
    // Sequential: SM 0 commits a[0] = 1, a[2] = 1 first; SM 1 then reads
    // the updated a[2] for block 1 and the initial a[4] for block 3.
    assert_eq!(run(false), vec![1.0, 2.0, 1.0, 101.0, 100.0]);
}

/// Synthetic multi-SM kernel with barriers, shared memory, and partial
/// warps: stats and memory identical across modes and across thread
/// budgets (1 thread, clamped-to-SM-count, oversized budget).
#[test]
fn thread_budget_never_changes_results() {
    let k = parse_kernel(
        "__global__ void smem_sum(float *out, float *in, int n) {
             __shared__ float buf[48];
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             buf[threadIdx.x] = (i < n) ? in[i] : 0.0f;
             __syncthreads();
             float acc = 0.0f;
             for (int j = 0; j < 48; j++) { acc = acc + buf[j]; }
             if (i < n) { out[i] = acc; }
         }",
    )
    .unwrap();
    let run = |parallel: bool, steal: bool, threads: usize| {
        let mut c = GpuConfig::titan_v();
        c.num_sms = 3;
        c.sm_parallel = Some(parallel);
        c.sm_steal = Some(steal);
        c.sm_threads = Some(threads);
        let mut mem = GlobalMem::new();
        let n = 7 * 48; // 7 blocks of 48 threads (partial warps) over 3 SMs
        let input: Vec<f32> = (0..n).map(|v| (v % 13) as f32).collect();
        let inb = mem.alloc_f32(&input);
        let outb = mem.alloc_zeroed(n as u32);
        let mut gpu = Gpu::new(c);
        let stats = gpu
            .launch(
                &k,
                LaunchConfig::d1(7, 48),
                &[Arg::Buf(outb), Arg::Buf(inb), Arg::I32(n)],
                &mut mem,
            )
            .unwrap();
        (stats, mem.read_f32(outb))
    };
    let (seq_stats, seq_out) = run(false, false, 1);
    for steal in [false, true] {
        for threads in [1, 2, 3, 64] {
            let (par_stats, par_out) = run(true, steal, threads);
            let what = format!("steal={steal} threads={threads}");
            assert_stats_identical(&par_stats, &seq_stats, &what);
            assert_eq!(par_out, seq_out, "output with {what}");
        }
    }
}

/// The work-stealing dispatcher on the workload shape it exists for: one
/// dominant SM. Every fourth block runs ~100× the work of the others,
/// and with `num_sms = 4` the round-robin split hands *all* heavy blocks
/// to SM 0 (LVMD's skew in miniature). Whatever worker claims what —
/// stealing on or off, budgets below/at/above the SM count — stats and
/// memory must equal the sequential baseline bit-for-bit, because
/// outcomes commit in ascending SM-id order regardless of claim order.
#[test]
fn work_stealing_is_bit_identical_on_a_dominant_sm() {
    let k = parse_kernel(
        "__global__ void skew(float *out, float *in) {
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             int rounds = (blockIdx.x % 4 == 0) ? 96 : 1;
             float acc = 0.0f;
             for (int r = 0; r < rounds; r++) {
                 acc = acc + in[(i + r) % 256];
             }
             out[i] = acc;
         }",
    )
    .unwrap();
    let n = 16 * 64;
    let run = |parallel: bool, steal: bool, threads: usize| {
        let mut c = GpuConfig::titan_v();
        c.num_sms = 4; // blocks 0, 4, 8, 12 (the heavy ones) all land on SM 0
        c.sm_parallel = Some(parallel);
        c.sm_steal = Some(steal);
        c.sm_threads = Some(threads);
        let mut mem = GlobalMem::new();
        let input: Vec<f32> = (0..256).map(|v| (v % 7) as f32 + 0.5).collect();
        let inb = mem.alloc_f32(&input);
        let outb = mem.alloc_zeroed(n);
        let mut gpu = Gpu::new(c);
        let stats = gpu
            .launch(
                &k,
                LaunchConfig::d1(16, 64),
                &[Arg::Buf(outb), Arg::Buf(inb)],
                &mut mem,
            )
            .unwrap();
        (stats, mem.read_f32(outb))
    };
    let (seq_stats, seq_out) = run(false, false, 1);
    assert!(seq_stats.cycles > 0);
    for steal in [false, true] {
        for threads in [1, 2, 8, 16] {
            let (par_stats, par_out) = run(true, steal, threads);
            let what = format!("steal={steal} threads={threads}");
            assert_stats_identical(&par_stats, &seq_stats, &what);
            assert_eq!(par_out, seq_out, "output with {what}");
        }
    }
}

/// Error-path equivalence: a spinning kernel exhausts fuel identically in
/// both modes (same error variant, same reported cycle count), and the
/// parallel path reports the lowest failing SM id's error first — the
/// sequential order.
#[test]
fn fuel_exhaustion_is_identical_across_modes() {
    let k = parse_kernel(
        "__global__ void spin(float *a) {
             for (int i = 0; i >= 0; i++) { a[0] = a[0] + 1.0f; }
         }",
    )
    .unwrap();
    let run = |parallel: bool| {
        let mut c = GpuConfig::titan_v();
        c.num_sms = 2;
        c.sm_parallel = Some(parallel);
        c.sm_threads = Some(2);
        c.sim_fuel = Some(5_000);
        let mut mem = GlobalMem::new();
        let a = mem.alloc_zeroed(8);
        let mut gpu = Gpu::new(c);
        gpu.launch(&k, LaunchConfig::d1(4, 32), &[Arg::Buf(a)], &mut mem)
            .unwrap_err()
    };
    let par = run(true);
    let seq = run(false);
    assert!(
        matches!(par, SimError::FuelExhausted { .. }),
        "parallel: {par:?}"
    );
    match (&par, &seq) {
        (
            SimError::FuelExhausted {
                cycles: pc,
                kernel: pk,
            },
            SimError::FuelExhausted {
                cycles: sc,
                kernel: sk,
            },
        ) => {
            assert_eq!(pc, sc, "cycle counts at exhaustion");
            assert_eq!(pk, sk);
        }
        other => panic!("mismatched error variants: {other:?}"),
    }
}

/// Post-error memory contract (mid-launch state on error is *unspecified*
/// by CUDA; each mode's behaviour is still deterministic and documented):
/// in both modes the error of the lowest failing SM id surfaces, and SMs
/// with lower ids that completed have their stores committed. The one
/// documented difference: the sequential path has already written the
/// failing SM's partial stores into memory, while the parallel path drops
/// the failing SM's log entirely.
#[test]
fn post_error_memory_commits_completed_lower_id_sms() {
    let k = parse_kernel(
        "__global__ void half_spin(float *a) {
             a[blockIdx.x] = 7.0f;
             if (blockIdx.x == 1) {
                 for (int i = 0; i >= 0; i++) { a[8] = a[8] + 1.0f; }
             }
         }",
    )
    .unwrap();
    let run = |parallel: bool| {
        let mut c = GpuConfig::titan_v();
        c.num_sms = 2; // SM 0: blocks 0, 2 (finish); SM 1: block 1 (spins)
        c.sm_parallel = Some(parallel);
        c.sm_threads = Some(2);
        c.sim_fuel = Some(5_000);
        let mut mem = GlobalMem::new();
        let a = mem.alloc_zeroed(16);
        let mut gpu = Gpu::new(c);
        let err = gpu
            .launch(&k, LaunchConfig::d1(3, 32), &[Arg::Buf(a)], &mut mem)
            .unwrap_err();
        (err, mem.read_f32(a))
    };
    let (par_err, par_mem) = run(true);
    let (seq_err, seq_mem) = run(false);
    assert!(matches!(par_err, SimError::FuelExhausted { .. }));
    assert!(matches!(seq_err, SimError::FuelExhausted { .. }));
    // SM 0 completed: its stores are committed in both modes.
    for mem in [&par_mem, &seq_mem] {
        assert_eq!(mem[0], 7.0, "block 0 output committed");
        assert_eq!(mem[2], 7.0, "block 2 output committed");
    }
    // The failing SM's partial stores: visible sequentially (it wrote
    // memory in place), absent in parallel (its log is dropped).
    assert_eq!(seq_mem[1], 7.0);
    assert!(seq_mem[8] > 0.0, "sequential keeps the partial spin stores");
    assert_eq!(par_mem[1], 0.0);
    assert_eq!(par_mem[8], 0.0, "parallel drops the failing SM's log");
}
