//! Guard-rail integration tests: every user-reachable failure on the
//! execution path must surface as a structured [`SimError`], never a
//! panic. Fuel budgets are set per-test through `GpuConfig::sim_fuel`
//! (the programmatic knob behind `CATT_SIM_FUEL`), so no test depends on
//! process environment.

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, SimError};

fn launch(
    src: &str,
    launch: LaunchConfig,
    args: &[Arg],
    mem: &mut GlobalMem,
    fuel: Option<u64>,
) -> Result<catt_sim::LaunchStats, SimError> {
    let k = parse_kernel(src).unwrap();
    let mut config = GpuConfig::small();
    config.sim_fuel = fuel;
    Gpu::new(config).launch(&k, launch, args, mem)
}

#[test]
fn starved_barrier_is_reported_as_deadlock() {
    // Warp 0 grinds through a long loop while warp 1 parks at the
    // barrier. Under a tiny fuel budget the loop never finishes, so the
    // exhaustion is classified as a barrier deadlock (a warp was still
    // parked waiting on peers when the budget ran out).
    let src = "
        __global__ void starve(float *a, int n) {
            int w = threadIdx.x / 32;
            if (w == 0) {
                for (int j = 0; j < n; j++) { a[j % 32] += 1.0; }
            }
            __syncthreads();
            a[threadIdx.x] = 2.0;
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(64);
    let err = launch(
        src,
        LaunchConfig::d1(1, 64),
        &[Arg::Buf(ba), Arg::I32(1_000_000)],
        &mut mem,
        Some(2_000),
    )
    .unwrap_err();
    match err {
        SimError::BarrierDeadlock {
            kernel,
            parked_warps,
        } => {
            assert_eq!(kernel, "starve");
            assert!(parked_warps >= 1, "parked {parked_warps}");
        }
        other => panic!("expected BarrierDeadlock, got {other}"),
    }
}

#[test]
fn runaway_loop_exhausts_fuel() {
    // A single warp spinning in a long loop with no barrier: fuel runs
    // out with nothing parked, so the error is FuelExhausted.
    let src = "
        __global__ void spin(float *a, int n) {
            for (int j = 0; j < n; j++) { a[j % 32] += 1.0; }
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let err = launch(
        src,
        LaunchConfig::d1(1, 32),
        &[Arg::Buf(ba), Arg::I32(1_000_000)],
        &mut mem,
        Some(2_000),
    )
    .unwrap_err();
    match err {
        SimError::FuelExhausted { kernel, cycles } => {
            assert_eq!(kernel, "spin");
            assert!(cycles >= 2_000, "cycles {cycles}");
        }
        other => panic!("expected FuelExhausted, got {other}"),
    }
    // The message points the user at the escape hatch.
    let rendered = format!(
        "{}",
        SimError::FuelExhausted {
            kernel: "spin".into(),
            cycles: 2_000,
        }
    );
    assert!(rendered.contains("CATT_SIM_FUEL"), "{rendered}");
}

#[test]
fn fuel_exhaustion_never_overshoots_the_budget() {
    // Regression (ISSUE: fuel-budget overshoot in the skip-ahead path):
    // one warp issues a missing global load, then everything stalls on
    // the ~400-cycle off-chip latency. The idle-cycle skip-ahead would
    // jump straight past the 100-cycle budget and report an exhaustion
    // cycle count (and, profiled, charge stall slots) far beyond it; the
    // skip target must clamp to the fuel limit instead.
    let src = "
        __global__ void one_load(float *a) {
            a[threadIdx.x] = a[threadIdx.x] + 1.0f;
        }";
    let fuel = 100u64;
    let run = |profile: bool| {
        let k = parse_kernel(src).unwrap();
        let mut config = GpuConfig::small();
        config.sim_fuel = Some(fuel);
        config.profile = Some(profile);
        let mut mem = GlobalMem::new();
        let ba = mem.alloc_zeroed(32);
        Gpu::new(config)
            .launch(&k, LaunchConfig::d1(1, 32), &[Arg::Buf(ba)], &mut mem)
            .unwrap_err()
    };
    match run(false) {
        SimError::FuelExhausted { cycles, .. } => {
            assert_eq!(
                cycles, fuel,
                "exhaustion must report exactly the budget, not the skip target"
            );
        }
        other => panic!("expected FuelExhausted, got {other}"),
    }
    // Profiled variant: the partial shard's cycle count honours the
    // budget too, and the charged issue slots stay bounded by it (the
    // cut-off cycle adds one final Fuel charge per scheduler).
    catt_sim::profile::set_capture(true);
    let err = run(true);
    let profiles = catt_sim::profile::take_captured();
    catt_sim::profile::set_capture(false);
    assert!(matches!(err, SimError::FuelExhausted { .. }), "{err}");
    assert_eq!(profiles.len(), 1);
    let p = &profiles[0];
    assert!(!p.complete);
    for sm in &p.sms {
        assert_eq!(sm.cycles, fuel, "SM {}: profiled cycles", sm.sm_id);
        let stalls: u64 = sm.stall_cycles.iter().sum();
        let sched = sm.schedulers as u64;
        assert!(
            sm.instructions + stalls <= (fuel + 1) * sched,
            "SM {}: charged {} slots, budget allows at most {}",
            sm.sm_id,
            sm.instructions + stalls,
            (fuel + 1) * sched
        );
    }
}

#[test]
fn same_kernel_finishes_under_the_default_budget() {
    // The derived footprint-based budget is generous enough for a real
    // (finite) run of the same loop.
    let src = "
        __global__ void spin(float *a, int n) {
            for (int j = 0; j < n; j++) { a[j % 32] += 1.0; }
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let stats = launch(
        src,
        LaunchConfig::d1(1, 32),
        &[Arg::Buf(ba), Arg::I32(100)],
        &mut mem,
        None,
    )
    .unwrap();
    assert!(stats.cycles > 0);
}

#[test]
fn argument_count_mismatch_is_a_bad_argument() {
    let src = "
        __global__ void two(float *a, int n) {
            a[threadIdx.x] = 1.0;
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let err = launch(
        src,
        LaunchConfig::d1(1, 32),
        &[Arg::Buf(ba)], // kernel expects two arguments
        &mut mem,
        None,
    )
    .unwrap_err();
    match err {
        SimError::BadArgument { kernel, message } => {
            assert_eq!(kernel, "two");
            assert!(message.contains('2') && message.contains('1'), "{message}");
        }
        other => panic!("expected BadArgument, got {other}"),
    }
}

#[test]
fn host_write_past_buffer_end_names_the_buffer() {
    let mut mem = GlobalMem::new();
    let b = mem.alloc_zeroed(4);
    let err = mem.write_f32(b, &[0.0; 8]).unwrap_err();
    match err {
        SimError::OutOfBounds { buffer, .. } => {
            assert!(!buffer.is_empty());
        }
        other => panic!("expected OutOfBounds, got {other}"),
    }
    // The original contents are untouched after a rejected write.
    assert_eq!(mem.read_f32(b), vec![0.0; 4]);
}
