//! Tests for the DYNCTA-style dynamic thread-block throttler (the
//! hardware-monitoring baseline of paper §2.2).

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::config::DynctaConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

fn thrashing_kernel() -> String {
    // The divergent row-walk: at (8 warps × 4 TBs) on 32 KB it thrashes.
    "#define N 1024
     #define NY 256
     __global__ void k(float *A, float *tmp) {
         int i = blockIdx.x * blockDim.x + threadIdx.x;
         if (i < N) {
             for (int j = 0; j < NY; j++) {
                 tmp[i] += A[i * NY + j];
             }
         }
     }"
    .to_string()
}

fn run(dyncta: Option<DynctaConfig>) -> (LaunchStats, Vec<f32>) {
    let k = parse_kernel(&thrashing_kernel()).unwrap();
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.l1_cap_bytes = Some(32 * 1024);
    cfg.dyncta = dyncta;
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; 1024 * 256]);
    let tmp = mem.alloc_zeroed(1024);
    let mut gpu = Gpu::new(cfg);
    let stats = gpu
        .launch(
            &k,
            LaunchConfig::d1(4, 256),
            &[Arg::Buf(a), Arg::Buf(tmp)],
            &mut mem,
        )
        .unwrap();
    (stats, mem.read_f32(tmp))
}

#[test]
fn dyncta_preserves_functional_results() {
    let (_, base_out) = run(None);
    let (_, dyn_out) = run(Some(DynctaConfig::default()));
    assert_eq!(base_out, dyn_out);
    assert!(base_out.iter().all(|&v| v == 256.0));
}

#[test]
fn dyncta_improves_a_thrashing_kernel() {
    let (base, _) = run(None);
    let (dynr, _) = run(Some(DynctaConfig::default()));
    assert!(
        dynr.cycles < base.cycles,
        "dynamic throttling should help a thrashing kernel: {} vs {}",
        dynr.cycles,
        base.cycles
    );
    assert!(
        dynr.l1_hit_rate() > base.l1_hit_rate(),
        "hit rate should rise: {:.3} vs {:.3}",
        dynr.l1_hit_rate(),
        base.l1_hit_rate()
    );
}

#[test]
fn dyncta_leaves_a_healthy_kernel_roughly_alone() {
    // A coalesced streaming kernel: the stall fraction stays moderate and
    // the throttler must not cripple it (within 25% of plain hardware —
    // its sampling makes it slightly imprecise by nature).
    let src = "
        __global__ void stream(float *a, float *b) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            b[i] = a[i] * 2.0f;
        }";
    let k = parse_kernel(src).unwrap();
    let run = |dyncta: Option<DynctaConfig>| {
        let mut cfg = GpuConfig::titan_v_1sm();
        cfg.dyncta = dyncta;
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(&vec![1.0; 8192]);
        let b = mem.alloc_zeroed(8192);
        let mut gpu = Gpu::new(cfg);
        gpu.launch(
            &k,
            LaunchConfig::d1(32, 256),
            &[Arg::Buf(a), Arg::Buf(b)],
            &mut mem,
        )
        .unwrap()
    };
    let base = run(None);
    let dynr = run(Some(DynctaConfig::default()));
    assert!(
        (dynr.cycles as f64) < base.cycles as f64 * 1.25,
        "dynamic throttling must not cripple a healthy kernel: {} vs {}",
        dynr.cycles,
        base.cycles
    );
}

/// The paper's argument for compile-time decisions: a *phase change*
/// (divergent loop followed by a coalesced loop in one kernel) forces the
/// dynamic scheme to re-converge, while CATT throttles exactly the
/// divergent loop. CATT must be at least as good as DYNCTA here.
#[test]
fn catt_beats_dyncta_on_phase_change() {
    let src = "#define N 1024
        #define NY 256
        __global__ void phases(float *A, float *tmp, float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < N) {
                for (int j = 0; j < NY; j++) {
                    tmp[i] += A[i * NY + j];
                }
                float acc = 0.0f;
                for (int j = 0; j < NY; j++) {
                    acc += A[j * N + i];
                }
                out[i] = acc + tmp[i];
            }
        }";
    let kernel = parse_kernel(src).unwrap();
    let launch = LaunchConfig::d1(4, 256);
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.l1_cap_bytes = Some(32 * 1024);

    let exec = |k: &catt_ir::Kernel, dyncta: Option<DynctaConfig>| {
        let mut c = cfg.clone();
        c.dyncta = dyncta;
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(&vec![1.0; 1024 * 256]);
        let tmp = mem.alloc_zeroed(1024);
        let out = mem.alloc_zeroed(1024);
        let mut gpu = Gpu::new(c);
        let stats = gpu
            .launch(
                k,
                launch,
                &[Arg::Buf(a), Arg::Buf(tmp), Arg::Buf(out)],
                &mut mem,
            )
            .unwrap();
        assert!(mem.read_f32(out).iter().all(|&v| v == 512.0));
        stats
    };

    let baseline = exec(&kernel, None);
    let dyncta = exec(&kernel, Some(DynctaConfig::default()));
    // CATT-transformed kernel on plain hardware.
    let pipe = catt_core::pipeline::Pipeline::new(cfg.clone());
    let compiled = pipe.compile_kernel(&kernel, launch).unwrap();
    assert!(compiled.is_transformed());
    let catt = exec(&compiled.transformed, None);

    assert!(
        catt.cycles < baseline.cycles,
        "CATT must beat baseline: {} vs {}",
        catt.cycles,
        baseline.cycles
    );
    assert!(
        catt.cycles <= dyncta.cycles,
        "compile-time per-loop decisions must not lose to the reactive \
         scheme on a phase-changing kernel: CATT {} vs DYNCTA {}",
        catt.cycles,
        dyncta.cycles
    );
}
