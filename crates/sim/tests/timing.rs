//! Timing-model integration tests: the simulator must reproduce the
//! qualitative cache-contention behaviour the paper builds on (§3).

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

/// The ATAX-like kernel of paper Fig. 1: each thread strides through a row
/// of A (inter-thread distance = N elements, fully diverged) while reusing
/// tmp[i] and B[j].
fn atax_like(n: usize, l1_kb: u32, blocks: u32, tpb: u32) -> LaunchStats {
    let src = format!(
        "#define N {n}
         __global__ void atax1(float *A, float *B, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j] * B[j];
                 }}
             }}
         }}"
    );
    let k = parse_kernel(&src).unwrap();
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.l1_cap_bytes = Some(l1_kb * 1024);
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; n * n]);
    let b = mem.alloc_f32(&vec![2.0; n]);
    let tmp = mem.alloc_zeroed(n as u32);
    let mut gpu = Gpu::new(cfg);
    let stats = gpu
        .launch(
            &k,
            LaunchConfig::d1(blocks, tpb),
            &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
            &mut mem,
        )
        .unwrap();
    // Functional check rides along: every *covered* element is 2N (the
    // grid may deliberately cover only a prefix in throttling tests).
    let covered = ((blocks * tpb) as usize).min(n);
    let out = mem.read_f32(tmp);
    assert!(out[..covered].iter().all(|&v| v == 2.0 * n as f32));
    stats
}

/// A perfectly coalesced streaming kernel: neighbours touch neighbouring
/// addresses.
fn coalesced_stream(n: usize, iters: usize) -> LaunchStats {
    let src = format!(
        "#define N {n}
         #define IT {iters}
         __global__ void stream(float *a, float *out) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             float acc = 0.0f;
             for (int j = 0; j < IT; j++) {{
                 acc += a[i + j * 32];
             }}
             out[i] = acc;
         }}"
    );
    let k = parse_kernel(&src).unwrap();
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![1.0; n + iters * 32]);
    let out = mem.alloc_zeroed(n as u32);
    let mut gpu = Gpu::new(GpuConfig::titan_v_1sm());
    gpu.launch(
        &k,
        LaunchConfig::d1((n as u32) / 256, 256),
        &[Arg::Buf(a), Arg::Buf(out)],
        &mut mem,
    )
    .unwrap()
}

#[test]
fn divergent_kernel_thrashes_small_l1_and_not_large() {
    // 512 rows × 512 iters, 2 blocks of 256 threads on one SM: the warp
    // working set is 16 warps × 32 lines = 512 lines = 64 KB per access
    // round. On a 32 KB L1D that thrashes; on a 128 KB L1D row-lines
    // survive between iterations and hit.
    let small = atax_like(512, 32, 2, 256);
    let large = atax_like(512, 128, 2, 256);
    assert!(
        small.l1_hit_rate() < 0.5,
        "32 KB should thrash: hit rate {:.3}",
        small.l1_hit_rate()
    );
    assert!(
        large.l1_hit_rate() > small.l1_hit_rate() + 0.2,
        "128 KB must hit far more: {:.3} vs {:.3}",
        large.l1_hit_rate(),
        small.l1_hit_rate()
    );
    assert!(
        large.cycles < small.cycles,
        "more cache must not be slower: {} vs {}",
        large.cycles,
        small.cycles
    );
}

#[test]
fn coalesced_kernel_is_cache_friendly() {
    let s = coalesced_stream(4096, 64);
    // Fully coalesced: one transaction per warp access, and consecutive
    // iterations reuse nothing but neighbours fetch whole lines: hit rate
    // comes from 4 warps sharing... at minimum far fewer off-chip requests
    // than accesses*32.
    assert!(s.l1_accesses > 0);
    let requests_per_access = s.offchip_requests as f64 / s.l1_accesses as f64;
    assert!(
        requests_per_access <= 1.0,
        "coalesced stream should not amplify requests: {requests_per_access:.2}"
    );
}

#[test]
fn fewer_resident_warps_raise_hit_rate_under_contention() {
    // Same total work, smaller blocks → fewer resident warps per SM
    // (the TLP/footprint trade-off of paper Fig. 3).
    let n = 512;
    let crowded = atax_like(n, 32, 2, 256); // 16 warps resident
    let throttled = atax_like(n, 32, 8, 64); // 8×2=16... blocks of 2 warps
                                             // With 64-thread blocks the SM still fills its warp slots unless the
                                             // block count per SM is limited; instead compare hit rates at equal
                                             // resident warps but different L1 pressure... use 1 block of 64:
    let light = atax_like(n, 32, 1, 64); // 2 warps resident, partial grid
    assert!(
        light.l1_hit_rate() > crowded.l1_hit_rate(),
        "2 warps ({:.3}) must hit more than 16 warps ({:.3}) on 32 KB",
        light.l1_hit_rate(),
        crowded.l1_hit_rate()
    );
    let _ = throttled;
}

#[test]
fn barrier_parked_warps_do_not_touch_cache() {
    // Warp-throttled form (paper Fig. 4, N=2 on a 2-warp block): the two
    // warp groups run their loops one after the other. Footprint halves.
    let n = 256;
    let plain = format!(
        "#define N {n}
         __global__ void k(float *A, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             for (int j = 0; j < N; j++) {{
                 tmp[i] += A[i * N + j];
             }}
         }}"
    );
    let throttled = format!(
        "#define N {n}
         #define WS 32
         __global__ void k(float *A, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (threadIdx.x / WS >= 0 && threadIdx.x / WS < 4) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j];
                 }}
             }}
             __syncthreads();
             if (threadIdx.x / WS >= 4 && threadIdx.x / WS < 8) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j];
                 }}
             }}
             __syncthreads();
         }}"
    );
    let run = |src: &str| {
        let k = parse_kernel(src).unwrap();
        let mut cfg = GpuConfig::titan_v_1sm();
        cfg.l1_cap_bytes = Some(32 * 1024);
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(&vec![1.0; n * n]);
        let tmp = mem.alloc_zeroed(n as u32);
        let mut gpu = Gpu::new(cfg);
        let stats = gpu
            .launch(
                &k,
                LaunchConfig::d1(1, 256),
                &[Arg::Buf(a), Arg::Buf(tmp)],
                &mut mem,
            )
            .unwrap();
        assert!(mem.read_f32(tmp).iter().all(|&v| v == n as f32));
        stats
    };
    let p = run(&plain);
    let t = run(&throttled);
    assert!(
        t.l1_hit_rate() > p.l1_hit_rate(),
        "warp throttling must raise hit rate: {:.3} vs {:.3}",
        t.l1_hit_rate(),
        p.l1_hit_rate()
    );
}

#[test]
fn dummy_shared_reduces_resident_tbs() {
    // TB throttling (paper Fig. 5): a dummy __shared__ array halves
    // occupancy via Eq. 1.
    let base = "
        __global__ void k(float *a) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            a[i] = 1.0f;
        }";
    let throttled = "
        __global__ void k(float *a) {
            __shared__ float dummy_shared[12288];
            dummy_shared[threadIdx.x] = 0.0f;
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            a[i] = 1.0f;
        }";
    let run = |src: &str| {
        let k = parse_kernel(src).unwrap();
        let cfg = GpuConfig::titan_v_1sm().with_smem_for(96 * 1024).unwrap();
        let mut mem = GlobalMem::new();
        let a = mem.alloc_zeroed(8 * 256);
        let mut gpu = Gpu::new(cfg);
        gpu.launch(&k, LaunchConfig::d1(8, 256), &[Arg::Buf(a)], &mut mem)
            .unwrap()
    };
    let b = run(base);
    let t = run(throttled);
    assert_eq!(b.resident_tbs_per_sm, 8);
    assert_eq!(
        t.resident_tbs_per_sm, 2,
        "48 KB dummy on 96 KB carve-out → 2 TBs"
    );
}

#[test]
fn multi_sm_splits_work_and_shortens_critical_path() {
    let n = 1024;
    let src = format!(
        "#define N {n}
         __global__ void k(float *a) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{ a[i] = a[i] + 1.0f; }}
         }}"
    );
    let k = parse_kernel(&src).unwrap();
    let run = |sms: u32| {
        let mut cfg = GpuConfig::titan_v();
        cfg.num_sms = sms;
        let mut mem = GlobalMem::new();
        let a = mem.alloc_zeroed(n);
        let mut gpu = Gpu::new(cfg);
        let s = gpu
            .launch(&k, LaunchConfig::d1(32, 32), &[Arg::Buf(a)], &mut mem)
            .unwrap();
        assert!(mem.read_f32(a).iter().all(|&v| v == 1.0));
        s
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.tbs, 32);
    assert_eq!(four.tbs, 32);
    assert!(
        four.cycles < one.cycles,
        "4 SMs must beat 1 SM: {} vs {}",
        four.cycles,
        one.cycles
    );
}

#[test]
fn request_trace_records_coalescing_degree() {
    let src = "
        #define N 128
        __global__ void k(float *a, float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            float acc = 0.0f;
            for (int j = 0; j < 16; j++) {
                acc += a[i * N + j];
            }
            out[i] = acc;
        }";
    let k = parse_kernel(src).unwrap();
    let mut cfg = GpuConfig::titan_v_1sm();
    cfg.trace_requests = true;
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&vec![0.5; 128 * 128]);
    let out = mem.alloc_zeroed(64);
    let mut gpu = Gpu::new(cfg);
    let stats = gpu
        .launch(
            &k,
            LaunchConfig::d1(2, 32),
            &[Arg::Buf(a), Arg::Buf(out)],
            &mut mem,
        )
        .unwrap();
    assert!(!stats.trace.requests.is_empty());
    // The strided A-loads are fully diverged: 32 lines per access.
    assert!(stats.trace.requests.contains(&32));
    // The coalesced out-store is 1 line.
    assert!(stats.trace.requests.contains(&1));
}

#[test]
fn instructions_scale_with_trip_count() {
    let mut cyc = Vec::new();
    for iters in [8usize, 16, 32] {
        let s = coalesced_stream(1024, iters);
        cyc.push(s.instructions);
    }
    assert!(cyc[1] > cyc[0] && cyc[2] > cyc[1]);
    // Roughly linear: doubling iterations roughly doubles instructions.
    let ratio = cyc[2] as f64 / cyc[1] as f64;
    assert!((1.5..=2.5).contains(&ratio), "ratio {ratio:.2}");
}
