//! Randomized tests for the L1D model and the coalescer-facing invariants,
//! drawn from a fixed-seed [`catt_prng::Rng`] so every run sees the same
//! traces.

use catt_prng::Rng;
use catt_sim::cache::L1Cache;
use catt_sim::config::L1Config;

fn cache(size_lines: u32, assoc: u32) -> L1Cache {
    L1Cache::new(L1Config {
        size_bytes: size_lines * 128,
        line_bytes: 128,
        assoc,
    })
}

fn addr_vec(r: &mut Rng, max_addr: u32, max_len: usize) -> Vec<u32> {
    let len = r.range_usize(1, max_len);
    (0..len).map(|_| r.range_u32(0, max_addr)).collect()
}

/// Accounting invariant: hits + merges + off-chip-loads == accesses
/// (stores are counted separately), and residency never exceeds capacity.
#[test]
fn accounting_invariants() {
    let mut r = Rng::from_tag("cache-accounting");
    for case in 0..256 {
        let addrs = addr_vec(&mut r, 1 << 20, 600);
        let size_lines = *r.choose(&[8u32, 32, 256]);
        let assoc = *r.choose(&[2u32, 4, 8]);
        let mut c = cache(size_lines, assoc);
        let mut t = 0u64;
        let mut load_offchip = 0u64;
        for a in &addrs {
            let res = c.access_load(*a, t, 28, || t + 400);
            if res.offchip {
                load_offchip += 1;
            }
            assert!(res.data_ready >= t, "case {case}");
            t += 7;
        }
        assert_eq!(
            c.hits + c.mshr_merges + load_offchip,
            c.accesses,
            "case {case}: {size_lines} lines, assoc {assoc}"
        );
        assert_eq!(c.offchip_requests, load_offchip, "case {case}");
        assert!(c.resident_lines() <= size_lines as usize, "case {case}");
    }
}

/// Inclusion-ish monotonicity: a larger cache of the same geometry never
/// produces more off-chip requests on the same trace.
#[test]
fn bigger_cache_never_requests_more() {
    let mut r = Rng::from_tag("cache-monotonic");
    for case in 0..256 {
        let addrs = addr_vec(&mut r, 1 << 16, 400);
        let mut small = cache(16, 4);
        let mut big = cache(256, 4);
        let mut t = 0u64;
        for a in &addrs {
            small.access_load(*a, t, 28, || t + 400);
            big.access_load(*a, t, 28, || t + 400);
            t += 11;
        }
        assert!(
            big.offchip_requests <= small.offchip_requests,
            "case {case}: big {} vs small {}",
            big.offchip_requests,
            small.offchip_requests
        );
    }
}

/// Determinism: the same trace produces identical statistics.
#[test]
fn cache_is_deterministic() {
    let mut r = Rng::from_tag("cache-deterministic");
    for _ in 0..128 {
        let addrs = addr_vec(&mut r, 1 << 18, 300);
        let run = || {
            let mut c = cache(32, 4);
            let mut t = 0u64;
            for a in &addrs {
                c.access_load(*a, t, 28, || t + 400);
                t += 3;
            }
            (c.hits, c.mshr_merges, c.offchip_requests)
        };
        assert_eq!(run(), run());
    }
}

/// Single-line reuse always hits after the first access, regardless of
/// the offsets within the line.
#[test]
fn temporal_reuse_of_one_line_survives() {
    let mut r = Rng::from_tag("cache-reuse");
    for case in 0..256 {
        let n = r.range_usize(2, 50);
        let offsets: Vec<u32> = (0..n).map(|_| r.range_u32(0, 128)).collect();
        let mut c = cache(64, 4);
        let base = 4096u32;
        let mut t = 0u64;
        let mut first = true;
        for off in &offsets {
            let res = c.access_load(base + off, t, 28, || t + 400);
            if first {
                assert!(!res.hit, "case {case}: first access must miss");
                first = false;
            } else {
                assert!(res.hit, "case {case}: same line must keep hitting");
            }
            t += 500;
        }
    }
}

mod coalescing {
    use catt_frontend::parse_kernel;
    use catt_ir::LaunchConfig;
    use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};

    /// The coalescer bound of paper Eq. 7: a warp's strided access
    /// produces min(ceil(stride·4·32 / 128), 32) transactions — always
    /// within [1, 32] and exactly `stride.min(32)` for element strides.
    /// Exhaustive over the strides the old property test sampled.
    #[test]
    fn strided_warp_requests_match_eq7() {
        for stride in 1u32..64 {
            let src = format!(
                "__global__ void k(float *a, float *out) {{
                     int i = blockIdx.x * blockDim.x + threadIdx.x;
                     out[i] = a[i * {stride}];
                 }}"
            );
            let kernel = parse_kernel(&src).unwrap();
            let mut cfg = GpuConfig::titan_v_1sm();
            cfg.trace_requests = true;
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&vec![1.0; 32 * stride as usize + 32]);
            let out = mem.alloc_zeroed(32);
            let mut gpu = Gpu::new(cfg);
            let stats = gpu
                .launch(
                    &kernel,
                    LaunchConfig::d1(1, 32),
                    &[Arg::Buf(a), Arg::Buf(out)],
                    &mut mem,
                )
                .unwrap();
            let expected = stride.min(32);
            // First trace entry is the load (the second is the store).
            assert_eq!(stats.trace.requests[0], expected, "stride {stride}");
            assert!(stats.trace.requests.iter().all(|&r| (1..=32).contains(&r)));
        }
    }
}
