//! Property tests for the L1D model and the coalescer-facing invariants.

use catt_sim::cache::L1Cache;
use catt_sim::config::L1Config;
use proptest::prelude::*;

fn cache(size_lines: u32, assoc: u32) -> L1Cache {
    L1Cache::new(L1Config {
        size_bytes: size_lines * 128,
        line_bytes: 128,
        assoc,
    })
}

proptest! {
    /// Accounting invariant: hits + merges + off-chip-loads == accesses
    /// (stores are counted separately), and residency never exceeds
    /// capacity.
    #[test]
    fn accounting_invariants(
        addrs in prop::collection::vec(0u32..(1 << 20), 1..600),
        size_lines in prop::sample::select(vec![8u32, 32, 256]),
        assoc in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let mut c = cache(size_lines, assoc);
        let mut t = 0u64;
        let mut load_offchip = 0u64;
        for a in &addrs {
            let r = c.access_load(*a, t, 28, || t + 400);
            if r.offchip {
                load_offchip += 1;
            }
            prop_assert!(r.data_ready >= t);
            t += 7;
        }
        prop_assert_eq!(c.hits + c.mshr_merges + load_offchip, c.accesses);
        prop_assert_eq!(c.offchip_requests, load_offchip);
        prop_assert!(c.resident_lines() <= (size_lines) as usize);
    }

    /// Inclusion-ish monotonicity: a larger cache of the same geometry
    /// never produces more off-chip requests on the same trace.
    #[test]
    fn bigger_cache_never_requests_more(
        addrs in prop::collection::vec(0u32..(1 << 16), 1..400),
    ) {
        let mut small = cache(16, 4);
        let mut big = cache(256, 4);
        let mut t = 0u64;
        for a in &addrs {
            small.access_load(*a, t, 28, || t + 400);
            big.access_load(*a, t, 28, || t + 400);
            t += 11;
        }
        prop_assert!(big.offchip_requests <= small.offchip_requests,
            "big {} vs small {}", big.offchip_requests, small.offchip_requests);
    }

    /// Determinism: the same trace produces identical statistics.
    #[test]
    fn cache_is_deterministic(
        addrs in prop::collection::vec(0u32..(1 << 18), 1..300),
    ) {
        let run = || {
            let mut c = cache(32, 4);
            let mut t = 0u64;
            for a in &addrs {
                c.access_load(*a, t, 28, || t + 400);
                t += 3;
            }
            (c.hits, c.mshr_merges, c.offchip_requests)
        };
        prop_assert_eq!(run(), run());
    }

    /// Single-line reuse always hits after the first access, regardless
    /// of interleaved traffic to at most assoc-1 other lines in other
    /// sets.
    #[test]
    fn temporal_reuse_of_one_line_survives(offsets in prop::collection::vec(0u32..128, 2..50)) {
        let mut c = cache(64, 4);
        let base = 4096u32;
        let mut t = 0u64;
        let mut first = true;
        for off in &offsets {
            let r = c.access_load(base + off, t, 28, || t + 400);
            if first {
                prop_assert!(!r.hit);
                first = false;
            } else {
                prop_assert!(r.hit, "same line must keep hitting");
            }
            t += 500;
        }
    }
}

mod coalescing {
    use catt_frontend::parse_kernel;
    use catt_ir::LaunchConfig;
    use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The coalescer bound of paper Eq. 7: a warp's strided access
        /// produces min(ceil(stride·4·32 / 128), 32) transactions — always
        /// within [1, 32] and exactly `stride.min(32)` for element strides.
        #[test]
        fn strided_warp_requests_match_eq7(stride in 1u32..64) {
            let src = format!(
                "__global__ void k(float *a, float *out) {{
                     int i = blockIdx.x * blockDim.x + threadIdx.x;
                     out[i] = a[i * {stride}];
                 }}"
            );
            let kernel = parse_kernel(&src).unwrap();
            let mut cfg = GpuConfig::titan_v_1sm();
            cfg.trace_requests = true;
            let mut mem = GlobalMem::new();
            let a = mem.alloc_f32(&vec![1.0; 32 * stride as usize + 32]);
            let out = mem.alloc_zeroed(32);
            let mut gpu = Gpu::new(cfg);
            let stats = gpu
                .launch(&kernel, LaunchConfig::d1(1, 32), &[Arg::Buf(a), Arg::Buf(out)], &mut mem)
                .unwrap();
            let expected = stride.min(32);
            // First trace entry is the load (the second is the store).
            prop_assert_eq!(stats.trace.requests[0], expected);
            prop_assert!(stats.trace.requests.iter().all(|&r| (1..=32).contains(&r)));
        }
    }
}
