//! Regression tests for the parallel-SM *default* policy (DESIGN.md
//! "Parallel SM execution"): with an effective per-launch thread budget
//! of 1, spinning up a worker pool is pure overhead — measured as a net
//! slowdown on single-core hosts — so `sm_parallel_enabled()` must
//! default OFF there. Explicit opt-ins (`CATT_SIM_SM_PARALLEL=on`,
//! `GpuConfig::sm_parallel = Some(true)`) still win.
//!
//! These tests mutate process environment variables, so they live in
//! their own integration binary and serialize on a mutex: `cargo test`
//! runs test *binaries* in isolation but tests within one binary in
//! parallel threads.

use catt_sim::GpuConfig;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with `CATT_SIM_SM_PARALLEL` unset and `CATT_SIM_SM_THREADS`
/// pinned to `threads`, restoring both afterwards.
fn with_env(threads: Option<&str>, f: impl FnOnce()) {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved_parallel = std::env::var("CATT_SIM_SM_PARALLEL").ok();
    let saved_threads = std::env::var("CATT_SIM_SM_THREADS").ok();
    std::env::remove_var("CATT_SIM_SM_PARALLEL");
    match threads {
        Some(v) => std::env::set_var("CATT_SIM_SM_THREADS", v),
        None => std::env::remove_var("CATT_SIM_SM_THREADS"),
    }
    f();
    match saved_parallel {
        Some(v) => std::env::set_var("CATT_SIM_SM_PARALLEL", v),
        None => std::env::remove_var("CATT_SIM_SM_PARALLEL"),
    }
    match saved_threads {
        Some(v) => std::env::set_var("CATT_SIM_SM_THREADS", v),
        None => std::env::remove_var("CATT_SIM_SM_THREADS"),
    }
}

#[test]
fn budget_of_one_defaults_parallel_off() {
    with_env(Some("1"), || {
        let config = GpuConfig::titan_v_1sm();
        assert_eq!(config.sm_thread_budget(), 1);
        assert!(
            !config.sm_parallel_enabled(),
            "thread budget 1 must default the parallel-SM path off \
             (worker-pool overhead with zero parallelism)"
        );
    });
}

#[test]
fn budget_above_one_defaults_parallel_on() {
    with_env(Some("4"), || {
        let config = GpuConfig::titan_v_1sm();
        assert_eq!(config.sm_thread_budget(), 4);
        assert!(
            config.sm_parallel_enabled(),
            "a real thread budget keeps the parallel default on"
        );
    });
}

#[test]
fn explicit_opt_in_beats_the_budget_heuristic() {
    with_env(Some("1"), || {
        let mut config = GpuConfig::titan_v_1sm();
        config.sm_parallel = Some(true);
        assert!(
            config.sm_parallel_enabled(),
            "GpuConfig::sm_parallel = Some(true) must win over the default"
        );
        config.sm_parallel = None;
        std::env::set_var("CATT_SIM_SM_PARALLEL", "on");
        assert!(
            config.sm_parallel_enabled(),
            "CATT_SIM_SM_PARALLEL=on must win over the default"
        );
        std::env::remove_var("CATT_SIM_SM_PARALLEL");
    });
}

#[test]
fn explicit_opt_out_still_wins_with_a_big_budget() {
    with_env(Some("8"), || {
        let mut config = GpuConfig::titan_v_1sm();
        config.sm_parallel = Some(false);
        assert!(!config.sm_parallel_enabled());
    });
}
