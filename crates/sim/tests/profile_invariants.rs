//! Profiling-counter invariants across the whole workload registry.
//!
//! The profiler's stall accounting is exact by construction (DESIGN.md
//! "Profiling & trace subsystem"): every issue slot of every scheduler on
//! every cycle is either an issued instruction or one classified stall
//! cycle. Likewise the per-set L1D counters are incremented on the same
//! code path that feeds `LaunchStats`, so their sums must reconcile with
//! the aggregate counters bit-exactly. This suite pins both properties
//! for every registry workload, under parallel SM execution (the shard
//! merge is the interesting path) and sequentially for one workload.

use catt_sim::{GpuConfig, LaunchProfile, LaunchStats, StallReason};
use catt_workloads::harness;
use catt_workloads::registry;

fn mode_config(parallel: bool) -> GpuConfig {
    let mut c = GpuConfig::titan_v();
    c.num_sms = 4;
    c.sm_parallel = Some(parallel);
    c.sm_threads = Some(4);
    c
}

/// Per SM: `instructions + Σ stall_cycles == cycles × schedulers`, and no
/// Fuel stalls on a completed run (Fuel only appears in partial profiles
/// of fuel-exhausted launches).
fn assert_stall_accounting(p: &LaunchProfile, what: &str) {
    assert!(p.complete, "{what}: profile marked partial");
    for sm in &p.sms {
        let slots = sm.cycles * sm.schedulers as u64;
        let stalls: u64 = sm.stall_cycles.iter().sum();
        assert_eq!(
            sm.instructions + stalls,
            slots,
            "{what}: SM {} issue-slot accounting (instr {} + stalls {} != {} cycles × {} scheds)",
            sm.sm_id,
            sm.instructions,
            stalls,
            sm.cycles,
            sm.schedulers
        );
        assert_eq!(
            sm.stall_cycles[StallReason::Fuel as usize],
            0,
            "{what}: SM {} charged Fuel stalls on a completed run",
            sm.sm_id
        );
    }
}

/// Aggregate the captured profiles and reconcile against the accumulated
/// `LaunchStats` of the same run: per-set counters vs L1 aggregates,
/// per-SM instruction counts vs the issue total, and per-launch
/// max-over-SM cycles vs accumulated wall-clock.
fn assert_reconciles(profiles: &[LaunchProfile], stats: &LaunchStats, what: &str) {
    let mut accesses = 0u64;
    let mut hits = 0u64;
    let mut offchip = 0u64;
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    for p in profiles {
        cycles += p.sms.iter().map(|sm| sm.cycles).max().unwrap_or(0);
        for sm in &p.sms {
            instructions += sm.instructions;
            for set in &sm.sets {
                accesses += set.accesses;
                hits += set.hits;
                offchip += set.misses + set.stores;
            }
        }
    }
    assert_eq!(accesses, stats.l1_accesses, "{what}: l1_accesses");
    assert_eq!(hits, stats.l1_hits, "{what}: l1_hits");
    assert_eq!(offchip, stats.offchip_requests, "{what}: offchip_requests");
    assert_eq!(instructions, stats.instructions, "{what}: instructions");
    assert_eq!(cycles, stats.cycles, "{what}: cycles");
}

#[test]
fn every_registry_workload_reconciles_under_parallel_sms() {
    let config = mode_config(true);
    for w in registry::all_workloads() {
        let (out, profiles) = harness::run_profiled(&w, &config)
            .unwrap_or_else(|e| panic!("{}: profiled run failed: {e:?}", w.abbrev));
        assert!(!profiles.is_empty(), "{}: no profiles captured", w.abbrev);
        for p in &profiles {
            assert_stall_accounting(p, w.abbrev);
        }
        assert_reconciles(&profiles, &out.stats, w.abbrev);
    }
}

#[test]
fn sequential_mode_upholds_the_same_invariants() {
    let config = mode_config(false);
    let w = registry::find("ATAX").unwrap();
    let (out, profiles) = harness::run_profiled(&w, &config).expect("profiled run");
    for p in &profiles {
        assert_stall_accounting(p, w.abbrev);
    }
    assert_reconciles(&profiles, &out.stats, w.abbrev);
}

/// A fuel-exhausted launch still yields a (partial) profile, flagged
/// `complete = false`, with its unissued slots charged to `Fuel` — the
/// one reason a completed run never shows.
#[test]
fn fuel_exhaustion_yields_partial_profile_with_fuel_stalls() {
    use catt_frontend::parse_kernel;
    use catt_ir::LaunchConfig;
    use catt_sim::{Arg, GlobalMem, Gpu};

    let k = parse_kernel(
        "__global__ void spin(float *a) {
             for (int i = 0; i >= 0; i++) { a[0] = a[0] + 1.0f; }
         }",
    )
    .unwrap();
    let mut c = mode_config(true);
    c.sim_fuel = Some(5_000);
    c.profile = Some(true);
    catt_sim::profile::set_capture(true);
    let mut mem = GlobalMem::new();
    let a = mem.alloc_zeroed(8);
    let mut gpu = Gpu::new(c);
    let err = gpu
        .launch(&k, LaunchConfig::d1(4, 32), &[Arg::Buf(a)], &mut mem)
        .unwrap_err();
    let profiles = catt_sim::profile::take_captured();
    catt_sim::profile::set_capture(false);
    assert!(matches!(err, catt_sim::SimError::FuelExhausted { .. }));
    assert_eq!(profiles.len(), 1);
    let p = &profiles[0];
    assert!(!p.complete, "fuel-cut profile must be marked partial");
    assert!(
        p.stall_totals()[StallReason::Fuel as usize] > 0,
        "the fuel cut charges its slots to Fuel"
    );
}
