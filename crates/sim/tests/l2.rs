//! Shared-L2 model invariants.
//!
//! Three contracts pin the L2 (DESIGN.md §3h):
//!
//! * **disabled = pre-L2, bit for bit** — `l2_kb = 0` must reproduce the
//!   exact stats and memory image the simulator produced before the L2
//!   existed (golden numbers captured at that commit);
//! * **reconciliation** — stores bypass the L2 (write-through,
//!   no-allocate at both levels) and every L1D load miss probes it, so
//!   per launch `l2_accesses == l1_accesses − l1_hits` exactly, and the
//!   L2 never changes functional results (memory digests are identical
//!   with the L2 on, off, or resized — only cycles move);
//! * **capacity ordering** — a slice that covers the working set serves
//!   every warm miss (hit rate → 1 after cold fills), a tiny slice
//!   serves fewer, and cycles improve monotonically with hit rate.

use catt_frontend::parse_kernel;
use catt_ir::{Kernel, LaunchConfig};
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

const MV_N: usize = 256;

fn mv_kernel() -> Kernel {
    let src = format!(
        "#define N {MV_N}
         __global__ void mv(float *A, float *B, float *tmp) {{
             int i = blockIdx.x * blockDim.x + threadIdx.x;
             if (i < N) {{
                 for (int j = 0; j < N; j++) {{
                     tmp[i] += A[i * N + j] * B[j];
                 }}
             }}
         }}"
    );
    parse_kernel(&src).unwrap()
}

/// Run the contended matrix-vector kernel on the 1-SM vehicle with a
/// 32 KB L1D cap and the given L2 capacity.
fn run_mv(l2_kb: u32) -> (LaunchStats, u64) {
    let kernel = mv_kernel();
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(
        &(0..MV_N * MV_N)
            .map(|v| (v % 13) as f32)
            .collect::<Vec<_>>(),
    );
    let b = mem.alloc_f32(&(0..MV_N).map(|v| (v % 7) as f32).collect::<Vec<_>>());
    let tmp = mem.alloc_zeroed(MV_N as u32);
    let mut config = GpuConfig::titan_v_1sm();
    config.l1_cap_bytes = Some(32 * 1024);
    config.l2_kb = Some(l2_kb);
    let stats = Gpu::new(config)
        .launch(
            &kernel,
            LaunchConfig::d1(2, 128),
            &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
            &mut mem,
        )
        .unwrap();
    (stats, mem.content_digest())
}

fn run_stream(l2_kb: u32) -> (LaunchStats, u64) {
    let src = "
        __global__ void stream(float *a, float *b, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { b[i] = a[i] * 2.0f + 1.0f; }
        }";
    let kernel = parse_kernel(src).unwrap();
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(&(0..4096).map(|v| (v % 11) as f32).collect::<Vec<_>>());
    let b = mem.alloc_zeroed(4096);
    let mut config = GpuConfig::small();
    config.l2_kb = Some(l2_kb);
    let stats = Gpu::new(config)
        .launch(
            &kernel,
            LaunchConfig::d1(16, 256),
            &[Arg::Buf(a), Arg::Buf(b), Arg::I32(4096)],
            &mut mem,
        )
        .unwrap();
    (stats, mem.content_digest())
}

/// `l2_kb = 0` reproduces the pre-L2 simulator bit for bit. The golden
/// numbers were captured on the commit immediately before the L2 landed
/// (same kernels, inputs, and configs); any drift here means the
/// disabled path is not actually the old model.
#[test]
fn disabled_l2_matches_pre_l2_goldens() {
    let (mv, mv_mem) = run_mv(0);
    assert_eq!(mv.cycles, 178_002, "mv cycles");
    assert_eq!(mv.instructions, 49_264, "mv instructions");
    assert_eq!(mv.l1_accesses, 69_632, "mv l1_accesses");
    assert_eq!(mv.l1_hits, 53_501, "mv l1_hits");
    assert_eq!(mv.offchip_requests, 18_179, "mv offchip_requests");
    assert_eq!((mv.tbs, mv.warps), (2, 8), "mv geometry");
    assert_eq!(mv_mem, 0xdd86_a7b4_4213_e8fb, "mv memory image");
    assert_eq!(mv.l2_accesses, 0, "disabled L2 records nothing");
    assert_eq!(mv.l2_hits, 0);
    assert_eq!(mv.l2_evictions, 0);

    let (st, st_mem) = run_stream(0);
    assert_eq!(st.cycles, 7_966, "stream cycles");
    assert_eq!(st.instructions, 2_432, "stream instructions");
    assert_eq!(st.l1_accesses, 128, "stream l1_accesses");
    assert_eq!(st.l1_hits, 0, "stream l1_hits");
    assert_eq!(st.offchip_requests, 256, "stream offchip_requests");
    assert_eq!(st_mem, 0x2f58_0788_d142_cdb5, "stream memory image");
    assert_eq!(st.l2_accesses, 0);
}

/// Every L1D load miss probes the L2 and nothing else does:
/// `l2_accesses == l1_accesses − l1_hits`, on both a reuse-heavy and a
/// streaming kernel, across capacities.
#[test]
fn l2_accesses_reconcile_with_l1_misses() {
    for kb in [64, 512, 6144] {
        let (mv, _) = run_mv(kb);
        assert_eq!(
            mv.l2_accesses,
            mv.l1_accesses - mv.l1_hits,
            "mv, l2_kb={kb}: L2 accesses must equal L1 load misses"
        );
        assert!(mv.l2_hits <= mv.l2_accesses, "mv, l2_kb={kb}");
        let (st, _) = run_stream(kb);
        assert_eq!(
            st.l2_accesses,
            st.l1_accesses - st.l1_hits,
            "stream, l2_kb={kb}"
        );
    }
}

/// The L2 never changes functional results: memory images and executed
/// work are identical across capacities. (L1 hit/miss *counters* may
/// legitimately move — fill latencies steer the warp schedule, and the
/// access interleaving steers LRU state — but what the kernel computes
/// may not.)
#[test]
fn l2_is_functionally_transparent() {
    let (base, base_mem) = run_mv(0);
    for kb in [64, 512, 6144] {
        let (s, mem) = run_mv(kb);
        assert_eq!(mem, base_mem, "l2_kb={kb}: memory image moved");
        assert_eq!(s.instructions, base.instructions, "l2_kb={kb}");
        assert_eq!((s.tbs, s.warps), (base.tbs, base.warps), "l2_kb={kb}");
    }
}

/// Capacity ordering: a slice covering the mv working set (A 256 KB +
/// B 1 KB fits in 512 KB) hits more than a 64 KB slice and stops
/// evicting; and any L2 beats no L2 on cycles (hits shorten miss
/// latency; the off-chip port charge is identical either way). Cycles
/// between two *warm* L2 sizes are deliberately not ordered — fill
/// latencies steer the warp schedule, so a few percent of scheduling
/// noise can outweigh a small hit-rate edge.
#[test]
fn l2_capacity_orders_hit_rates_and_cycles() {
    let (no_l2, _) = run_mv(0);
    let (small, _) = run_mv(64);
    let (big, _) = run_mv(512);
    assert!(
        big.l2_hit_rate() > small.l2_hit_rate(),
        "covering slice must hit more: {:.3} vs {:.3}",
        big.l2_hit_rate(),
        small.l2_hit_rate()
    );
    // Warm hits dominate once the footprint fits: only the ~2064 cold
    // line fills (A + B + tmp over 128-byte lines) miss.
    assert!(
        big.l2_hit_rate() > 0.75,
        "covering slice hit rate {:.3}",
        big.l2_hit_rate()
    );
    assert!(big.cycles < no_l2.cycles, "L2 hits must shorten the launch");
    assert!(small.cycles < no_l2.cycles, "even a small L2 helps here");
    // Evictions appear exactly when the slice is too small.
    assert!(small.l2_evictions > 0, "thrashing slice must evict");
    assert_eq!(big.l2_evictions, 0, "covering slice must not evict");
}

/// The L2 slice is per-SM state, so the parallel-SM path needs no new
/// synchronization: stats (L2 counters included) and memory are
/// bit-identical across execution modes with the L2 enabled.
#[test]
fn l2_stats_are_bit_identical_across_sm_modes() {
    let kernel = mv_kernel();
    let run = |parallel: bool| {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_f32(
            &(0..MV_N * MV_N)
                .map(|v| (v % 13) as f32)
                .collect::<Vec<_>>(),
        );
        let b = mem.alloc_f32(&(0..MV_N).map(|v| (v % 7) as f32).collect::<Vec<_>>());
        let tmp = mem.alloc_zeroed(MV_N as u32);
        let mut config = GpuConfig::titan_v();
        config.num_sms = 4;
        config.l1_cap_bytes = Some(32 * 1024);
        config.l2_kb = Some(1024);
        config.sm_parallel = Some(parallel);
        config.sm_threads = Some(4);
        let stats = Gpu::new(config)
            .launch(
                &kernel,
                LaunchConfig::d1(8, 32),
                &[Arg::Buf(a), Arg::Buf(b), Arg::Buf(tmp)],
                &mut mem,
            )
            .unwrap();
        (stats, mem.content_digest())
    };
    let (par, par_mem) = run(true);
    let (seq, seq_mem) = run(false);
    assert_eq!(par.cycles, seq.cycles);
    assert_eq!(par.l2_accesses, seq.l2_accesses);
    assert_eq!(par.l2_hits, seq.l2_hits);
    assert_eq!(par.l2_evictions, seq.l2_evictions);
    assert_eq!(par_mem, seq_mem);
    assert!(par.l2_accesses > 0, "the L2 actually saw traffic");
}
