//! Determinism and configuration-consistency tests: the simulator is a
//! measurement instrument, so identical inputs must give identical
//! outputs, and functional results must be invariant across machine
//! configurations.

#![allow(clippy::needless_range_loop)]

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, LaunchStats};

fn kernel_src() -> String {
    "#define N 2048
     __global__ void k(float *a, float *out) {
         int i = blockIdx.x * blockDim.x + threadIdx.x;
         if (i < N) {
             float acc = 0.0f;
             for (int j = 0; j < 24; j++) {
                 acc += a[i * 3 + j];
             }
             if (i % 2 == 0) {
                 out[i] = acc;
             } else {
                 out[i] = -acc;
             }
         }
     }"
    .to_string()
}

fn run(config: &GpuConfig) -> (LaunchStats, Vec<f32>) {
    let k = parse_kernel(&kernel_src()).unwrap();
    let mut mem = GlobalMem::new();
    let a = mem.alloc_f32(
        &(0..2048 * 3 + 24)
            .map(|v| (v % 13) as f32)
            .collect::<Vec<_>>(),
    );
    let out = mem.alloc_zeroed(2048);
    let mut gpu = Gpu::new(config.clone());
    let stats = gpu
        .launch(
            &k,
            LaunchConfig::d1(8, 256),
            &[Arg::Buf(a), Arg::Buf(out)],
            &mut mem,
        )
        .unwrap();
    (stats, mem.read_f32(out))
}

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = GpuConfig::titan_v_1sm();
    let (s1, o1) = run(&cfg);
    let (s2, o2) = run(&cfg);
    assert_eq!(s1.cycles, s2.cycles);
    assert_eq!(s1.instructions, s2.instructions);
    assert_eq!(s1.l1_accesses, s2.l1_accesses);
    assert_eq!(s1.l1_hits, s2.l1_hits);
    assert_eq!(s1.offchip_requests, s2.offchip_requests);
    assert_eq!(o1, o2);
}

#[test]
fn functional_results_invariant_across_configs() {
    let mut reference: Option<Vec<f32>> = None;
    for (sms, l1_kb, scheds) in [(1u32, 128u32, 4u32), (1, 32, 4), (2, 128, 2), (4, 16, 1)] {
        let mut cfg = GpuConfig::titan_v_1sm();
        cfg.num_sms = sms;
        cfg.l1_cap_bytes = Some(l1_kb * 1024);
        cfg.schedulers_per_sm = scheds;
        let (_, out) = run(&cfg);
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "config ({sms}, {l1_kb}KB, {scheds})"),
        }
    }
}

#[test]
fn timing_monotone_in_offchip_port_cost() {
    // A thrashing kernel must get slower as per-request bandwidth drops.
    let mut prev = 0u64;
    for port in [2u64, 8, 16] {
        let mut cfg = GpuConfig::titan_v_1sm();
        cfg.l1_cap_bytes = Some(16 * 1024);
        cfg.latencies.offchip_port = port;
        let (s, _) = run(&cfg);
        assert!(
            s.cycles >= prev,
            "port {port}: {} < previous {prev}",
            s.cycles
        );
        prev = s.cycles;
    }
}

#[test]
fn barrier_with_partial_warps_and_early_exit_terminates() {
    // 5 warps, one of which exits before the barrier; the block must
    // still complete (arrival-count semantics).
    let src = "
        __global__ void k(float *out) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            __shared__ float buf[256];
            if (i >= 128) { return; }
            buf[threadIdx.x] = (float)i;
            __syncthreads();
            out[i] = buf[threadIdx.x % 128];
        }";
    let k = parse_kernel(src).unwrap();
    let mut mem = GlobalMem::new();
    let out = mem.alloc_zeroed(160);
    let mut gpu = Gpu::new(GpuConfig::titan_v_1sm());
    gpu.launch(&k, LaunchConfig::d1(1, 160), &[Arg::Buf(out)], &mut mem)
        .unwrap();
    let o = mem.read_f32(out);
    for i in 0..128 {
        assert_eq!(o[i], i as f32);
    }
}

#[test]
fn deeply_nested_divergence_is_correct() {
    let src = "
        __global__ void k(float *out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            int acc = 0;
            for (int a = 0; a < 3; a++) {
                if (i % 2 == 0) {
                    for (int b = 0; b < 2; b++) {
                        if (i % 4 == 0) {
                            acc += 10;
                        } else {
                            acc += 1;
                        }
                    }
                } else {
                    while (acc < a) {
                        acc += 100;
                    }
                }
            }
            out[i] = (float)acc;
        }";
    let k = parse_kernel(src).unwrap();
    let mut mem = GlobalMem::new();
    let out = mem.alloc_zeroed(64);
    let mut gpu = Gpu::new(GpuConfig::titan_v_1sm());
    gpu.launch(
        &k,
        LaunchConfig::d1(2, 32),
        &[Arg::Buf(out), Arg::I32(64)],
        &mut mem,
    )
    .unwrap();
    let o = mem.read_f32(out);
    for i in 0..64usize {
        // Host replica.
        let mut acc = 0i32;
        for a in 0..3 {
            if i % 2 == 0 {
                for _b in 0..2 {
                    acc += if i % 4 == 0 { 10 } else { 1 };
                }
            } else {
                while acc < a {
                    acc += 100;
                }
            }
        }
        assert_eq!(o[i], acc as f32, "lane {i}");
    }
}
