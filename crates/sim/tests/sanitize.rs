//! Sanitizer integration tests: sanitize mode must report the undefined
//! behaviour the forgiving functional semantics mask (barrier divergence,
//! inter-block races, wild reads, shared-memory overflow), never
//! false-positive on clean kernels, and never perturb results. Every test
//! pins `GpuConfig::sanitize` explicitly (`Some` wins over the ambient
//! `CATT_SANITIZE`), so the suite is immune to process environment.

use catt_frontend::parse_kernel;
use catt_ir::LaunchConfig;
use catt_sim::{Arg, GlobalMem, Gpu, GpuConfig, SanitizerKind, SimError};

fn config(sanitize: bool) -> GpuConfig {
    let mut c = GpuConfig::small();
    c.sanitize = Some(sanitize);
    c
}

fn launch(
    src: &str,
    sanitize: bool,
    launch: LaunchConfig,
    args: &[Arg],
    mem: &mut GlobalMem,
) -> Result<catt_sim::LaunchStats, SimError> {
    let k = parse_kernel(src).unwrap();
    Gpu::new(config(sanitize)).launch(&k, launch, args, mem)
}

/// Unwrap a sanitizer finding of the expected kind (panics with the
/// actual outcome otherwise).
fn expect_finding(res: Result<catt_sim::LaunchStats, SimError>, kind: SanitizerKind) -> String {
    match res {
        Err(SimError::Sanitizer(report)) => {
            assert_eq!(report.kind, kind, "wrong kind: {report}");
            report.to_string()
        }
        Err(other) => panic!("expected a {kind:?} sanitizer report, got error {other}"),
        Ok(_) => panic!("expected a {kind:?} sanitizer report, launch succeeded"),
    }
}

// ----- barrier divergence ---------------------------------------------------

const INTRA_WARP_DIVERGENT: &str = "
    __global__ void intra(float *a) {
        if (threadIdx.x % 2 == 0) {
            __syncthreads();
        }
        a[threadIdx.x] = 1.0f;
    }";

#[test]
fn intra_warp_divergent_barrier_is_reported() {
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let msg = expect_finding(
        launch(
            INTRA_WARP_DIVERGENT,
            true,
            LaunchConfig::d1(1, 32),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::BarrierDivergence,
    );
    assert!(msg.contains("intra-warp divergence"), "{msg}");
}

const WARP_DIVERGENT: &str = "
    __global__ void skip(float *a) {
        if (threadIdx.x < 32) {
            __syncthreads();
        }
        a[threadIdx.x] = 1.0f;
    }";

#[test]
fn warp_that_skips_a_barrier_is_reported() {
    // Warp 0 parks at the barrier; warp 1's guard is warp-uniform false,
    // so it runs to completion without arriving. Arrival-count release
    // treats Done as arrived — the site-identity check does not.
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(64);
    let msg = expect_finding(
        launch(
            WARP_DIVERGENT,
            true,
            LaunchConfig::d1(1, 64),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::BarrierDivergence,
    );
    assert!(msg.contains("never reached"), "{msg}");
}

#[test]
fn unsanitized_launch_masks_the_skipped_barrier() {
    // The exact kernel the sanitizer rejects above completes cleanly
    // under the default arrival-count semantics — this masking is why the
    // sanitizer exists.
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(64);
    launch(
        WARP_DIVERGENT,
        false,
        LaunchConfig::d1(1, 64),
        &[Arg::Buf(ba)],
        &mut mem,
    )
    .unwrap();
    assert_eq!(mem.read_f32(ba), vec![1.0; 64]);
}

#[test]
fn mismatched_barrier_sites_are_reported() {
    // Both warps park — but at *different* `__syncthreads()` sites.
    // Arrival counting happily releases them; per the CUDA programming
    // model the conditional must evaluate identically across the block.
    let src = "
        __global__ void sites(float *a) {
            if (threadIdx.x < 32) {
                __syncthreads();
            } else {
                __syncthreads();
            }
            a[threadIdx.x] = 1.0f;
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(64);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(1, 64),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::BarrierDivergence,
    );
    assert!(msg.contains("different __syncthreads() sites"), "{msg}");
}

#[test]
fn uniform_barriers_pass() {
    // A classic staged kernel: every warp of the block arrives at every
    // barrier, partial last warp included (blockDim 48 leaves warp 1 with
    // 16 valid lanes — valid-mask arrival, not a divergence finding).
    let src = "
        __global__ void staged(float *a) {
            __shared__ float s[48];
            s[threadIdx.x] = 1.0f;
            __syncthreads();
            a[threadIdx.x] = s[47 - threadIdx.x];
            __syncthreads();
            a[threadIdx.x] = a[threadIdx.x] + 1.0f;
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(48);
    launch(
        src,
        true,
        LaunchConfig::d1(1, 48),
        &[Arg::Buf(ba)],
        &mut mem,
    )
    .unwrap();
    assert_eq!(mem.read_f32(ba), vec![2.0; 48]);
}

// ----- inter-block races ----------------------------------------------------

#[test]
fn inter_block_write_write_race_is_reported() {
    let src = "
        __global__ void ww(float *a) {
            a[threadIdx.x] = 1.0f;
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(2, 32),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::GlobalRace,
    );
    assert!(msg.contains("written by both block"), "{msg}");
}

#[test]
fn inter_block_read_write_race_is_reported() {
    // Block 0 finishes before block 1 dispatches on the 1-SM test GPU,
    // yet the access pattern — block b reads what block b-1 wrote — has
    // no cross-block ordering guarantee on hardware.
    let src = "
        __global__ void rw(float *a, float *b) {
            b[blockIdx.x * blockDim.x + threadIdx.x] = a[threadIdx.x];
            a[threadIdx.x] = a[threadIdx.x] + 1.0f;
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let bb = mem.alloc_zeroed(64);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(2, 32),
            &[Arg::Buf(ba), Arg::Buf(bb)],
            &mut mem,
        ),
        SanitizerKind::GlobalRace,
    );
    assert!(msg.contains("no ordering between blocks"), "{msg}");
}

#[test]
fn disjoint_blocks_pass_and_match_the_unsanitized_run() {
    // Block-disjoint outputs plus a shared read-only input is the legal
    // pattern every workload here follows; a sanitized launch must accept
    // it and leave memory bit-identical to the unsanitized launch.
    let src = "
        __global__ void add(float *a, float *b, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { b[i] = a[i % 32] + b[i]; }
        }";
    let mk = |mem: &mut GlobalMem| {
        let ba = mem.alloc_f32(&[3.0; 32]);
        let bb = mem.alloc_f32(&[1.0; 128]);
        (ba, bb)
    };
    let mut mem_s = GlobalMem::new();
    let (a_s, b_s) = mk(&mut mem_s);
    let stats_s = launch(
        src,
        true,
        LaunchConfig::d1(4, 32),
        &[Arg::Buf(a_s), Arg::Buf(b_s), Arg::I32(128)],
        &mut mem_s,
    )
    .unwrap();
    let mut mem_u = GlobalMem::new();
    let (a_u, b_u) = mk(&mut mem_u);
    let stats_u = launch(
        src,
        false,
        LaunchConfig::d1(4, 32),
        &[Arg::Buf(a_u), Arg::Buf(b_u), Arg::I32(128)],
        &mut mem_u,
    )
    .unwrap();
    assert_eq!(
        mem_s.content_digest(),
        mem_u.content_digest(),
        "the sanitizer only observes"
    );
    assert_eq!(stats_s.cycles, stats_u.cycles);
    assert_eq!(stats_s.instructions, stats_u.instructions);
    assert_eq!(mem_s.read_f32(b_s), vec![4.0; 128]);
    let _ = (a_s, a_u, b_u);
}

// ----- wild reads -----------------------------------------------------------

#[test]
fn read_past_the_footprint_is_reported() {
    let src = "
        __global__ void wild(float *a) {
            a[threadIdx.x] = a[threadIdx.x + 100];
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(1, 32),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::UninitializedRead,
    );
    assert!(msg.contains("no allocation covers"), "{msg}");
}

#[test]
fn read_in_alignment_padding_is_reported() {
    // Buffers are 256-byte aligned, so a 32-word buffer is followed by
    // 32 words of padding before the next one: a[32] reads the gap. The
    // unsanitized simulator returns 0 there; hardware reads garbage.
    let src = "
        __global__ void gap(float *a, float *b) {
            b[threadIdx.x] = a[threadIdx.x + 1];
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_f32(&[1.0; 32]);
    let bb = mem.alloc_zeroed(32);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(1, 32),
            &[Arg::Buf(ba), Arg::Buf(bb)],
            &mut mem,
        ),
        SanitizerKind::UninitializedRead,
    );
    assert!(msg.contains("no allocation covers"), "{msg}");
}

// ----- shared-memory overflow -----------------------------------------------

#[test]
fn shared_store_overflow_is_reported() {
    let src = "
        __global__ void soob(float *a) {
            __shared__ float s[16];
            s[threadIdx.x] = 1.0f;
            __syncthreads();
            a[threadIdx.x] = s[threadIdx.x % 16];
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(1, 32),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::SharedOutOfBounds,
    );
    assert!(msg.contains("stores to shared byte address"), "{msg}");
}

#[test]
fn shared_load_overflow_is_reported() {
    let src = "
        __global__ void loob(float *a) {
            __shared__ float s[16];
            s[threadIdx.x % 16] = 1.0f;
            __syncthreads();
            a[threadIdx.x] = s[threadIdx.x + 16];
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    let msg = expect_finding(
        launch(
            src,
            true,
            LaunchConfig::d1(1, 32),
            &[Arg::Buf(ba)],
            &mut mem,
        ),
        SanitizerKind::SharedOutOfBounds,
    );
    assert!(msg.contains("loads shared byte address"), "{msg}");
}

#[test]
fn in_bounds_shared_accesses_pass() {
    let src = "
        __global__ void sok(float *a) {
            __shared__ float s[32];
            s[threadIdx.x] = 2.0f;
            __syncthreads();
            a[threadIdx.x] = s[31 - threadIdx.x];
        }";
    let mut mem = GlobalMem::new();
    let ba = mem.alloc_zeroed(32);
    launch(
        src,
        true,
        LaunchConfig::d1(1, 32),
        &[Arg::Buf(ba)],
        &mut mem,
    )
    .unwrap();
    assert_eq!(mem.read_f32(ba), vec![2.0; 32]);
}
