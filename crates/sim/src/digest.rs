//! Stable content digests for simulation inputs.
//!
//! The evaluation engine (`catt-core::engine`) memoizes simulation results
//! in a content-addressed cache that persists across processes, so the
//! digest must be stable across runs and builds. `std::hash::DefaultHasher`
//! makes no such guarantee, so this module implements FNV-1a 64-bit by
//! hand over a canonical byte encoding: the `Debug` rendering of the
//! hashed values. Debug output is part of this crate's own types, so a
//! change in the simulated semantics (new ops, new config fields) changes
//! the rendering and automatically invalidates stale cache entries.

use crate::bytecode::Program;
use crate::config::GpuConfig;
use std::fmt::Write as _;

/// FNV-1a, 64-bit.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh hasher.
    pub fn new() -> Fnv64 {
        Fnv64 {
            state: Self::OFFSET,
        }
    }

    /// Fold raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a string (as UTF-8 bytes plus a separator so `"ab","c"` and
    /// `"a","bc"` digest differently).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xFF])
    }

    /// Fold any `Debug` value via its canonical rendering.
    pub fn write_debug(&mut self, v: &impl std::fmt::Debug) -> &mut Self {
        let mut s = String::new();
        let _ = write!(s, "{v:?}");
        self.write_str(&s)
    }

    /// Final digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Program {
    /// Stable digest of the lowered kernel: instruction stream, register
    /// and shared-memory layout. Two kernels with identical lowering get
    /// identical digests, whatever source they came from.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(&self.name)
            .write_debug(&self.ops)
            .write_debug(&self.num_regs)
            .write_debug(&self.param_regs)
            .write_debug(&self.shared_layout)
            .write_debug(&self.smem_bytes);
        h.finish()
    }
}

impl GpuConfig {
    /// Stable digest over every architectural parameter (geometry,
    /// capacities, latencies, DYNCTA settings). Any change invalidates
    /// cached simulation results keyed on this config. The cycle-fuel
    /// budget (`sim_fuel`) is excluded: fuel bounds a simulation, it never
    /// changes the result of one that completes, so tightening or lifting
    /// the budget must not invalidate cached results. The SM-parallelism
    /// knobs (`sm_parallel`, `sm_threads`, `sm_steal`) are excluded for the same
    /// reason: parallel and sequential execution are bit-identical (see
    /// DESIGN.md "Parallel SM execution"), so flipping them must keep
    /// serving cached results. The profiling knob (`profile`) is excluded
    /// too — the sink only observes, and profiled runs bypass the cache
    /// anyway (see DESIGN.md "Profiling & trace subsystem") — as is the
    /// sanitizer knob (`sanitize`): a clean sanitized launch is
    /// bit-identical to an unsanitized one, and sanitized runs bypass the
    /// cache so the checks always execute.
    pub fn content_digest(&self) -> u64 {
        let mut canonical = self.clone();
        canonical.sim_fuel = None;
        canonical.sm_parallel = None;
        canonical.sm_threads = None;
        canonical.sm_steal = None;
        canonical.profile = None;
        // The windowed miss curve is part of the profile sink — pure
        // observation, bit-identical results — so the knob is excluded
        // like `profile` itself.
        canonical.profile_windows = None;
        canonical.sanitize = None;
        // The L2 capacity is *architectural* — unlike the knobs above it
        // changes cycle counts — but `None`, `CATT_L2_KB` and an explicit
        // `Some` of the same value must share a cache entry, so the
        // digest folds the resolved capacity, not the raw option.
        canonical.l2_kb = Some(self.l2_kb_resolved());
        // The cancellation token is an execution handle, not a simulated
        // parameter: a deadline-carrying `catt serve` request must share
        // its cache entry (and single-flight slot) with tokenless runs.
        canonical.cancel = None;
        let mut h = Fnv64::new();
        h.write_debug(&canonical);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference FNV-1a vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xCBF2_9CE4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn str_framing_disambiguates() {
        let mut a = Fnv64::new();
        a.write_str("ab").write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn config_digest_tracks_fields() {
        let base = GpuConfig::titan_v_1sm();
        let mut capped = base.clone();
        capped.l1_cap_bytes = Some(32 * 1024);
        assert_ne!(base.content_digest(), capped.content_digest());
        assert_eq!(base.content_digest(), base.clone().content_digest());
    }

    #[test]
    fn fuel_budget_does_not_change_the_digest() {
        let base = GpuConfig::titan_v_1sm();
        let mut fueled = base.clone();
        fueled.sim_fuel = Some(1_000);
        assert_eq!(base.content_digest(), fueled.content_digest());
    }

    #[test]
    fn sm_parallelism_knobs_do_not_change_the_digest() {
        // Parallel and sequential launches are bit-identical, so a cached
        // result must survive flipping the execution-strategy knobs.
        let base = GpuConfig::titan_v_1sm();
        let mut tuned = base.clone();
        tuned.sm_parallel = Some(false);
        tuned.sm_threads = Some(7);
        assert_eq!(base.content_digest(), tuned.content_digest());
        tuned.sm_parallel = Some(true);
        assert_eq!(base.content_digest(), tuned.content_digest());
        tuned.sm_steal = Some(false);
        assert_eq!(base.content_digest(), tuned.content_digest());
    }

    #[test]
    fn profile_knob_does_not_change_the_digest() {
        // Profiling only observes; a cached result must survive flipping
        // it (profiled runs bypass the cache regardless).
        let base = GpuConfig::titan_v_1sm();
        let mut profiled = base.clone();
        profiled.profile = Some(true);
        assert_eq!(base.content_digest(), profiled.content_digest());
        profiled.profile = Some(false);
        assert_eq!(base.content_digest(), profiled.content_digest());
    }

    #[test]
    fn l2_capacity_changes_the_digest_by_resolved_value() {
        // Capacity is architectural: different sizes must not share a
        // cache entry, but `None` (default) and an explicit `Some` of
        // the resolved default must.
        let base = GpuConfig::titan_v_1sm();
        let mut shrunk = base.clone();
        shrunk.l2_kb = Some(512);
        assert_ne!(base.content_digest(), shrunk.content_digest());
        let mut disabled = base.clone();
        disabled.l2_kb = Some(0);
        assert_ne!(base.content_digest(), disabled.content_digest());
        let mut explicit_default = base.clone();
        explicit_default.l2_kb = Some(base.l2_kb_resolved());
        assert_eq!(base.content_digest(), explicit_default.content_digest());
    }

    #[test]
    fn profile_windows_knob_does_not_change_the_digest() {
        // Window recording only observes; a cached result must survive
        // flipping it (profiled runs bypass the cache regardless).
        let base = GpuConfig::titan_v_1sm();
        let mut windows = base.clone();
        windows.profile_windows = Some(true);
        assert_eq!(base.content_digest(), windows.content_digest());
        windows.profile_windows = Some(false);
        assert_eq!(base.content_digest(), windows.content_digest());
    }

    #[test]
    fn sanitize_knob_does_not_change_the_digest() {
        // The sanitizer only observes; a cached result must survive
        // flipping it (sanitized runs bypass the cache regardless).
        let base = GpuConfig::titan_v_1sm();
        let mut sanitized = base.clone();
        sanitized.sanitize = Some(true);
        assert_eq!(base.content_digest(), sanitized.content_digest());
        sanitized.sanitize = Some(false);
        assert_eq!(base.content_digest(), sanitized.content_digest());
    }
}
