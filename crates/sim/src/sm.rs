//! The streaming-multiprocessor execution engine.
//!
//! Each SM owns: warp slots filled by the occupancy-limited thread-block
//! dispatcher, per-scheduler greedy-then-oldest (GTO) warp arbitration, a
//! scoreboard per warp (register-ready cycles), one L1D port that accepts
//! one 128-byte transaction per cycle, an off-chip port modelling per-SM
//! L2/DRAM bandwidth, and the L1D tag store from [`crate::cache`].
//!
//! Timing model summary (per issued warp-instruction):
//! * ALU: result ready after `latencies.alu` (transcendental: `sfu`);
//! * global load: addresses coalesce into 128-byte lines; transactions
//!   serialize on the L1D port; each miss occupies the off-chip port for
//!   `offchip_port` cycles and completes after `offchip` more; the
//!   destination register becomes ready when the slowest transaction
//!   completes;
//! * global store: write-through, consumes L1D + off-chip port bandwidth,
//!   does not block the warp;
//! * shared memory: fixed `shared` latency, one L1D-port cycle
//!   (bank conflicts are not modelled — see DESIGN.md);
//! * `__syncthreads`: the warp parks until every non-finished warp of its
//!   block is parked (arrival-count semantics, so warps that exited early
//!   never deadlock the block).

use crate::bytecode::{builtin_reg, CmpOp, FBinOp, FUnOp, IBinOp, Op, Program};
use crate::cache::L1Cache;
use crate::config::GpuConfig;
use crate::error::SimError;
use crate::mem::{Arg, DeviceMem, GlobalMem, ShadowMem, StoreLog};
use crate::metrics::LaunchStats;
use crate::occupancy::max_resident_tbs;
use crate::profile::{LaunchProfile, NullSink, ProfileSink, SmProfile, StallReason};
use crate::sanitize::{SanitizerKind, SanitizerReport, SanitizerState};
use crate::warp::{Frame, Warp, WarpState};
use catt_ir::expr::Builtin;
use catt_ir::LaunchConfig;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Execute a full launch: distribute blocks round-robin over SMs and run
/// each SM to completion. SMs interact only through (functional) global
/// memory; timing-wise each has its own L1D and off-chip port, so they are
/// simulated independently and total `cycles` is the maximum over SMs.
///
/// When [`GpuConfig::sm_parallel_enabled`] holds (the default), SMs run on
/// `std::thread::scope` worker threads: each SM reads a shared pre-launch
/// snapshot overlaid with its own [`StoreLog`] and the logs are merged
/// back in ascending SM-id order, so the result is bit-identical across
/// thread budgets and runs (see DESIGN.md "Parallel SM execution"). With
/// the knob off — or a thread budget of 1 — the sequential path runs
/// directly against [`GlobalMem`].
///
/// Every user-reachable failure — bad arguments, unlaunchable geometry,
/// barrier deadlock, cycle-budget exhaustion — returns a structured
/// [`SimError`] instead of panicking, so one bad candidate in a sweep is a
/// recordable outcome, not a dead worker.
pub fn run_launch(
    config: &GpuConfig,
    program: &Program,
    launch: LaunchConfig,
    args: &[Arg],
    mem: &mut GlobalMem,
) -> Result<LaunchStats, SimError> {
    if config.profile_enabled() {
        // Profiled launch: the same simulation, monomorphized over the
        // recording sink. The finished profile is delivered to the
        // thread-local capture buffer (see `crate::profile`); on error a
        // partial profile is still delivered, flagged `complete = false`.
        let mut profile = LaunchProfile::new(program.name.clone(), launch, config.l1_config());
        let res = launch_impl::<SmProfile>(config, program, launch, args, mem, Some(&mut profile));
        profile.complete = res.is_ok();
        crate::profile::submit(profile);
        res
    } else {
        launch_impl::<NullSink>(config, program, launch, args, mem, None)
    }
}

/// Everything one parallel-path SM worker hands back for the in-order
/// merge: its result, its private store log, and its profiling shard.
type SmOutcome<S> = (Result<LaunchStats, SimError>, StoreLog, S);

/// How parallel-path workers claim SM simulation tasks. Either way the
/// commit below merges outcomes in ascending SM-id order, so the claim
/// schedule never affects results — only wall-clock.
enum SmDispatcher {
    /// Shared grab counter: workers take SMs in ascending id order
    /// (`CATT_SIM_STEAL=off`).
    Shared(AtomicUsize),
    /// Work-stealing deques, one per worker, seeded round-robin in
    /// descending block-count order so the heaviest SMs start first
    /// instead of queueing behind light ones on the same worker. A worker
    /// pops from the front of its own deque and, when empty, steals from
    /// the *back* of the fullest peer — the classic split that keeps the
    /// owner on its locally-seeded prefix. SM tasks are milliseconds, so
    /// a plain mutex costs nothing measurable per claim.
    Steal(Mutex<Vec<VecDeque<usize>>>),
}

impl SmDispatcher {
    fn new(steal: bool, per_sm: &[(u32, VecDeque<u32>)], workers: usize) -> SmDispatcher {
        if !steal || workers <= 1 {
            return SmDispatcher::Shared(AtomicUsize::new(0));
        }
        let mut order: Vec<usize> = (0..per_sm.len()).collect();
        // Stable sort: equal block counts keep ascending SM-id order.
        order.sort_by_key(|&i| std::cmp::Reverse(per_sm[i].1.len()));
        let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
        for (k, i) in order.into_iter().enumerate() {
            deques[k % workers].push_back(i);
        }
        SmDispatcher::Steal(Mutex::new(deques))
    }

    /// Claim the next SM task index for `worker`, or `None` when all of
    /// them are claimed.
    fn claim(&self, worker: usize, tasks: usize) -> Option<usize> {
        match self {
            SmDispatcher::Shared(next) => {
                let i = next.fetch_add(1, Ordering::Relaxed);
                (i < tasks).then_some(i)
            }
            SmDispatcher::Steal(deques) => {
                let mut d = deques.lock().unwrap();
                if let Some(i) = d[worker].pop_front() {
                    return Some(i);
                }
                let victim = (0..d.len())
                    .filter(|&v| v != worker)
                    .max_by_key(|&v| d[v].len())?;
                d[victim].pop_back()
            }
        }
    }
}

/// The launch body, generic over the profiling sink. With [`NullSink`]
/// every hook is an empty `#[inline]` default method and every
/// `S::ENABLED` block is compile-time dead, so the unprofiled hot path
/// carries no profiling cost at all.
fn launch_impl<S: ProfileSink>(
    config: &GpuConfig,
    program: &Program,
    launch: LaunchConfig,
    args: &[Arg],
    mem: &mut GlobalMem,
    mut profile: Option<&mut LaunchProfile>,
) -> Result<LaunchStats, SimError> {
    if args.len() != program.param_regs.len() {
        return Err(SimError::BadArgument {
            kernel: program.name.clone(),
            message: format!(
                "takes {} argument(s), {} given",
                program.param_regs.len(),
                args.len()
            ),
        });
    }
    // Like the CUDA driver, auto-raise the shared-memory carve-out when
    // the kernel's static shared memory exceeds the configured one.
    let auto_cfg;
    let config = if program.smem_bytes > config.smem_carveout_bytes {
        auto_cfg = config
            .clone()
            .with_smem_for(program.smem_bytes)
            .ok_or_else(|| SimError::BadArgument {
                kernel: program.name.clone(),
                message: format!(
                    "declares {} B of shared memory, above the largest carve-out",
                    program.smem_bytes
                ),
            })?;
        &auto_cfg
    } else {
        config
    };
    if let Some(p) = profile.as_deref_mut() {
        // The carve-out auto-raise above may have shrunk the L1; keep the
        // profile's recorded geometry in sync with what the SMs simulate.
        p.l1 = config.l1_config();
    }
    let occ = max_resident_tbs(
        config,
        program.smem_bytes,
        program.num_regs as u32,
        launch.threads_per_block(),
    );
    let resident = occ.resident_tbs();
    if resident == 0 {
        return Err(SimError::BadArgument {
            kernel: program.name.clone(),
            message: format!(
                "cannot launch: a single block exceeds SM resources \
                 (smem {} B, {} regs/thread, {} threads/block)",
                program.smem_bytes,
                program.num_regs,
                launch.threads_per_block()
            ),
        });
    }

    let num_blocks = launch.num_blocks();
    let mut total = LaunchStats {
        resident_tbs_per_sm: resident,
        ..LaunchStats::default()
    };
    if num_blocks == 0 {
        return Ok(total);
    }

    let fuel = config.fuel_budget(mem.footprint_bytes() as u64);

    // Shared, launch-wide precomputation: decoded scoreboard access sets
    // (consulted on every ready-check) and the dispatch tables (per-warp
    // lane indices, uniform dims, parameter images).
    let access = decode_access(program);
    let tables = DispatchTables::new(program, launch, args);

    // Round-robin distribution of linear block ids over SMs.
    let num_sms = config.num_sms.max(1);
    let per_sm: Vec<(u32, VecDeque<u32>)> = (0..num_sms)
        .map(|sm_id| {
            let blocks: VecDeque<u32> = (0..num_blocks).filter(|b| b % num_sms == sm_id).collect();
            (sm_id, blocks)
        })
        .filter(|(_, blocks)| !blocks.is_empty())
        .collect();

    // Sanitized launches force the sequential path: one launch-wide
    // sanitizer state must observe every block's global accesses to catch
    // races between blocks on different SMs.
    let mut san_state = if config.sanitize_enabled() {
        Some(SanitizerState::new())
    } else {
        None
    };
    let workers = if san_state.is_some() || !config.sm_parallel_enabled() {
        1
    } else {
        config.sm_thread_budget().min(per_sm.len())
    };
    let nwarps = (resident * launch.warps_per_block()) as usize;
    // Resolve the miss-curve opt-in once per launch, not per SM (it may
    // consult the environment); irrelevant for the NullSink path.
    let prof_windows = S::ENABLED && config.profile_windows_enabled();

    if workers <= 1 {
        // Sequential path: every SM mutates global memory directly. One
        // workspace (register files, TB slots) is reused across SMs
        // instead of reallocating per SM.
        let mut ws = SmWorkspace::default();
        for (sm_id, blocks) in per_sm {
            let trace_this_sm = config.trace_requests && sm_id == 0;
            let mut sink = S::for_sm(
                sm_id,
                config.l1_config(),
                nwarps,
                resident as usize,
                prof_windows,
            );
            let res = run_sm(
                config,
                program,
                &access,
                &tables,
                launch,
                mem,
                resident,
                trace_this_sm,
                fuel,
                &mut ws,
                &mut sink,
                san_state.as_mut(),
                blocks,
            );
            // Merge the shard before propagating an error so a failing SM
            // still leaves its partial profile behind.
            if let Some(p) = profile.as_deref_mut() {
                sink.finish_into(p);
            }
            fold_stats(&mut total, res?, trace_this_sm);
        }
        return Ok(total);
    }

    // Parallel path: each SM simulates against a shared read snapshot of
    // pre-launch memory plus its own store log; logs merge back below in
    // ascending SM-id order so the committed memory image is independent
    // of thread scheduling *and* of the claim order the dispatcher
    // produced — stealing on or off.
    let snapshot: &GlobalMem = mem;
    let dispatcher = SmDispatcher::new(config.sm_steal_enabled(), &per_sm, workers);
    let results: Mutex<Vec<Option<SmOutcome<S>>>> =
        Mutex::new((0..per_sm.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        // Shadow the owned values with references so the `move` closures
        // capture `wid` by value but everything shared by borrow.
        let (dispatcher, per_sm, results) = (&dispatcher, &per_sm, &results);
        let (access, tables) = (&access, &tables);
        for wid in 0..workers {
            scope.spawn(move || {
                let mut ws = SmWorkspace::default();
                while let Some(i) = dispatcher.claim(wid, per_sm.len()) {
                    let (sm_id, blocks) = &per_sm[i];
                    let trace_this_sm = config.trace_requests && *sm_id == 0;
                    let mut shadow = ShadowMem::new(snapshot);
                    let mut sink = S::for_sm(
                        *sm_id,
                        config.l1_config(),
                        nwarps,
                        resident as usize,
                        prof_windows,
                    );
                    let res = run_sm(
                        config,
                        program,
                        access,
                        tables,
                        launch,
                        &mut shadow,
                        resident,
                        trace_this_sm,
                        fuel,
                        &mut ws,
                        &mut sink,
                        None,
                        blocks.clone(),
                    );
                    let outcome = (res, shadow.into_log(), sink);
                    results.lock().unwrap()[i] = Some(outcome);
                }
            });
        }
    });
    let collected = results.into_inner().unwrap_or_else(|p| p.into_inner());
    // Deterministic commit: stats fold, store logs apply, and profile
    // shards merge in ascending SM-id order; the first failing SM (by id)
    // reports its error, with lower-id successes already merged — exactly
    // the sequential behaviour, whatever the thread schedule was.
    for (i, outcome) in collected.into_iter().enumerate() {
        let Some((res, log, sink)) = outcome else {
            // Unreachable in practice (the scope joins all workers and
            // run_sm never panics), but a structured error beats a panic.
            return Err(SimError::MalformedProgram {
                kernel: program.name.clone(),
                pc: 0,
                message: "parallel SM worker produced no result".into(),
            });
        };
        let trace_this_sm = config.trace_requests && per_sm[i].0 == 0;
        if let Some(p) = profile.as_deref_mut() {
            sink.finish_into(p);
        }
        let stats = res?;
        fold_stats(&mut total, stats, trace_this_sm);
        log.apply(mem);
    }
    Ok(total)
}

/// Fold one SM's stats into the launch total (`cycles` is the max over
/// SMs — they run concurrently on the device).
fn fold_stats(total: &mut LaunchStats, stats: LaunchStats, take_trace: bool) {
    total.instructions += stats.instructions;
    total.l1_accesses += stats.l1_accesses;
    total.l1_hits += stats.l1_hits;
    total.offchip_requests += stats.offchip_requests;
    total.l2_accesses += stats.l2_accesses;
    total.l2_hits += stats.l2_hits;
    total.l2_evictions += stats.l2_evictions;
    total.tbs += stats.tbs;
    total.warps += stats.warps;
    total.cycles = total.cycles.max(stats.cycles);
    if take_trace {
        total.trace = stats.trace;
    }
}

/// Sanitizer barrier-site identity check at a release point: every parked
/// warp of the block must be at the same `__syncthreads()` site (same pc)
/// with the same dynamic arrival count, and no finished warp may have
/// arrived at fewer barriers than the parked ones (it would have exited
/// past a barrier its siblings are waiting at — on hardware the block
/// deadlocks or desynchronizes; arrival-count release masks it). Returns
/// a report with an empty `kernel` (the caller fills it in).
fn barrier_site_mismatch(ws: &[Warp], block: Option<u32>) -> Option<SanitizerReport> {
    let block = block.unwrap_or(0);
    let mut site: Option<(u32, u32)> = None;
    for w in ws {
        if w.state != WarpState::AtBarrier {
            continue;
        }
        match site {
            None => site = Some((w.bar_pc, w.bar_count)),
            Some((pc, count)) if (pc, count) != (w.bar_pc, w.bar_count) => {
                return Some(SanitizerReport {
                    kind: SanitizerKind::BarrierDivergence,
                    kernel: String::new(),
                    pc: pc.max(w.bar_pc),
                    detail: format!(
                        "warps of block {} parked at different __syncthreads() sites: \
                         pc {} (barrier #{}) vs pc {} (barrier #{})",
                        block, pc, count, w.bar_pc, w.bar_count
                    ),
                });
            }
            Some(_) => {}
        }
    }
    let (pc, count) = site?;
    for w in ws {
        if w.state == WarpState::Done && w.bar_count < count {
            return Some(SanitizerReport {
                kind: SanitizerKind::BarrierDivergence,
                kernel: String::new(),
                pc,
                detail: format!(
                    "a warp of block {} finished after {} barrier(s) while its siblings \
                     are parked at barrier #{} (pc {}): the finished warp never reached \
                     this __syncthreads()",
                    block, w.bar_count, count, pc
                ),
            });
        }
    }
    None
}

/// Run one SM over its block list, borrowing warp/TB storage from `ws`
/// and returning it when done (so the caller reuses the allocations —
/// register files included — for the next SM on this thread).
#[allow(clippy::too_many_arguments)]
fn run_sm<M: DeviceMem, S: ProfileSink>(
    config: &GpuConfig,
    program: &Program,
    access: &[OpAccess],
    tables: &DispatchTables,
    launch: LaunchConfig,
    mem: &mut M,
    resident: u32,
    trace: bool,
    fuel: Option<u64>,
    ws: &mut SmWorkspace,
    sink: &mut S,
    san: Option<&mut SanitizerState>,
    blocks: VecDeque<u32>,
) -> Result<LaunchStats, SimError> {
    ws.prepare(
        program,
        resident,
        launch.warps_per_block(),
        config.schedulers_per_sm as usize,
    );
    let nwarps = ws.warps.len();
    let mut sm = Sm {
        config,
        program,
        access,
        tables,
        launch,
        mem,
        cache: L1Cache::new(config.l1_config()),
        l2: config.l2_slice_config().map(L1Cache::new),
        l1_port_free: 0,
        offchip_free: 0,
        cycle: 0,
        wake: std::mem::take(&mut ws.wake),
        soa_pc: std::mem::take(&mut ws.pc),
        age: std::mem::take(&mut ws.age),
        ready: std::mem::take(&mut ws.ready),
        num_regs: program.num_regs as usize,
        warps: std::mem::take(&mut ws.warps),
        tbs: std::mem::take(&mut ws.tbs),
        warps_per_tb: launch.warps_per_block(),
        sched_next: vec![0; ws.last_issued.len()],
        last_issued: std::mem::take(&mut ws.last_issued),
        dispatch_age: 0,
        resident_blocks: 0,
        barrier_dirty: false,
        refill_dirty: true,
        active_tb_limit: resident as usize,
        dyncta_window: (0, 0),
        fuel,
        trace,
        stats: LaunchStats::default(),
        sink,
        san,
        prof_load_ready: if S::ENABLED {
            vec![0; nwarps]
        } else {
            Vec::new()
        },
    };
    let result = sm.run(blocks);
    if S::ENABLED && result.is_err() {
        // The success path records final aggregates inside `run`; on error
        // close the shard with whatever the SM reached so partial profiles
        // still carry cycle and instruction totals.
        sm.sink
            .sm_end(sm.cycle, sm.last_issued.len() as u32, sm.stats.instructions);
    }
    ws.wake = std::mem::take(&mut sm.wake);
    ws.pc = std::mem::take(&mut sm.soa_pc);
    ws.age = std::mem::take(&mut sm.age);
    ws.ready = std::mem::take(&mut sm.ready);
    ws.warps = std::mem::take(&mut sm.warps);
    ws.tbs = std::mem::take(&mut sm.tbs);
    ws.last_issued = std::mem::take(&mut sm.last_issued);
    result
}

struct TbSlot {
    /// Linear block id currently resident, if any.
    block: Option<u32>,
    /// Shared-memory segment for this block.
    smem: Vec<u32>,
}

/// The scoreboard registers and port usage of one op, decoded once per
/// launch by [`decode_access`]. `issue_time` consults this on every
/// ready-check instead of re-deriving reads/writes from the `Op` — the
/// single hottest query in the scheduler.
#[derive(Clone, Copy, Default)]
struct OpAccess {
    /// Source and destination registers (at most 3 reads + 1 write).
    regs: [u16; 4],
    /// How many entries of `regs` are in use.
    n: u8,
    /// Whether the op serializes on the L1D port (global/shared memory).
    uses_l1_port: bool,
}

/// Decode every op's scoreboard access set, indexed by pc.
fn decode_access(program: &Program) -> Vec<OpAccess> {
    program
        .ops
        .iter()
        .map(|op| {
            let mut a = OpAccess::default();
            for r in op.reads().into_iter().flatten() {
                a.regs[a.n as usize] = r;
                a.n += 1;
            }
            if let Some(d) = op.writes() {
                a.regs[a.n as usize] = d;
                a.n += 1;
            }
            a.uses_l1_port = matches!(
                op,
                Op::Ldg { .. } | Op::Stg { .. } | Op::Lds { .. } | Op::Sts { .. }
            );
            a
        })
        .collect()
}

/// Per-warp-in-block initial state shared by every dispatch of the launch.
struct WarpInit {
    /// Valid-lane mask (partial warps when `blockDim % 32 != 0`).
    valid: u32,
    /// Per-lane threadIdx.{x,y,z} register images.
    tidx: [[u32; 32]; 3],
}

/// Everything about a dispatch that does not depend on *which* block is
/// dispatched, computed once per launch: per-warp lane-index tables (the
/// divisions in the old per-lane loop), the warp-uniform block/grid dims,
/// and the parameter register images.
struct DispatchTables {
    warps: Vec<WarpInit>,
    /// (register, value) pairs uniform across lanes and blocks.
    uniforms: [(u16, u32); 6],
    /// (register, image) pairs for the kernel parameters.
    params: Vec<(u16, [u32; 32])>,
}

impl DispatchTables {
    fn new(program: &Program, launch: LaunchConfig, args: &[Arg]) -> DispatchTables {
        let (bx, by) = (launch.block.x.max(1), launch.block.y.max(1));
        let threads = launch.threads_per_block();
        let warps = (0..launch.warps_per_block())
            .map(|wi| {
                let base_lin = wi * 32;
                let mut valid = 0u32;
                let mut tidx = [[0u32; 32]; 3];
                for lane in 0..32u32 {
                    let lin = base_lin + lane;
                    if lin < threads {
                        valid |= 1 << lane;
                    }
                    tidx[0][lane as usize] = lin % bx;
                    tidx[1][lane as usize] = (lin / bx) % by;
                    tidx[2][lane as usize] = lin / (bx * by);
                }
                WarpInit { valid, tidx }
            })
            .collect();
        let uniforms = [
            (builtin_reg(Builtin::BlockDimX), launch.block.x),
            (builtin_reg(Builtin::BlockDimY), launch.block.y),
            (builtin_reg(Builtin::BlockDimZ), launch.block.z),
            (builtin_reg(Builtin::GridDimX), launch.grid.x),
            (builtin_reg(Builtin::GridDimY), launch.grid.y),
            (builtin_reg(Builtin::GridDimZ), launch.grid.z),
        ];
        let params = program
            .param_regs
            .iter()
            .zip(args)
            .map(|(p, arg)| (*p, [arg.register_image(); 32]))
            .collect();
        DispatchTables {
            warps,
            uniforms,
            params,
        }
    }
}

/// Reusable per-thread SM storage: warp slots (register files included)
/// and TB slots survive from one SM to the next instead of being
/// reallocated per SM — the dominant allocation cost of a multi-SM launch.
///
/// The scheduler-hot per-warp state lives here struct-of-arrays, not in
/// [`Warp`]: `wake` (next candidate issue cycle, `u64::MAX` for warps
/// that are not Ready), `pc` (mirror of `Warp::pc`), `age` (dispatch age
/// for GTO arbitration), and `ready` (the register scoreboard, flattened
/// to `nwarps × num_regs`). The per-cycle ready-scan and skip-ahead
/// min-reduction touch only these contiguous arrays; the heap-heavy
/// `Warp` structs are consulted only at issue time.
#[derive(Default)]
struct SmWorkspace {
    warps: Vec<Warp>,
    /// Next cycle warp `i` could possibly issue; `u64::MAX` when not
    /// Ready. This is the event queue of the scheduler: the idle-cycle
    /// skip-ahead jumps straight to its minimum.
    wake: Vec<u64>,
    /// SoA mirror of `Warp::pc`, synced after every issue — the scan
    /// reads the next op's access set without touching the warp.
    pc: Vec<u32>,
    /// Dispatch age (smaller = older) for greedy-then-oldest arbitration.
    age: Vec<u64>,
    /// Flattened scoreboard: `ready[i * num_regs + r]` is the cycle at
    /// which warp `i`'s register `r` becomes available.
    ready: Vec<u64>,
    tbs: Vec<TbSlot>,
    last_issued: Vec<Option<usize>>,
}

impl SmWorkspace {
    /// Shape the workspace for one SM of this launch and reset all
    /// per-SM state. Storage is reused whenever the geometry matches;
    /// warp register files are *not* cleared here — `Warp::reset` zeroes
    /// them at dispatch, exactly as the per-SM allocation path did.
    fn prepare(&mut self, program: &Program, resident: u32, warps_per_tb: u32, nsched: usize) {
        let nwarps = (resident * warps_per_tb) as usize;
        let num_regs = program.num_regs as usize;
        if self.warps.len() != nwarps
            || self.warps.first().is_some_and(|w| w.regs.len() != num_regs)
        {
            self.warps = (0..nwarps).map(|_| Warp::idle(num_regs)).collect();
        } else {
            for w in &mut self.warps {
                w.state = WarpState::Idle;
            }
        }
        self.wake.clear();
        self.wake.resize(nwarps, u64::MAX);
        self.pc.clear();
        self.pc.resize(nwarps, 0);
        self.age.clear();
        self.age.resize(nwarps, 0);
        self.ready.clear();
        self.ready.resize(nwarps * num_regs, 0);
        let smem_words = (program.smem_bytes as usize).div_ceil(4);
        if self.tbs.len() != resident as usize
            || self.tbs.first().is_some_and(|t| t.smem.len() != smem_words)
        {
            self.tbs = (0..resident)
                .map(|_| TbSlot {
                    block: None,
                    smem: vec![0; smem_words],
                })
                .collect();
        } else {
            for t in &mut self.tbs {
                t.block = None;
            }
        }
        self.last_issued.clear();
        self.last_issued.resize(nsched, None);
    }
}

struct Sm<'a, M: DeviceMem, S: ProfileSink> {
    config: &'a GpuConfig,
    program: &'a Program,
    /// Memoized per-op scoreboard access sets, indexed by pc.
    access: &'a [OpAccess],
    /// Launch-wide dispatch precomputation.
    tables: &'a DispatchTables,
    launch: LaunchConfig,
    mem: &'a mut M,
    cache: L1Cache,
    /// This SM's slice of the shared L2 (`None` when the L2 is
    /// disabled, see [`GpuConfig::l2_slice_config`]). Probed only by
    /// L1D load misses; stores bypass it (write-through, no-allocate
    /// at both levels). Keeping the slice per-SM — no timing state
    /// shared across SMs — is what preserves the parallel/sequential
    /// bit-identity guarantee.
    l2: Option<L1Cache>,
    /// Next cycle the L1D port is free (1 transaction / cycle).
    l1_port_free: u64,
    /// Next cycle the off-chip port is free.
    offchip_free: u64,
    cycle: u64,
    warps: Vec<Warp>,
    tbs: Vec<TbSlot>,
    warps_per_tb: u32,
    /// Per-warp wake time (see [`SmWorkspace::wake`]): a lower bound on
    /// the warp's next issue cycle, or `u64::MAX` while it is not Ready.
    /// Invariant: `wake[i] < u64::MAX` ⟺ `warps[i].state == Ready`, so
    /// the scheduler scan and the skip-ahead min-reduction run over this
    /// contiguous array alone.
    wake: Vec<u64>,
    /// SoA mirror of `Warp::pc`, synced after every issue.
    soa_pc: Vec<u32>,
    /// SoA dispatch age for GTO arbitration (smaller = older).
    age: Vec<u64>,
    /// Flattened scoreboard: `ready[i * num_regs + r]`.
    ready: Vec<u64>,
    num_regs: usize,
    /// Per-scheduler last-issued warp (greedy part of GTO).
    last_issued: Vec<Option<usize>>,
    /// Per-scheduler lower bound on the next cycle its partition can
    /// issue. A failed `pick` scan leaves every partition warp's `wake`
    /// at its exact next issue time, so the min it saw is that bound;
    /// until then `pick` returns `None` in O(1) instead of re-scanning.
    /// Any event that can make a warp issuable earlier (block dispatch,
    /// barrier release) resets the bounds to 0, forcing a fresh scan.
    sched_next: Vec<u64>,
    dispatch_age: u64,
    /// Resident blocks currently holding a TB slot — the O(1) form of
    /// "any `tbs[..].block` is Some".
    resident_blocks: usize,
    /// Set when a warp parked at a barrier or finished since the last
    /// `release_barriers` pass: those are the only transitions that can
    /// newly satisfy a block's arrival condition, so the per-slot release
    /// scan is skipped entirely on all other cycles.
    barrier_dirty: bool,
    /// Set when a warp finished since the last `retire_and_refill` pass
    /// (a block can only retire once its last warp is Done) — and at SM
    /// start, to seed the initial dispatch.
    refill_dirty: bool,
    /// DYNCTA: number of resident-TB slots currently allowed to issue
    /// (slots at or beyond the limit are paused). Always `tbs.len()` when
    /// dynamic throttling is off.
    active_tb_limit: usize,
    /// DYNCTA sampling-window state: (window start cycle, busy cycles).
    dyncta_window: (u64, u64),
    /// Cycle-fuel budget for this launch (`None` = unlimited). Checked at
    /// the top of the run loop, so skip-ahead jumps are charged too.
    fuel: Option<u64>,
    trace: bool,
    stats: LaunchStats,
    /// Profiling sink — [`NullSink`] when profiling is off, in which case
    /// every hook call below compiles to nothing.
    sink: &'a mut S,
    /// Launch-wide sanitizer state (`None` when sanitize mode is off).
    /// Shared by every SM of the launch — sanitized launches run
    /// sequentially — so inter-block races across SMs are observed.
    san: Option<&'a mut SanitizerState>,
    /// Per-warp completion cycle of the latest global load issued
    /// (profiling only, empty otherwise): lets [`Sm::classify_stall`] tell
    /// long (memory) scoreboard waits from short (ALU-dependency) ones.
    prof_load_ready: Vec<u64>,
}

impl<M: DeviceMem, S: ProfileSink> Sm<'_, M, S> {
    /// Warps currently parked at a `__syncthreads()` barrier.
    fn parked_warps(&self) -> usize {
        self.warps
            .iter()
            .filter(|w| w.state == WarpState::AtBarrier)
            .count()
    }

    /// The fuel ran out: classify the failure. Warps still parked at a
    /// barrier mean a peer never arrived (e.g. a spinning sibling warp) —
    /// report that as the deadlock it is; otherwise it is a plain runaway.
    fn out_of_fuel(&self) -> SimError {
        let parked = self.parked_warps();
        if parked > 0 {
            SimError::BarrierDeadlock {
                kernel: self.program.name.clone(),
                parked_warps: parked,
            }
        } else {
            SimError::FuelExhausted {
                kernel: self.program.name.clone(),
                cycles: self.cycle,
            }
        }
    }

    /// DYNCTA-style dynamic adjustment (paper §2.2): at each sampling
    /// window boundary, compare the fraction of issue slots lost to
    /// stalls against the thresholds and pause/resume one resident block.
    /// This is the reactive baseline — it pays a warm-up window before
    /// reacting and re-converges after every phase change, which is
    /// exactly the lag CATT's compile-time decisions avoid.
    fn dyncta_tick(&mut self, issued: bool) {
        let Some(cfg) = self.config.dyncta else {
            return;
        };
        if issued {
            self.dyncta_window.1 += 1;
        }
        let elapsed = self.cycle - self.dyncta_window.0;
        if elapsed < cfg.window {
            return;
        }
        let busy = self.dyncta_window.1 as f64 / elapsed as f64;
        let stall = 1.0 - busy;
        if stall > cfg.t_high && self.active_tb_limit > 1 {
            self.active_tb_limit -= 1;
        } else if stall < cfg.t_low && self.active_tb_limit < self.tbs.len() {
            self.active_tb_limit += 1;
        }
        self.dyncta_window = (self.cycle, 0);
    }

    fn run(&mut self, mut pending: VecDeque<u32>) -> Result<LaunchStats, SimError> {
        loop {
            // Cancellation poll: one pointer test when no token is set
            // (the default everywhere outside `catt serve`). Sits next to
            // the fuel check so both launch bounds share one exit point;
            // the event-driven loop makes iterations proportional to
            // issued work, so a relaxed load per iteration is noise.
            if let Some(tok) = &self.config.cancel {
                if tok.is_cancelled() {
                    return Err(SimError::Cancelled {
                        kernel: self.program.name.clone(),
                        cycles: self.cycle,
                    });
                }
            }
            if let Some(fuel) = self.fuel {
                if self.cycle >= fuel {
                    if S::ENABLED {
                        // Fuel cut the launch short: charge the cut-off
                        // slot to its own reason so fuel-bounded shards
                        // are identifiable in the breakdown.
                        self.sink
                            .stall(StallReason::Fuel, self.last_issued.len() as u64);
                    }
                    return Err(self.out_of_fuel());
                }
            }
            // Barrier release and TB retire/refill can only become
            // possible after a warp parks or finishes — both transitions
            // happen exclusively in `issue`, which raises the matching
            // dirty flag. All other cycles skip the per-slot scans
            // entirely (they would be no-ops).
            if self.barrier_dirty {
                self.barrier_dirty = false;
                self.release_barriers()?;
            }
            if self.refill_dirty {
                self.refill_dirty = false;
                self.retire_and_refill(&mut pending);
            }
            if pending.is_empty() && self.resident_blocks == 0 {
                break;
            }
            let mut issued = false;
            for sched in 0..self.last_issued.len() {
                if let Some(w) = self.pick(sched) {
                    self.issue(w)?;
                    self.sync_after_issue(w);
                    self.last_issued[sched] = Some(w);
                    issued = true;
                } else if S::ENABLED {
                    // Unused issue slot: classify and charge exactly one
                    // stall cycle, so per-SM slots always reconcile:
                    //   instructions + Σ stall_cycles = cycles × schedulers.
                    let reason = self.classify_stall(sched);
                    self.sink.stall(reason, 1);
                }
            }
            self.cycle += 1;
            self.dyncta_tick(issued);
            if !issued {
                match self.earliest_wakeup() {
                    Some(t) => {
                        // Clamp the jump to the fuel limit: a skip landing
                        // past `fuel` would report an exhaustion cycle
                        // count (and charge profiled stall slots) beyond
                        // the configured budget.
                        let t = match self.fuel {
                            Some(f) => t.min(f),
                            None => t,
                        };
                        if S::ENABLED && t > self.cycle {
                            // Skip-ahead: nothing can issue before `t`, so
                            // every scheduler loses the jumped-over cycles
                            // to the same reason it just stalled for (no
                            // state can change while nothing issues).
                            let delta = t - self.cycle;
                            for sched in 0..self.last_issued.len() {
                                let reason = self.classify_stall(sched);
                                self.sink.stall(reason, delta);
                            }
                        }
                        self.cycle = self.cycle.max(t);
                    }
                    None => {
                        if self.active_tb_limit < self.tbs.len() {
                            // Everything schedulable is done but paused
                            // blocks remain: resume them.
                            self.active_tb_limit = self.tbs.len();
                            continue;
                        }
                        // No Ready warp can ever issue. Barriers release at
                        // the top of the loop; reaching here with parked
                        // warps means a real deadlock — a peer that will
                        // never arrive.
                        let parked = self.parked_warps();
                        if parked > 0 {
                            return Err(SimError::BarrierDeadlock {
                                kernel: self.program.name.clone(),
                                parked_warps: parked,
                            });
                        }
                    }
                }
            }
        }
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.cycle;
        stats.l1_accesses = self.cache.accesses;
        stats.l1_hits = self.cache.hits + self.cache.mshr_merges;
        stats.offchip_requests = self.cache.offchip_requests;
        if let Some(l2) = &self.l2 {
            stats.l2_accesses = l2.accesses;
            stats.l2_hits = l2.hits + l2.mshr_merges;
            stats.l2_evictions = l2.evictions;
        }
        if S::ENABLED {
            self.sink.sm_end(
                stats.cycles,
                self.last_issued.len() as u32,
                stats.instructions,
            );
        }
        Ok(stats)
    }

    /// Attribute a scheduler's unused issue slot to a [`StallReason`] by
    /// inspecting its warp partition (profiling only; pure observation,
    /// never perturbs scheduling). The earliest-waking Ready warp decides
    /// between `Memory` (L1-port serialization or an outstanding load's
    /// data) and `Scoreboard` (short ALU dependency — heuristic: a wait
    /// that ends at or before the warp's latest load completion counts as
    /// memory); with no Ready warp, parked warps mean `Barrier`,
    /// throttle-paused ones `Throttled`, and an empty or finished
    /// partition `Idle`.
    fn classify_stall(&self, sched: usize) -> StallReason {
        let nsched = self.last_issued.len();
        let mut best: Option<(u64, StallReason)> = None;
        let mut any_barrier = false;
        let mut any_throttled = false;
        for i in (sched..self.warps.len()).step_by(nsched) {
            let w = &self.warps[i];
            match w.state {
                WarpState::AtBarrier => any_barrier = true,
                WarpState::Ready => {
                    if (w.tb_slot as usize) >= self.active_tb_limit {
                        any_throttled = true;
                        continue;
                    }
                    let a = &self.access[self.soa_pc[i] as usize];
                    let mut reg_t = self.cycle;
                    let base = i * self.num_regs;
                    for &r in &a.regs[..a.n as usize] {
                        reg_t = reg_t.max(self.ready[base + r as usize]);
                    }
                    let port_t = if a.uses_l1_port { self.l1_port_free } else { 0 };
                    let t = reg_t.max(port_t);
                    // Memory if the wait is on the L1 port, or if it ends at or
                    // before the warp's latest outstanding-load completion (a
                    // register dependency on load data); otherwise scoreboard.
                    let memory = (a.uses_l1_port && port_t >= reg_t && port_t > self.cycle)
                        || t <= self.prof_load_ready[i];
                    let reason = if memory {
                        StallReason::Memory
                    } else {
                        StallReason::Scoreboard
                    };
                    match best {
                        Some((bt, _)) if bt <= t => {}
                        _ => best = Some((t, reason)),
                    }
                }
                _ => {}
            }
        }
        match best {
            Some((_, reason)) => reason,
            None if any_barrier => StallReason::Barrier,
            None if any_throttled => StallReason::Throttled,
            None => StallReason::Idle,
        }
    }

    // ----- dispatch ------------------------------------------------------

    fn retire_and_refill(&mut self, pending: &mut VecDeque<u32>) {
        for slot in 0..self.tbs.len() {
            if self.tbs[slot].block.is_some() {
                let lo = slot * self.warps_per_tb as usize;
                let hi = lo + self.warps_per_tb as usize;
                if self.warps[lo..hi]
                    .iter()
                    .all(|w| w.state == WarpState::Done)
                {
                    if S::ENABLED {
                        if let Some(b) = self.tbs[slot].block {
                            self.sink.tb_end(slot, b, self.cycle);
                        }
                    }
                    self.tbs[slot].block = None;
                    self.resident_blocks -= 1;
                    for w in &mut self.warps[lo..hi] {
                        w.state = WarpState::Idle;
                    }
                }
            }
            if self.tbs[slot].block.is_none() {
                if let Some(block) = pending.pop_front() {
                    self.dispatch(slot, block);
                }
            }
        }
    }

    fn dispatch(&mut self, slot: usize, block: u32) {
        self.tbs[slot].block = Some(block);
        self.tbs[slot].smem.fill(0);
        self.resident_blocks += 1;
        self.stats.tbs += 1;
        if S::ENABLED {
            self.sink.tb_start(slot, block, self.cycle);
        }
        let (gx, gy) = (self.launch.grid.x, self.launch.grid.y);
        // Warp-uniform values: the block indices vary per dispatch, the
        // dims/params come from the launch-wide tables. All are written
        // as one `[v; 32]` store per register instead of 32 scalar writes
        // per lane; the per-lane threadIdx divisions were precomputed
        // once in `DispatchTables::new`.
        let block_idx = [
            (builtin_reg(Builtin::BlockIdxX), block % gx),
            (builtin_reg(Builtin::BlockIdxY), (block / gx) % gy),
            (builtin_reg(Builtin::BlockIdxZ), block / (gx * gy)),
        ];
        let tables = self.tables;
        let lo = slot * self.warps_per_tb as usize;
        for (wi, init) in tables.warps.iter().enumerate() {
            let w = &mut self.warps[lo + wi];
            self.dispatch_age += 1;
            w.reset(init.valid, slot as u32);
            self.wake[lo + wi] = 0;
            self.soa_pc[lo + wi] = 0;
            self.age[lo + wi] = self.dispatch_age;
            let base = (lo + wi) * self.num_regs;
            self.ready[base..base + self.num_regs].fill(0);
            self.stats.warps += 1;
            if S::ENABLED {
                self.sink.warp_begin(lo + wi, block, self.cycle);
                self.prof_load_ready[lo + wi] = 0;
            }
            w.regs[builtin_reg(Builtin::ThreadIdxX) as usize] = init.tidx[0];
            w.regs[builtin_reg(Builtin::ThreadIdxY) as usize] = init.tidx[1];
            w.regs[builtin_reg(Builtin::ThreadIdxZ) as usize] = init.tidx[2];
            for &(r, v) in &block_idx {
                w.regs[r as usize] = [v; 32];
            }
            for &(r, v) in &tables.uniforms {
                w.regs[r as usize] = [v; 32];
            }
            for (r, image) in &tables.params {
                w.regs[*r as usize] = *image;
            }
        }
        // The fresh warps are issuable now: drop every scheduler's
        // cached next-issue bound.
        self.sched_next.fill(0);
    }

    /// Release barriers by arrival count: once every non-finished warp of
    /// a block is parked, all parked warps resume. Done warps count as
    /// arrived, so partial blocks never deadlock — a forgiving semantics
    /// that masks divergent barriers; under sanitize mode, the release
    /// point additionally checks barrier-*site* identity (every parked
    /// warp at the same pc with the same dynamic arrival count, no
    /// finished warp short of that count) and reports
    /// [`SanitizerKind::BarrierDivergence`] when it fails.
    fn release_barriers(&mut self) -> Result<(), SimError> {
        for slot in 0..self.tbs.len() {
            if self.tbs[slot].block.is_none() {
                continue;
            }
            let lo = slot * self.warps_per_tb as usize;
            let hi = lo + self.warps_per_tb as usize;
            let ws = &mut self.warps[lo..hi];
            let any_parked = ws.iter().any(|w| w.state == WarpState::AtBarrier);
            let all_arrived = ws
                .iter()
                .all(|w| matches!(w.state, WarpState::AtBarrier | WarpState::Done));
            if any_parked && all_arrived {
                if self.san.is_some() {
                    if let Some(report) = barrier_site_mismatch(ws, self.tbs[slot].block) {
                        return Err(SimError::Sanitizer(SanitizerReport {
                            kernel: self.program.name.clone(),
                            ..report
                        }));
                    }
                }
                for (off, w) in ws.iter_mut().enumerate() {
                    if w.state == WarpState::AtBarrier {
                        w.state = WarpState::Ready;
                        self.wake[lo + off] = 0;
                        if S::ENABLED {
                            self.sink.warp_release(lo + off, self.cycle);
                        }
                    }
                }
                // Released warps are issuable now: drop the cached
                // next-issue bounds.
                self.sched_next.fill(0);
            }
        }
        Ok(())
    }

    // ----- scheduling ----------------------------------------------------

    /// Re-establish the SoA invariants for warp `w` after it issued: sync
    /// the pc mirror, reset its wake time (still schedulable this cycle if
    /// Ready, `u64::MAX` otherwise), and raise the dirty flags for the
    /// state transitions that can unlock other warps or TB slots.
    #[inline]
    fn sync_after_issue(&mut self, w: usize) {
        self.soa_pc[w] = self.warps[w].pc;
        match self.warps[w].state {
            WarpState::Ready => self.wake[w] = self.cycle,
            WarpState::AtBarrier => {
                self.wake[w] = u64::MAX;
                // Parking may complete its block's arrival condition.
                self.barrier_dirty = true;
            }
            WarpState::Done => {
                self.wake[w] = u64::MAX;
                // Finishing counts as "arrived" for sibling barriers and
                // may retire the block.
                self.barrier_dirty = true;
                self.refill_dirty = true;
            }
            // An issued warp is never Idle; park it defensively (a parked
            // warp can only under-schedule, never corrupt results).
            WarpState::Idle => self.wake[w] = u64::MAX,
        }
    }

    /// Earliest cycle at which Ready warp `i` could issue its next
    /// instruction. Consults only the SoA state (pc mirror, flattened
    /// scoreboard, memoized [`OpAccess`]) — this runs on every
    /// ready-check of every scheduler and must not touch `Warp`.
    #[inline]
    fn issue_time(&self, i: usize) -> u64 {
        debug_assert_eq!(self.warps[i].state, WarpState::Ready);
        let a = &self.access[self.soa_pc[i] as usize];
        let mut t = self.cycle;
        let base = i * self.num_regs;
        for &r in &a.regs[..a.n as usize] {
            t = t.max(self.ready[base + r as usize]);
        }
        if a.uses_l1_port {
            t = t.max(self.l1_port_free);
        }
        t
    }

    /// GTO pick for one scheduler: keep issuing the last warp while it is
    /// ready; otherwise the oldest ready warp. `wake` filters out warps
    /// whose last computed stall has not elapsed (and, at `u64::MAX`,
    /// everything not Ready), so the costlier scoreboard check in
    /// `issue_time` runs once per stall instead of every cycle — and the
    /// updated bounds it leaves behind are exactly what the skip-ahead
    /// min-reduction jumps to.
    fn pick(&mut self, sched: usize) -> Option<usize> {
        let cycle = self.cycle;
        // O(1) fast path: a previous failed scan proved nothing in this
        // partition can issue before `sched_next[sched]`.
        if cycle < self.sched_next[sched] {
            return None;
        }
        let nsched = self.last_issued.len();
        // The throttle filter dereferences `warps[i].tb_slot`; hoist the
        // "is anything throttled at all" test so the common (untrottled)
        // scan never touches the warp structs.
        let throttling = self.active_tb_limit < self.tbs.len();
        if let Some(last) = self.last_issued[sched] {
            if self.wake[last] <= cycle
                && (!throttling || (self.warps[last].tb_slot as usize) < self.active_tb_limit)
            {
                let t = self.issue_time(last);
                if t <= cycle {
                    return Some(last);
                }
                self.wake[last] = t;
            }
        }
        let mut best: Option<(u64, usize)> = None;
        // Min wake over the whole partition, throttled warps included (a
        // paused warp's stale-low wake keeps the bound conservative, so a
        // resume never needs to invalidate it).
        let mut next = u64::MAX;
        let mut i = sched;
        while i < self.wake.len() {
            let wk = self.wake[i];
            if wk <= cycle {
                if throttling && (self.warps[i].tb_slot as usize) >= self.active_tb_limit {
                    next = next.min(wk);
                    i += nsched;
                    continue; // paused by the dynamic throttler
                }
                let t = self.issue_time(i);
                if t <= cycle {
                    let age = self.age[i];
                    match best {
                        Some((ba, _)) if ba <= age => {}
                        _ => best = Some((age, i)),
                    }
                } else {
                    self.wake[i] = t;
                    next = next.min(t);
                }
            } else {
                next = next.min(wk); // u64::MAX stays u64::MAX
            }
            i += nsched;
        }
        if best.is_none() {
            self.sched_next[sched] = next;
        }
        best.map(|(_, i)| i)
    }

    /// Minimum future issue time over all Ready warps (for idle-cycle
    /// skip-ahead), or `None` when nothing is Ready. `wake` entries are
    /// exact here: `pick` just recomputed every Ready warp that had
    /// reached its previous bound, and everything else holds `u64::MAX`.
    fn earliest_wakeup(&self) -> Option<u64> {
        let t = if self.active_tb_limit < self.tbs.len() {
            // Dynamic throttling active: paused-slot warps must not drive
            // the jump (they cannot issue until resumed).
            self.wake
                .iter()
                .enumerate()
                .filter(|&(i, &t)| {
                    t != u64::MAX && (self.warps[i].tb_slot as usize) < self.active_tb_limit
                })
                .map(|(_, &t)| t)
                .min()
        } else {
            // Unthrottled: every scheduler's pick this cycle either
            // scanned (recomputing its bound) or fast-pathed on a bound
            // that is still the exact partition min — so the global min
            // is the min over the per-scheduler bounds, O(schedulers)
            // instead of O(warps).
            self.sched_next
                .iter()
                .copied()
                .min()
                .filter(|&t| t != u64::MAX)
        };
        t.map(|t| t.max(self.cycle))
    }

    // ----- execution -----------------------------------------------------

    /// A divergence-stack mismatch is a lowering bug; surfacing it as
    /// [`SimError::MalformedProgram`] keeps one bad program from killing a
    /// whole evaluation worker.
    fn malformed(&self, pc: usize, message: &str) -> SimError {
        SimError::MalformedProgram {
            kernel: self.program.name.clone(),
            pc: pc as u32,
            message: message.to_string(),
        }
    }

    fn issue(&mut self, wi: usize) -> Result<(), SimError> {
        self.stats.instructions += 1;
        let pc = self.warps[wi].pc as usize;
        let op = self.program.ops[pc];
        // ALU results are written only for *active* lanes: inactive lanes
        // (diverged, loop-finished, or returned) must not mutate their
        // registers, exactly as predicated execution works in hardware.
        // `$f` computes the lane value from (register file, lane index).
        // Every lane function is total (division guards zero, float ops
        // never trap), so the value is computed for all 32 lanes without
        // branching — a loop the compiler can vectorize — and the active
        // mask is applied at the write. A fully-active warp (the common
        // case) takes one array store.
        macro_rules! alu {
            ($dst:expr, $sfu:expr, $f:expr) => {{
                let w = &mut self.warps[wi];
                let active = w.active;
                let f = $f;
                let mut vals = [0u32; 32];
                for l in 0..32 {
                    vals[l] = f(&w.regs, l);
                }
                let d = &mut w.regs[$dst as usize];
                if active == u32::MAX {
                    *d = vals;
                } else {
                    for l in 0..32 {
                        if active & (1 << l) != 0 {
                            d[l] = vals[l];
                        }
                    }
                }
                self.finish_alu(wi, $dst, $sfu);
            }};
        }
        type R = Vec<[u32; 32]>;
        match op {
            Op::MovImm { dst, imm } => {
                alu!(dst, false, |_r: &R, _l: usize| imm)
            }
            Op::Mov { dst, src } => {
                alu!(dst, false, |r: &R, l: usize| r[src as usize][l])
            }
            Op::IBin { op, dst, a, b } => {
                alu!(dst, false, |r: &R, l: usize| ibin(
                    op,
                    r[a as usize][l],
                    r[b as usize][l]
                ))
            }
            Op::FBin { op, dst, a, b } => {
                alu!(dst, op == FBinOp::Pow, |r: &R, l: usize| fbin(
                    op,
                    r[a as usize][l],
                    r[b as usize][l]
                ))
            }
            Op::FUn { op, dst, a } => {
                alu!(
                    dst,
                    op != FUnOp::Neg && op != FUnOp::Abs,
                    |r: &R, l: usize| { fun(op, r[a as usize][l]) }
                )
            }
            Op::INeg { dst, a } => {
                alu!(
                    dst,
                    false,
                    |r: &R, l: usize| (r[a as usize][l] as i32).wrapping_neg() as u32
                )
            }
            Op::IAbs { dst, a } => {
                alu!(
                    dst,
                    false,
                    |r: &R, l: usize| (r[a as usize][l] as i32).wrapping_abs() as u32
                )
            }
            Op::Not { dst, a } => {
                alu!(dst, false, |r: &R, l: usize| (r[a as usize][l] == 0) as u32)
            }
            Op::Cmp {
                op,
                float,
                dst,
                a,
                b,
            } => {
                alu!(dst, false, |r: &R, l: usize| cmp(
                    op,
                    float,
                    r[a as usize][l],
                    r[b as usize][l]
                ) as u32)
            }
            Op::Sel { dst, c, a, b } => {
                alu!(dst, false, |r: &R, l: usize| if r[c as usize][l] != 0 {
                    r[a as usize][l]
                } else {
                    r[b as usize][l]
                })
            }
            Op::CvtIF { dst, a } => {
                alu!(dst, false, |r: &R, l: usize| (r[a as usize][l] as i32
                    as f32)
                    .to_bits())
            }
            Op::CvtFI { dst, a } => {
                alu!(
                    dst,
                    false,
                    |r: &R, l: usize| (f32::from_bits(r[a as usize][l]) as i32) as u32
                )
            }
            Op::Ldg { dst, addr } => self.exec_ldg(wi, dst, addr)?,
            Op::Stg { src, addr } => self.exec_stg(wi, src, addr)?,
            Op::Lds { dst, addr } => {
                let slot = self.warps[wi].tb_slot as usize;
                let w = &mut self.warps[wi];
                let addrs = w.regs[addr as usize];
                let active = w.active;
                let smem = &self.tbs[slot].smem;
                if self.san.is_some() {
                    if let Some((lane, a)) = shared_oob_lane(&addrs, active, smem.len()) {
                        return Err(SimError::Sanitizer(SanitizerReport {
                            kind: SanitizerKind::SharedOutOfBounds,
                            kernel: self.program.name.clone(),
                            pc: pc as u32,
                            detail: format!(
                                "lane {lane} loads shared byte address {a} past the {} B \
                                 of declared __shared__ storage",
                                smem.len() * 4
                            ),
                        }));
                    }
                }
                // Branchless like the `alu!` body: load every lane (a
                // clamped read is total), mask at the write.
                let mut vals = [0u32; 32];
                for l in 0..32 {
                    vals[l] = smem.get(addrs[l] as usize / 4).copied().unwrap_or(0);
                }
                let d = &mut w.regs[dst as usize];
                if active == u32::MAX {
                    *d = vals;
                } else {
                    for l in 0..32 {
                        if active & (1 << l) != 0 {
                            d[l] = vals[l];
                        }
                    }
                }
                self.ready[wi * self.num_regs + dst as usize] =
                    self.cycle + self.config.latencies.shared;
                self.l1_port_free = self.l1_port_free.max(self.cycle) + 1;
                w.pc += 1;
            }
            Op::Sts { src, addr } => {
                let slot = self.warps[wi].tb_slot as usize;
                let w = &mut self.warps[wi];
                let addrs = w.regs[addr as usize];
                let vals = w.regs[src as usize];
                let active = w.active;
                let smem = &mut self.tbs[slot].smem;
                if self.san.is_some() {
                    if let Some((lane, a)) = shared_oob_lane(&addrs, active, smem.len()) {
                        return Err(SimError::Sanitizer(SanitizerReport {
                            kind: SanitizerKind::SharedOutOfBounds,
                            kernel: self.program.name.clone(),
                            pc: pc as u32,
                            detail: format!(
                                "lane {lane} stores to shared byte address {a} past the \
                                 {} B of declared __shared__ storage",
                                smem.len() * 4
                            ),
                        }));
                    }
                }
                for l in 0..32 {
                    if active & (1 << l) != 0 {
                        if let Some(word) = smem.get_mut(addrs[l] as usize / 4) {
                            *word = vals[l];
                        }
                    }
                }
                self.l1_port_free = self.l1_port_free.max(self.cycle) + 1;
                w.pc += 1;
            }
            Op::Bar => {
                let w = &mut self.warps[wi];
                if self.san.is_some() {
                    // `__syncthreads()` must be reached by every lane of
                    // the warp that has not returned; a partial mask means
                    // the barrier sits under thread-divergent control flow
                    // (undefined behaviour on hardware).
                    let expected = w.valid & !w.exited;
                    if w.active != expected {
                        return Err(SimError::Sanitizer(SanitizerReport {
                            kind: SanitizerKind::BarrierDivergence,
                            kernel: self.program.name.clone(),
                            pc: pc as u32,
                            detail: format!(
                                "__syncthreads() under intra-warp divergence: active lane \
                                 mask {:#010x}, but all non-exited lanes {:#010x} must \
                                 arrive together",
                                w.active, expected
                            ),
                        }));
                    }
                }
                w.bar_pc = pc as u32;
                w.bar_count += 1;
                w.state = WarpState::AtBarrier;
                w.pc += 1;
                if S::ENABLED {
                    self.sink.warp_barrier(wi, self.cycle);
                }
            }
            Op::If { cond, else_pc, .. } => {
                let w = &mut self.warps[wi];
                let cond_lanes = w.predicate_mask(cond);
                let taken = w.active & cond_lanes;
                let fallthru = w.active & !cond_lanes;
                if taken != 0 {
                    w.stack.push(Frame::If {
                        restore: w.active,
                        else_mask: fallthru,
                    });
                    w.active = taken;
                    w.pc += 1;
                } else {
                    // No lane takes the then-branch: go straight to the
                    // else branch (or EndIf) with the else mask consumed.
                    w.stack.push(Frame::If {
                        restore: w.active,
                        else_mask: 0,
                    });
                    w.active = fallthru;
                    w.pc = else_pc;
                }
            }
            Op::Else { end_pc } => {
                let w = &mut self.warps[wi];
                let Some(Frame::If { else_mask, .. }) = w.stack.last_mut() else {
                    return Err(self.malformed(pc, "Else without If frame"));
                };
                let em = *else_mask;
                if em != 0 {
                    *else_mask = 0;
                    w.active = em & !w.exited;
                    w.pc += 1;
                } else {
                    w.pc = end_pc;
                }
            }
            Op::EndIf => {
                let w = &mut self.warps[wi];
                let Some(Frame::If { restore, .. }) = w.stack.pop() else {
                    return Err(self.malformed(pc, "EndIf without If frame"));
                };
                w.active = restore & !w.exited & w.innermost_loop_live();
                w.pc += 1;
            }
            Op::LoopBegin { end_pc } => {
                let w = &mut self.warps[wi];
                w.stack.push(Frame::Loop {
                    restore: w.active,
                    live: w.active,
                    end_pc,
                });
                w.pc += 1;
            }
            Op::LoopTest { cond } => {
                let w = &mut self.warps[wi];
                let cond_lanes = w.predicate_mask(cond);
                let exited = w.exited;
                let Some(Frame::Loop {
                    live,
                    end_pc,
                    restore,
                }) = w.stack.last_mut()
                else {
                    return Err(self.malformed(pc, "LoopTest without Loop frame"));
                };
                *live &= cond_lanes & !exited;
                if *live == 0 {
                    let (end_pc, restore) = (*end_pc, *restore);
                    w.stack.pop();
                    w.active = restore & !w.exited & w.innermost_loop_live();
                    w.pc = end_pc;
                } else {
                    w.active = *live;
                    w.pc += 1;
                }
            }
            Op::LoopJump { cond_pc } => {
                let w = &mut self.warps[wi];
                let Some(Frame::Loop { live, .. }) = w.stack.last() else {
                    return Err(self.malformed(pc, "LoopJump without Loop frame"));
                };
                w.active = *live;
                w.pc = cond_pc;
            }
            Op::Break => {
                let w = &mut self.warps[wi];
                let breaking = w.active;
                let mut found = false;
                for f in w.stack.iter_mut().rev() {
                    if let Frame::Loop { live, .. } = f {
                        *live &= !breaking;
                        found = true;
                        break;
                    }
                }
                if !found {
                    return Err(self.malformed(pc, "Break outside loop"));
                }
                w.active = 0;
                w.pc += 1;
            }
            Op::Ret => {
                let w = &mut self.warps[wi];
                w.exited |= w.active;
                w.active = 0;
                w.pc += 1;
            }
            Op::Exit => {
                let w = &mut self.warps[wi];
                w.state = WarpState::Done;
                if S::ENABLED {
                    self.sink.warp_done(wi, self.cycle);
                }
            }
        }
        Ok(())
    }

    fn finish_alu(&mut self, wi: usize, dst: u16, sfu: bool) {
        let lat = if sfu {
            self.config.latencies.sfu
        } else {
            self.config.latencies.alu
        };
        self.ready[wi * self.num_regs + dst as usize] = self.cycle + lat;
        self.warps[wi].pc += 1;
    }

    /// Unique 128-byte line base addresses touched by the active lanes.
    fn coalesce(&self, wi: usize, addr_reg: u16) -> ([u32; 32], usize) {
        let w = &self.warps[wi];
        let addrs = w.regs[addr_reg as usize];
        let line = self.config.l1_line_bytes;
        let mut lines = [0u32; 32];
        let mut n = 0;
        for (l, &a) in addrs.iter().enumerate() {
            if w.active & (1 << l) != 0 {
                let la = a / line;
                if !lines[..n].contains(&la) {
                    lines[n] = la;
                    n += 1;
                }
            }
        }
        (lines, n)
    }

    /// Sanitize one warp's global access (sanitize mode only): every
    /// active lane's load must fall inside an allocation, and every lane's
    /// access is fed to the launch-wide inter-block race detector. Wild
    /// *stores* are not flagged — [`GlobalMem::store`] drops them, so they
    /// cannot corrupt state — but they are recorded for race detection.
    fn sanitize_global(&mut self, wi: usize, addr: u16, is_store: bool) -> Result<(), SimError> {
        let w = &self.warps[wi];
        let addrs = w.regs[addr as usize];
        let active = w.active;
        let pc = w.pc;
        let block = self.tbs[w.tb_slot as usize].block.unwrap_or(0);
        for (l, &a) in addrs.iter().enumerate() {
            if active & (1 << l) == 0 {
                continue;
            }
            if !is_store && !self.mem.is_allocated(a) {
                return Err(SimError::Sanitizer(SanitizerReport {
                    kind: SanitizerKind::UninitializedRead,
                    kernel: self.program.name.clone(),
                    pc,
                    detail: format!(
                        "lane {l} loads byte address {a:#x}, which no allocation covers \
                         (the simulator reads 0; hardware reads garbage or faults)"
                    ),
                }));
            }
            if let Some(san) = self.san.as_deref_mut() {
                let race = if is_store {
                    san.record_global_store(a, block)
                } else {
                    san.record_global_load(a, block)
                };
                if let Some(detail) = race {
                    return Err(SimError::Sanitizer(SanitizerReport {
                        kind: SanitizerKind::GlobalRace,
                        kernel: self.program.name.clone(),
                        pc,
                        detail: format!("lane {l}: {detail}"),
                    }));
                }
            }
        }
        Ok(())
    }

    fn exec_ldg(&mut self, wi: usize, dst: u16, addr: u16) -> Result<(), SimError> {
        if self.san.is_some() {
            self.sanitize_global(wi, addr, false)?;
        }
        // Functional load now; timing below.
        {
            let w = &mut self.warps[wi];
            let addrs = w.regs[addr as usize];
            let active = w.active;
            let d = &mut w.regs[dst as usize];
            for l in 0..32 {
                if active & (1 << l) != 0 {
                    d[l] = self.mem.load(addrs[l]);
                }
            }
        }
        let (lines, n) = self.coalesce(wi, addr);
        if self.trace {
            self.stats.trace.record(n as u32);
        }
        let lat = self.config.latencies;
        let start = self.l1_port_free.max(self.cycle);
        self.l1_port_free = start + n.max(1) as u64;
        let mut data_ready = self.cycle + lat.l1_hit;
        let line_bytes = self.config.l1_line_bytes;
        for (k, la) in lines[..n].iter().enumerate() {
            let t = start + k as u64;
            let offchip_free = &mut self.offchip_free;
            let l2 = &mut self.l2;
            let mut l2_probe = None;
            let res = self.cache.access_load(la * line_bytes, t, lat.l1_hit, || {
                // Off-chip port first: L2 hits and misses both cross the
                // SM's off-chip interface, so the bandwidth limit — the
                // contention effect CATT exploits — is independent of the
                // L2-hit/DRAM latency split below.
                *offchip_free = (*offchip_free).max(t) + lat.offchip_port;
                let issue = *offchip_free;
                match l2 {
                    Some(l2) => {
                        let r = l2.access_load(la * line_bytes, issue, lat.l2_hit, || {
                            issue + lat.offchip
                        });
                        l2_probe = Some((r.hit, r.evicted));
                        r.data_ready
                    }
                    None => issue + lat.offchip,
                }
            });
            if S::ENABLED {
                self.sink.l1_load(res.set, *la, res.hit, res.evicted);
                if let Some((hit, evicted)) = l2_probe {
                    self.sink.l2_load(hit, evicted);
                }
            }
            data_ready = data_ready.max(res.data_ready);
        }
        if S::ENABLED {
            self.prof_load_ready[wi] = self.prof_load_ready[wi].max(data_ready);
        }
        self.ready[wi * self.num_regs + dst as usize] = data_ready;
        self.warps[wi].pc += 1;
        Ok(())
    }

    fn exec_stg(&mut self, wi: usize, src: u16, addr: u16) -> Result<(), SimError> {
        if self.san.is_some() {
            self.sanitize_global(wi, addr, true)?;
        }
        {
            let w = &self.warps[wi];
            let addrs = w.regs[addr as usize];
            let vals = w.regs[src as usize];
            let active = w.active;
            for l in 0..32 {
                if active & (1 << l) != 0 {
                    self.mem.store(addrs[l], vals[l]);
                }
            }
        }
        let (lines, n) = self.coalesce(wi, addr);
        if self.trace {
            self.stats.trace.record(n as u32);
        }
        let lat = self.config.latencies;
        let start = self.l1_port_free.max(self.cycle);
        self.l1_port_free = start + n.max(1) as u64;
        let line_bytes = self.config.l1_line_bytes;
        for (k, la) in lines[..n].iter().enumerate() {
            let t = start + k as u64;
            let set = self.cache.access_store(la * line_bytes);
            if S::ENABLED {
                self.sink.l1_store(set, *la);
            }
            self.offchip_free = self.offchip_free.max(t) + lat.offchip_port;
        }
        let w = &mut self.warps[wi];
        w.pc += 1;
        Ok(())
    }
}

/// First active lane whose shared-memory access falls past the declared
/// `__shared__` storage (`smem_words` words), if any. The simulator
/// clamps such accesses (loads 0, drops stores); under sanitize mode they
/// are reported instead.
fn shared_oob_lane(addrs: &[u32; 32], active: u32, smem_words: usize) -> Option<(usize, u32)> {
    for (l, &a) in addrs.iter().enumerate() {
        if active & (1 << l) != 0 && a as usize / 4 >= smem_words {
            return Some((l, a));
        }
    }
    None
}

// ----- lane ALU semantics ---------------------------------------------------

fn ibin(op: IBinOp, a: u32, b: u32) -> u32 {
    let (ia, ib) = (a as i32, b as i32);
    match op {
        IBinOp::Add => ia.wrapping_add(ib) as u32,
        IBinOp::Sub => ia.wrapping_sub(ib) as u32,
        IBinOp::Mul => ia.wrapping_mul(ib) as u32,
        IBinOp::Div => {
            if ib == 0 {
                0
            } else {
                ia.wrapping_div(ib) as u32
            }
        }
        IBinOp::Rem => {
            if ib == 0 {
                0
            } else {
                ia.wrapping_rem(ib) as u32
            }
        }
        IBinOp::Min => ia.min(ib) as u32,
        IBinOp::Max => ia.max(ib) as u32,
        IBinOp::Shl => ia.wrapping_shl(b & 31) as u32,
        IBinOp::Shr => ia.wrapping_shr(b & 31) as u32,
        IBinOp::And => a & b,
        IBinOp::Or => a | b,
        IBinOp::Xor => a ^ b,
    }
}

fn fbin(op: FBinOp, a: u32, b: u32) -> u32 {
    let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
    let r = match op {
        FBinOp::Add => fa + fb,
        FBinOp::Sub => fa - fb,
        FBinOp::Mul => fa * fb,
        FBinOp::Div => fa / fb,
        FBinOp::Min => fa.min(fb),
        FBinOp::Max => fa.max(fb),
        FBinOp::Pow => fa.powf(fb),
    };
    r.to_bits()
}

fn fun(op: FUnOp, a: u32) -> u32 {
    let fa = f32::from_bits(a);
    let r = match op {
        FUnOp::Neg => -fa,
        FUnOp::Sqrt => fa.sqrt(),
        FUnOp::Exp => fa.exp(),
        FUnOp::Log => fa.ln(),
        FUnOp::Abs => fa.abs(),
        FUnOp::Sin => fa.sin(),
        FUnOp::Cos => fa.cos(),
    };
    r.to_bits()
}

fn cmp(op: CmpOp, float: bool, a: u32, b: u32) -> bool {
    if float {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        match op {
            CmpOp::Lt => fa < fb,
            CmpOp::Le => fa <= fb,
            CmpOp::Gt => fa > fb,
            CmpOp::Ge => fa >= fb,
            CmpOp::Eq => fa == fb,
            CmpOp::Ne => fa != fb,
        }
    } else {
        let (ia, ib) = (a as i32, b as i32);
        match op {
            CmpOp::Lt => ia < ib,
            CmpOp::Le => ia <= ib,
            CmpOp::Gt => ia > ib,
            CmpOp::Ge => ia >= ib,
            CmpOp::Eq => ia == ib,
            CmpOp::Ne => ia != ib,
        }
    }
}

#[cfg(test)]
mod lane_tests {
    use super::*;

    #[test]
    fn integer_division_by_zero_is_zero() {
        assert_eq!(ibin(IBinOp::Div, 7, 0), 0);
        assert_eq!(ibin(IBinOp::Rem, 7, 0), 0);
    }

    #[test]
    fn signed_semantics() {
        assert_eq!(ibin(IBinOp::Div, (-7i32) as u32, 2) as i32, -3);
        assert_eq!(ibin(IBinOp::Min, (-1i32) as u32, 1) as i32, -1);
        assert_eq!(ibin(IBinOp::Shr, (-8i32) as u32, 1) as i32, -4);
    }

    #[test]
    fn float_bit_roundtrip() {
        let r = fbin(FBinOp::Mul, 2.5f32.to_bits(), 4.0f32.to_bits());
        assert_eq!(f32::from_bits(r), 10.0);
        let r = fun(FUnOp::Sqrt, 9.0f32.to_bits());
        assert_eq!(f32::from_bits(r), 3.0);
    }

    #[test]
    fn comparisons() {
        assert!(cmp(CmpOp::Lt, false, (-1i32) as u32, 0));
        assert!(!cmp(CmpOp::Lt, true, 1.0f32.to_bits(), (-2.0f32).to_bits()));
        assert!(cmp(CmpOp::Ne, true, 1.0f32.to_bits(), 2.0f32.to_bits()));
    }
}
