//! Launch statistics — the simulator's replacement for `nvprof` counters.

/// Bounded per-instruction off-chip request trace (paper Fig. 2): one
/// entry per executed global-memory instruction, in execution order,
/// holding the number of 128-byte transactions it generated after
/// coalescing. Captured on SM 0 only and capped to bound memory.
#[derive(Debug, Clone, Default)]
pub struct RequestTrace {
    /// Requests-per-instruction in execution order.
    pub requests: Vec<u32>,
    /// Number of events dropped after the cap was reached.
    pub dropped: u64,
}

impl RequestTrace {
    /// Cap on recorded events.
    pub const CAP: usize = 1 << 20;

    /// Record one memory instruction's transaction count.
    pub fn record(&mut self, requests: u32) {
        if self.requests.len() < Self::CAP {
            self.requests.push(requests);
        } else {
            self.dropped += 1;
        }
    }

    /// Downsample to at most `n` buckets of averaged request counts, for
    /// plotting Fig. 2-style series.
    pub fn bucketed(&self, n: usize) -> Vec<f64> {
        if self.requests.is_empty() || n == 0 {
            return Vec::new();
        }
        let len = self.requests.len();
        let bucket = len.div_ceil(n);
        self.requests
            .chunks(bucket)
            .map(|c| c.iter().map(|&v| v as f64).sum::<f64>() / c.len() as f64)
            .collect()
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Default)]
pub struct LaunchStats {
    /// Wall-clock cycles (max over SMs).
    pub cycles: u64,
    /// Warp-instructions issued, all SMs.
    pub instructions: u64,
    /// L1D load accesses (coalesced transactions), all SMs.
    pub l1_accesses: u64,
    /// L1D load hits (incl. MSHR merges), all SMs.
    pub l1_hits: u64,
    /// Off-chip 128-byte requests (load misses + stores), all SMs.
    pub offchip_requests: u64,
    /// L2 load accesses (L1D load misses probing the shared L2 slice),
    /// all SMs. Zero when the L2 is disabled (`l2_kb = 0`); stores
    /// bypass the L2 (write-through, no-allocate at both levels), so
    /// per launch `l2_accesses == l1_accesses - l1_hits`.
    pub l2_accesses: u64,
    /// L2 load hits (incl. MSHR merges), all SMs.
    pub l2_hits: u64,
    /// Valid L2 lines displaced by fills (capacity/conflict pressure),
    /// all SMs.
    pub l2_evictions: u64,
    /// Thread blocks executed.
    pub tbs: u64,
    /// Warps executed.
    pub warps: u64,
    /// Resident thread blocks per SM actually used by the dispatcher.
    pub resident_tbs_per_sm: u32,
    /// Per-instruction request trace from SM 0 (empty unless
    /// `GpuConfig::trace_requests`).
    pub trace: RequestTrace,
}

impl LaunchStats {
    /// L1D load hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// L2 load hit rate (over L1D load misses; 0 with the L2 disabled).
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.l2_accesses as f64
        }
    }

    /// Serialize the counters as the inner fields of a JSON object (no
    /// braces), for the persistent simulation cache's JSONL layer. The
    /// request trace is deliberately excluded: traced runs are diagnostic
    /// and bypass the cache (`GpuConfig::trace_requests`).
    pub fn to_json_fields(&self) -> String {
        format!(
            "\"cycles\":{},\"instructions\":{},\"l1_accesses\":{},\"l1_hits\":{},\
             \"offchip_requests\":{},\"l2_accesses\":{},\"l2_hits\":{},\"l2_evictions\":{},\
             \"tbs\":{},\"warps\":{},\"resident_tbs_per_sm\":{}",
            self.cycles,
            self.instructions,
            self.l1_accesses,
            self.l1_hits,
            self.offchip_requests,
            self.l2_accesses,
            self.l2_hits,
            self.l2_evictions,
            self.tbs,
            self.warps,
            self.resident_tbs_per_sm
        )
    }

    /// Parse a JSON object line containing (at least) the fields written
    /// by [`LaunchStats::to_json_fields`]; unknown fields are ignored.
    /// Returns `None` on any missing field or malformed number — callers
    /// treat that as a cache miss, never an error.
    pub fn from_json_line(line: &str) -> Option<LaunchStats> {
        fn field_u64(line: &str, name: &str) -> Option<u64> {
            let pat = format!("\"{name}\":");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        }
        Some(LaunchStats {
            cycles: field_u64(line, "cycles")?,
            instructions: field_u64(line, "instructions")?,
            l1_accesses: field_u64(line, "l1_accesses")?,
            l1_hits: field_u64(line, "l1_hits")?,
            offchip_requests: field_u64(line, "offchip_requests")?,
            // Absent from cache lines written before the L2 existed;
            // those entries are unreachable anyway (the L2 capacity is
            // part of the config digest) but parse leniently regardless.
            l2_accesses: field_u64(line, "l2_accesses").unwrap_or(0),
            l2_hits: field_u64(line, "l2_hits").unwrap_or(0),
            l2_evictions: field_u64(line, "l2_evictions").unwrap_or(0),
            tbs: field_u64(line, "tbs")?,
            warps: field_u64(line, "warps")?,
            resident_tbs_per_sm: field_u64(line, "resident_tbs_per_sm")? as u32,
            trace: RequestTrace::default(),
        })
    }

    /// Fold another launch's statistics into this one, sequencing the
    /// launches back to back (cycles add; a multi-kernel application's
    /// total time is the sum of its launches, as in the paper's
    /// end-to-end measurements).
    pub fn accumulate(&mut self, other: &LaunchStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.offchip_requests += other.offchip_requests;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.l2_evictions += other.l2_evictions;
        self.tbs += other.tbs;
        self.warps += other.warps;
        self.trace.requests.extend_from_slice(&other.trace.requests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_accesses() {
        let s = LaunchStats::default();
        assert_eq!(s.l1_hit_rate(), 0.0);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut a = LaunchStats {
            cycles: 100,
            l1_accesses: 10,
            l1_hits: 5,
            ..LaunchStats::default()
        };
        let b = LaunchStats {
            cycles: 50,
            l1_accesses: 10,
            l1_hits: 10,
            ..LaunchStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.l1_hit_rate(), 0.75);
    }

    #[test]
    fn trace_caps_and_buckets() {
        let mut t = RequestTrace::default();
        for i in 0..10 {
            t.record(i % 2 + 1);
        }
        assert_eq!(t.requests.len(), 10);
        let b = t.bucketed(5);
        assert_eq!(b.len(), 5);
        assert!(b.iter().all(|&v| (1.0..=2.0).contains(&v)));
        // Bucket of everything averages to 1.5.
        let b1 = t.bucketed(1);
        assert!((b1[0] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bucketed_is_total() {
        // Degenerate shapes must yield defined results, never divide by
        // zero or panic: zero buckets, empty traces, more buckets than
        // samples.
        let empty = RequestTrace::default();
        assert!(empty.bucketed(0).is_empty());
        assert!(empty.bucketed(7).is_empty());
        let mut t = RequestTrace::default();
        for i in 1..=3 {
            t.record(i);
        }
        assert!(t.bucketed(0).is_empty(), "n = 0 has no defined buckets");
        // More buckets than samples: one sample per bucket, none invented.
        let b = t.bucketed(10);
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn json_roundtrip_property() {
        // Every counter combination — including extremes like u64::MAX —
        // must survive the JSONL cache encoding bit-exactly.
        let mut rng = catt_prng::Rng::from_tag("metrics-json-roundtrip");
        for case in 0..200 {
            let extreme = |rng: &mut catt_prng::Rng| match rng.bounded_u64(4) {
                0 => 0,
                1 => u64::MAX,
                2 => rng.bounded_u64(1 << 20),
                _ => rng.next_u64(),
            };
            let s = LaunchStats {
                cycles: extreme(&mut rng),
                instructions: extreme(&mut rng),
                l1_accesses: extreme(&mut rng),
                l1_hits: extreme(&mut rng),
                offchip_requests: extreme(&mut rng),
                l2_accesses: extreme(&mut rng),
                l2_hits: extreme(&mut rng),
                l2_evictions: extreme(&mut rng),
                tbs: extreme(&mut rng),
                warps: extreme(&mut rng),
                resident_tbs_per_sm: rng.next_u32(),
                trace: RequestTrace::default(),
            };
            let line = format!("{{\"digest\":\"abc123\",{}}}", s.to_json_fields());
            let back = LaunchStats::from_json_line(&line)
                .unwrap_or_else(|| panic!("case {case}: line `{line}` failed to parse"));
            assert_eq!(back.cycles, s.cycles, "case {case}");
            assert_eq!(back.instructions, s.instructions, "case {case}");
            assert_eq!(back.l1_accesses, s.l1_accesses, "case {case}");
            assert_eq!(back.l1_hits, s.l1_hits, "case {case}");
            assert_eq!(back.offchip_requests, s.offchip_requests, "case {case}");
            assert_eq!(back.l2_accesses, s.l2_accesses, "case {case}");
            assert_eq!(back.l2_hits, s.l2_hits, "case {case}");
            assert_eq!(back.l2_evictions, s.l2_evictions, "case {case}");
            assert_eq!(back.tbs, s.tbs, "case {case}");
            assert_eq!(back.warps, s.warps, "case {case}");
            assert_eq!(
                back.resident_tbs_per_sm, s.resident_tbs_per_sm,
                "case {case}"
            );
            assert!(back.trace.requests.is_empty(), "trace is never serialized");
        }
    }

    #[test]
    fn json_roundtrip_preserves_counters() {
        let s = LaunchStats {
            cycles: 12345,
            instructions: 678,
            l1_accesses: 90,
            l1_hits: 45,
            offchip_requests: 55,
            l2_accesses: 45,
            l2_hits: 30,
            l2_evictions: 3,
            tbs: 8,
            warps: 64,
            resident_tbs_per_sm: 4,
            trace: RequestTrace::default(),
        };
        let line = format!("{{\"key\":\"deadbeef\",{}}}", s.to_json_fields());
        let back = LaunchStats::from_json_line(&line).unwrap();
        assert_eq!(back.cycles, s.cycles);
        assert_eq!(back.instructions, s.instructions);
        assert_eq!(back.l1_accesses, s.l1_accesses);
        assert_eq!(back.l1_hits, s.l1_hits);
        assert_eq!(back.offchip_requests, s.offchip_requests);
        assert_eq!(back.l2_accesses, s.l2_accesses);
        assert_eq!(back.l2_hits, s.l2_hits);
        assert_eq!(back.l2_evictions, s.l2_evictions);
        assert_eq!(back.tbs, s.tbs);
        assert_eq!(back.warps, s.warps);
        assert_eq!(back.resident_tbs_per_sm, s.resident_tbs_per_sm);
    }

    #[test]
    fn json_parse_defaults_missing_l2_fields() {
        // Cache lines written before the L2 counters existed must still
        // parse, with the L2 counters zeroed.
        let line = "{\"cycles\":10,\"instructions\":2,\"l1_accesses\":4,\"l1_hits\":1,\
                    \"offchip_requests\":3,\"tbs\":1,\"warps\":1,\"resident_tbs_per_sm\":1}";
        let s = LaunchStats::from_json_line(line).unwrap();
        assert_eq!(s.cycles, 10);
        assert_eq!(s.l2_accesses, 0);
        assert_eq!(s.l2_hits, 0);
        assert_eq!(s.l2_evictions, 0);
        assert_eq!(s.l2_hit_rate(), 0.0);
    }

    #[test]
    fn json_parse_rejects_malformed_lines() {
        assert!(LaunchStats::from_json_line("").is_none());
        assert!(LaunchStats::from_json_line("{\"cycles\":1}").is_none());
        assert!(LaunchStats::from_json_line("not json at all").is_none());
    }

    #[test]
    fn trace_empty_bucket() {
        let t = RequestTrace::default();
        assert!(t.bucketed(10).is_empty());
    }
}
