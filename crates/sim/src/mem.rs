//! Simulated global (off-chip) memory and kernel arguments.

use crate::error::SimError;

/// Handle to a device buffer in [`GlobalMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// Byte address of the first element in the flat device address space.
    pub addr: u32,
    /// Length in 32-bit elements.
    pub len: u32,
}

/// A kernel launch argument; must match the kernel parameter list
/// positionally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// Pointer argument.
    Buf(Buffer),
    /// Scalar `int`.
    I32(i32),
    /// Scalar `unsigned int`.
    U32(u32),
    /// Scalar `float`.
    F32(f32),
}

impl Arg {
    /// The 32-bit register image of the argument (base address for
    /// buffers, bit pattern for scalars).
    pub fn register_image(&self) -> u32 {
        match self {
            Arg::Buf(b) => b.addr,
            Arg::I32(v) => *v as u32,
            Arg::U32(v) => *v,
            Arg::F32(v) => v.to_bits(),
        }
    }
}

/// Flat simulated device memory. All buffers live in one 32-bit byte
/// address space; allocation is a bump allocator with 256-byte alignment
/// (mirroring `cudaMalloc`'s alignment guarantees, and ensuring distinct
/// buffers never share a cache line).
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    /// Backing store, indexed by word (byte address / 4).
    words: Vec<u32>,
}

const ALIGN_BYTES: u32 = 256;

impl GlobalMem {
    /// Empty memory.
    pub fn new() -> GlobalMem {
        GlobalMem::default()
    }

    fn alloc_words(&mut self, len: u32) -> Buffer {
        let addr_bytes = (self.words.len() as u32 * 4).next_multiple_of(ALIGN_BYTES);
        let start_word = (addr_bytes / 4) as usize;
        self.words.resize(start_word + len as usize, 0);
        Buffer {
            addr: addr_bytes,
            len,
        }
    }

    /// Allocate and initialize a float buffer.
    pub fn alloc_f32(&mut self, data: &[f32]) -> Buffer {
        let b = self.alloc_words(data.len() as u32);
        for (i, v) in data.iter().enumerate() {
            self.words[b.addr as usize / 4 + i] = v.to_bits();
        }
        b
    }

    /// Allocate and initialize an int buffer.
    pub fn alloc_i32(&mut self, data: &[i32]) -> Buffer {
        let b = self.alloc_words(data.len() as u32);
        for (i, v) in data.iter().enumerate() {
            self.words[b.addr as usize / 4 + i] = *v as u32;
        }
        b
    }

    /// Allocate a zero-filled float buffer of `len` elements.
    pub fn alloc_zeroed(&mut self, len: u32) -> Buffer {
        self.alloc_words(len)
    }

    /// Read a buffer back as floats.
    pub fn read_f32(&self, b: Buffer) -> Vec<f32> {
        let start = b.addr as usize / 4;
        self.words[start..start + b.len as usize]
            .iter()
            .map(|w| f32::from_bits(*w))
            .collect()
    }

    /// Read a buffer back as ints.
    pub fn read_i32(&self, b: Buffer) -> Vec<i32> {
        let start = b.addr as usize / 4;
        self.words[start..start + b.len as usize]
            .iter()
            .map(|w| *w as i32)
            .collect()
    }

    /// Check that a host-side write of `len` elements fits in `b`,
    /// reporting the first out-of-range byte address and the offending
    /// buffer handle otherwise.
    fn check_write(b: Buffer, len: usize) -> Result<(), SimError> {
        if len as u32 <= b.len {
            Ok(())
        } else {
            Err(SimError::OutOfBounds {
                kernel: "<host>".into(),
                pc: 0,
                addr: b.addr + b.len * 4,
                buffer: format!("{b:?}"),
            })
        }
    }

    /// Overwrite a buffer's contents with floats. Writes past the end of
    /// the allocation return [`SimError::OutOfBounds`] naming the buffer.
    pub fn write_f32(&mut self, b: Buffer, data: &[f32]) -> Result<(), SimError> {
        Self::check_write(b, data.len())?;
        let start = b.addr as usize / 4;
        for (i, v) in data.iter().enumerate() {
            self.words[start + i] = v.to_bits();
        }
        Ok(())
    }

    /// Overwrite a buffer's contents with ints. Writes past the end of
    /// the allocation return [`SimError::OutOfBounds`] naming the buffer.
    pub fn write_i32(&mut self, b: Buffer, data: &[i32]) -> Result<(), SimError> {
        Self::check_write(b, data.len())?;
        let start = b.addr as usize / 4;
        for (i, v) in data.iter().enumerate() {
            self.words[start + i] = *v as u32;
        }
        Ok(())
    }

    /// Load a word by byte address. Out-of-bounds reads return 0 (the
    /// simulator's equivalent of reading unmapped memory without faulting;
    /// workloads are written to stay in bounds and tests assert on data).
    #[inline]
    pub fn load(&self, byte_addr: u32) -> u32 {
        self.words.get(byte_addr as usize / 4).copied().unwrap_or(0)
    }

    /// Store a word by byte address. Out-of-bounds writes are dropped.
    #[inline]
    pub fn store(&mut self, byte_addr: u32, value: u32) {
        if let Some(w) = self.words.get_mut(byte_addr as usize / 4) {
            *w = value;
        }
    }

    /// Total allocated footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_line_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc_f32(&[1.0; 3]);
        let b = m.alloc_f32(&[2.0; 5]);
        assert_eq!(a.addr % ALIGN_BYTES, 0);
        assert_eq!(b.addr % ALIGN_BYTES, 0);
        assert!(b.addr >= a.addr + 3 * 4);
        assert_eq!(m.read_f32(a), vec![1.0; 3]);
        assert_eq!(m.read_f32(b), vec![2.0; 5]);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(4);
        m.store(a.addr + 8, 7);
        assert_eq!(m.load(a.addr + 8), 7);
        assert_eq!(m.read_i32(a), vec![0, 0, 7, 0]);
    }

    #[test]
    fn out_of_bounds_access_is_benign() {
        let mut m = GlobalMem::new();
        assert_eq!(m.load(1 << 30), 0);
        m.store(1 << 30, 42); // dropped
        assert_eq!(m.footprint_bytes(), 0);
    }

    #[test]
    fn arg_register_images() {
        assert_eq!(Arg::I32(-1).register_image(), u32::MAX);
        assert_eq!(Arg::F32(1.0).register_image(), 1.0f32.to_bits());
        let b = Buffer { addr: 512, len: 4 };
        assert_eq!(Arg::Buf(b).register_image(), 512);
    }

    #[test]
    fn write_f32_overwrites() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(3);
        m.write_f32(a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.read_f32(a), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn oversized_write_reports_the_buffer_handle() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(2);
        let err = m.write_f32(a, &[0.0; 3]).unwrap_err();
        match &err {
            SimError::OutOfBounds { kernel, buffer, .. } => {
                assert_eq!(kernel, "<host>");
                assert_eq!(buffer, &format!("{a:?}"));
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
        let err = m.write_i32(a, &[0; 5]).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }
}
