//! Simulated global (off-chip) memory and kernel arguments.
//!
//! Two views of device memory exist behind the [`DeviceMem`] trait:
//! [`GlobalMem`] is the flat backing store every launch ultimately commits
//! to, and [`ShadowMem`] is the per-SM view used by the parallel launch
//! path — a shared read-only snapshot of pre-launch memory overlaid with
//! the SM's own [`StoreLog`], merged back in ascending SM-id order after
//! all SMs finish (see DESIGN.md "Parallel SM execution").

use crate::error::SimError;

/// Handle to a device buffer in [`GlobalMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// Byte address of the first element in the flat device address space.
    pub addr: u32,
    /// Length in 32-bit elements.
    pub len: u32,
}

/// A kernel launch argument; must match the kernel parameter list
/// positionally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// Pointer argument.
    Buf(Buffer),
    /// Scalar `int`.
    I32(i32),
    /// Scalar `unsigned int`.
    U32(u32),
    /// Scalar `float`.
    F32(f32),
}

impl Arg {
    /// The 32-bit register image of the argument (base address for
    /// buffers, bit pattern for scalars).
    pub fn register_image(&self) -> u32 {
        match self {
            Arg::Buf(b) => b.addr,
            Arg::I32(v) => *v as u32,
            Arg::U32(v) => *v,
            Arg::F32(v) => v.to_bits(),
        }
    }
}

/// Flat simulated device memory. All buffers live in one 32-bit byte
/// address space; allocation is a bump allocator with 256-byte alignment
/// (mirroring `cudaMalloc`'s alignment guarantees, and ensuring distinct
/// buffers never share a cache line).
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    /// Backing store, indexed by word (byte address / 4).
    words: Vec<u32>,
    /// Allocation spans as (start word, length in words), in ascending
    /// address order (the bump allocator only grows). Consulted by the
    /// sanitizer's wild-read check through [`DeviceMem::is_allocated`];
    /// never part of [`GlobalMem::content_digest`], which hashes contents
    /// only.
    spans: Vec<(u32, u32)>,
}

const ALIGN_BYTES: u32 = 256;

impl GlobalMem {
    /// Empty memory.
    pub fn new() -> GlobalMem {
        GlobalMem::default()
    }

    fn alloc_words(&mut self, len: u32) -> Buffer {
        let addr_bytes = (self.words.len() as u32 * 4).next_multiple_of(ALIGN_BYTES);
        let start_word = (addr_bytes / 4) as usize;
        self.words.resize(start_word + len as usize, 0);
        self.spans.push((start_word as u32, len));
        Buffer {
            addr: addr_bytes,
            len,
        }
    }

    /// Whether `byte_addr` falls inside some allocation (as opposed to
    /// the alignment padding between buffers or past the footprint).
    /// Binary search over the sorted span list.
    pub fn is_allocated(&self, byte_addr: u32) -> bool {
        let word = byte_addr / 4;
        match self.spans.binary_search_by_key(&word, |&(start, _)| start) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => {
                let (start, len) = self.spans[i - 1];
                word - start < len
            }
        }
    }

    /// Allocate and initialize a float buffer.
    pub fn alloc_f32(&mut self, data: &[f32]) -> Buffer {
        let b = self.alloc_words(data.len() as u32);
        for (i, v) in data.iter().enumerate() {
            self.words[b.addr as usize / 4 + i] = v.to_bits();
        }
        b
    }

    /// Allocate and initialize an int buffer.
    pub fn alloc_i32(&mut self, data: &[i32]) -> Buffer {
        let b = self.alloc_words(data.len() as u32);
        for (i, v) in data.iter().enumerate() {
            self.words[b.addr as usize / 4 + i] = *v as u32;
        }
        b
    }

    /// Allocate a zero-filled float buffer of `len` elements.
    pub fn alloc_zeroed(&mut self, len: u32) -> Buffer {
        self.alloc_words(len)
    }

    /// Read a buffer back as floats.
    pub fn read_f32(&self, b: Buffer) -> Vec<f32> {
        let start = b.addr as usize / 4;
        self.words[start..start + b.len as usize]
            .iter()
            .map(|w| f32::from_bits(*w))
            .collect()
    }

    /// Read a buffer back as ints.
    pub fn read_i32(&self, b: Buffer) -> Vec<i32> {
        let start = b.addr as usize / 4;
        self.words[start..start + b.len as usize]
            .iter()
            .map(|w| *w as i32)
            .collect()
    }

    /// Check that a host-side write of `len` elements fits in `b`,
    /// reporting the first out-of-range byte address and the offending
    /// buffer handle otherwise.
    fn check_write(b: Buffer, len: usize) -> Result<(), SimError> {
        if len as u32 <= b.len {
            Ok(())
        } else {
            Err(SimError::OutOfBounds {
                kernel: "<host>".into(),
                pc: 0,
                addr: b.addr + b.len * 4,
                buffer: format!("{b:?}"),
            })
        }
    }

    /// Overwrite a buffer's contents with floats. Writes past the end of
    /// the allocation return [`SimError::OutOfBounds`] naming the buffer.
    pub fn write_f32(&mut self, b: Buffer, data: &[f32]) -> Result<(), SimError> {
        Self::check_write(b, data.len())?;
        let start = b.addr as usize / 4;
        for (i, v) in data.iter().enumerate() {
            self.words[start + i] = v.to_bits();
        }
        Ok(())
    }

    /// Overwrite a buffer's contents with ints. Writes past the end of
    /// the allocation return [`SimError::OutOfBounds`] naming the buffer.
    pub fn write_i32(&mut self, b: Buffer, data: &[i32]) -> Result<(), SimError> {
        Self::check_write(b, data.len())?;
        let start = b.addr as usize / 4;
        for (i, v) in data.iter().enumerate() {
            self.words[start + i] = *v as u32;
        }
        Ok(())
    }

    /// Load a word by byte address. Out-of-bounds reads return 0 (the
    /// simulator's equivalent of reading unmapped memory without faulting;
    /// workloads are written to stay in bounds and tests assert on data).
    #[inline]
    pub fn load(&self, byte_addr: u32) -> u32 {
        self.words.get(byte_addr as usize / 4).copied().unwrap_or(0)
    }

    /// Store a word by byte address. Out-of-bounds writes are dropped.
    #[inline]
    pub fn store(&mut self, byte_addr: u32, value: u32) {
        if let Some(w) = self.words.get_mut(byte_addr as usize / 4) {
            *w = value;
        }
    }

    /// Total allocated footprint in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Stable FNV-1a digest of the full memory image. Used by the
    /// parallel-vs-sequential equivalence tests to assert bit-identical
    /// output buffers without enumerating them.
    pub fn content_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        for w in &self.words {
            h.write(&w.to_le_bytes());
        }
        h.finish()
    }
}

/// Functional device memory as seen by one SM during a launch. The
/// sequential path hands every SM the real [`GlobalMem`]; the parallel
/// path hands each SM a [`ShadowMem`] so SMs never contend on (or observe)
/// each other's stores mid-launch.
pub trait DeviceMem {
    /// Load a word by byte address (out-of-bounds reads return 0).
    fn load(&self, byte_addr: u32) -> u32;
    /// Store a word by byte address (out-of-bounds writes are dropped).
    fn store(&mut self, byte_addr: u32, value: u32);
    /// Whether `byte_addr` falls inside some allocation. Consulted only
    /// by the sanitizer's wild-read check; views that cannot tell answer
    /// `true` (never a false positive).
    fn is_allocated(&self, _byte_addr: u32) -> bool {
        true
    }
}

impl DeviceMem for GlobalMem {
    #[inline]
    fn load(&self, byte_addr: u32) -> u32 {
        GlobalMem::load(self, byte_addr)
    }

    #[inline]
    fn store(&mut self, byte_addr: u32, value: u32) {
        GlobalMem::store(self, byte_addr, value)
    }

    #[inline]
    fn is_allocated(&self, byte_addr: u32) -> bool {
        GlobalMem::is_allocated(self, byte_addr)
    }
}

/// Words per lazily-allocated [`StoreLog`] page.
const PAGE_WORDS: usize = 1024;

/// One overlay page: values plus a word-granular presence bitmask.
struct LogPage {
    words: Box<[u32; PAGE_WORDS]>,
    written: [u64; PAGE_WORDS / 64],
}

impl LogPage {
    fn new() -> LogPage {
        LogPage {
            words: Box::new([0; PAGE_WORDS]),
            written: [0; PAGE_WORDS / 64],
        }
    }
}

/// The stores one SM performed during a launch, kept as a sparse paged
/// overlay over the pre-launch snapshot. Pages allocate on first store to
/// their range, so an SM writing one disjoint output slice pays memory
/// proportional to that slice, not the whole footprint. Stores beyond the
/// snapshot's footprint are dropped, matching [`GlobalMem::store`]'s
/// out-of-bounds semantics exactly.
pub struct StoreLog {
    pages: Vec<Option<LogPage>>,
    /// Footprint bound (in words) at snapshot time; stores at or past it
    /// are dropped.
    limit_words: usize,
}

impl StoreLog {
    /// Empty log covering a snapshot of `limit_words` words.
    fn new(limit_words: usize) -> StoreLog {
        StoreLog {
            pages: Vec::new(),
            limit_words,
        }
    }

    /// The logged value at word index `word`, if this SM stored there.
    #[inline]
    fn lookup(&self, word: usize) -> Option<u32> {
        let page = self.pages.get(word / PAGE_WORDS)?.as_ref()?;
        let o = word % PAGE_WORDS;
        if page.written[o / 64] & (1 << (o % 64)) != 0 {
            Some(page.words[o])
        } else {
            None
        }
    }

    /// Record a store at word index `word` (last store wins, as in the
    /// sequential interpreter).
    #[inline]
    fn record(&mut self, word: usize, value: u32) {
        if word >= self.limit_words {
            return; // out of bounds at snapshot time: dropped
        }
        let pi = word / PAGE_WORDS;
        if pi >= self.pages.len() {
            self.pages.resize_with(pi + 1, || None);
        }
        let page = self.pages[pi].get_or_insert_with(LogPage::new);
        let o = word % PAGE_WORDS;
        page.words[o] = value;
        page.written[o / 64] |= 1 << (o % 64);
    }

    /// Number of distinct words this log holds.
    pub fn stored_words(&self) -> usize {
        self.pages
            .iter()
            .flatten()
            .map(|p| {
                p.written
                    .iter()
                    .map(|m| m.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Commit every logged store into `mem`, in ascending address order.
    /// Logs are applied SM 0, SM 1, ... so a word several SMs wrote ends
    /// up with the highest-id SM's value — a fixed, documented order, not
    /// a scheduler-dependent race.
    pub fn apply(&self, mem: &mut GlobalMem) {
        for (pi, page) in self.pages.iter().enumerate() {
            let Some(page) = page else { continue };
            let base = pi * PAGE_WORDS;
            for (mi, &mask) in page.written.iter().enumerate() {
                let mut m = mask;
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let o = mi * 64 + bit;
                    if let Some(w) = mem.words.get_mut(base + o) {
                        *w = page.words[o];
                    }
                }
            }
        }
    }
}

/// A per-SM view of device memory for the parallel launch path: loads read
/// this SM's own stores first (read-your-own-writes, required by
/// read-modify-write kernels like ATAX's `tmp[i] +=` loop) and fall back
/// to the shared pre-launch snapshot; stores go to the private log only.
pub struct ShadowMem<'a> {
    base: &'a GlobalMem,
    log: StoreLog,
}

impl<'a> ShadowMem<'a> {
    /// A fresh shadow over the pre-launch snapshot `base`.
    pub fn new(base: &'a GlobalMem) -> ShadowMem<'a> {
        ShadowMem {
            log: StoreLog::new(base.words.len()),
            base,
        }
    }

    /// Consume the shadow, keeping only the store log for merging.
    pub fn into_log(self) -> StoreLog {
        self.log
    }
}

impl DeviceMem for ShadowMem<'_> {
    #[inline]
    fn load(&self, byte_addr: u32) -> u32 {
        let word = byte_addr as usize / 4;
        match self.log.lookup(word) {
            Some(v) => v,
            None => self.base.load(byte_addr),
        }
    }

    #[inline]
    fn store(&mut self, byte_addr: u32, value: u32) {
        self.log.record(byte_addr as usize / 4, value);
    }

    #[inline]
    fn is_allocated(&self, byte_addr: u32) -> bool {
        self.base.is_allocated(byte_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_line_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc_f32(&[1.0; 3]);
        let b = m.alloc_f32(&[2.0; 5]);
        assert_eq!(a.addr % ALIGN_BYTES, 0);
        assert_eq!(b.addr % ALIGN_BYTES, 0);
        assert!(b.addr >= a.addr + 3 * 4);
        assert_eq!(m.read_f32(a), vec![1.0; 3]);
        assert_eq!(m.read_f32(b), vec![2.0; 5]);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(4);
        m.store(a.addr + 8, 7);
        assert_eq!(m.load(a.addr + 8), 7);
        assert_eq!(m.read_i32(a), vec![0, 0, 7, 0]);
    }

    #[test]
    fn out_of_bounds_access_is_benign() {
        let mut m = GlobalMem::new();
        assert_eq!(m.load(1 << 30), 0);
        m.store(1 << 30, 42); // dropped
        assert_eq!(m.footprint_bytes(), 0);
    }

    #[test]
    fn arg_register_images() {
        assert_eq!(Arg::I32(-1).register_image(), u32::MAX);
        assert_eq!(Arg::F32(1.0).register_image(), 1.0f32.to_bits());
        let b = Buffer { addr: 512, len: 4 };
        assert_eq!(Arg::Buf(b).register_image(), 512);
    }

    #[test]
    fn write_f32_overwrites() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(3);
        m.write_f32(a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.read_f32(a), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn oversized_write_reports_the_buffer_handle() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(2);
        let err = m.write_f32(a, &[0.0; 3]).unwrap_err();
        match &err {
            SimError::OutOfBounds { kernel, buffer, .. } => {
                assert_eq!(kernel, "<host>");
                assert_eq!(buffer, &format!("{a:?}"));
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
        let err = m.write_i32(a, &[0; 5]).unwrap_err();
        assert!(matches!(err, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn shadow_reads_own_writes_and_falls_back_to_snapshot() {
        let mut m = GlobalMem::new();
        let a = m.alloc_i32(&[10, 20, 30]);
        let mut sh = ShadowMem::new(&m);
        assert_eq!(sh.load(a.addr + 4), 20, "snapshot visible through shadow");
        sh.store(a.addr + 4, 99);
        assert_eq!(sh.load(a.addr + 4), 99, "own store shadows the snapshot");
        assert_eq!(sh.load(a.addr + 8), 30, "untouched words still read base");
        assert_eq!(
            m.read_i32(a),
            vec![10, 20, 30],
            "base unchanged until merge"
        );
        let log = sh.into_log();
        assert_eq!(log.stored_words(), 1);
        log.apply(&mut m);
        assert_eq!(m.read_i32(a), vec![10, 99, 30]);
    }

    #[test]
    fn shadow_oob_matches_global_mem_semantics() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(2);
        let digest = m.content_digest();
        let mut sh = ShadowMem::new(&m);
        assert_eq!(sh.load(1 << 30), 0, "OOB load is 0, like GlobalMem");
        sh.store(1 << 30, 42); // dropped
        sh.store(a.addr + 4 * 2, 7); // first word past the footprint: dropped
        let log = sh.into_log();
        assert_eq!(log.stored_words(), 0);
        log.apply(&mut m);
        assert_eq!(m.content_digest(), digest, "dropped stores never merge");
    }

    #[test]
    fn store_log_spans_pages_and_keeps_last_store() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(3000); // crosses the 1024-word page size
        let mut sh = ShadowMem::new(&m);
        sh.store(a.addr, 1);
        sh.store(a.addr, 2); // last store wins
        sh.store(a.addr + 4 * 2999, 5);
        let log = sh.into_log();
        assert_eq!(log.stored_words(), 2);
        log.apply(&mut m);
        let out = m.read_i32(a);
        assert_eq!(out[0], 2);
        assert_eq!(out[2999], 5);
    }

    #[test]
    fn is_allocated_tracks_spans_not_padding() {
        let mut m = GlobalMem::new();
        assert!(!m.is_allocated(0), "empty memory has no allocations");
        let a = m.alloc_f32(&[1.0; 3]);
        let b = m.alloc_zeroed(2);
        assert!(m.is_allocated(a.addr));
        assert!(m.is_allocated(a.addr + 8), "last word of a");
        assert!(
            !m.is_allocated(a.addr + 12),
            "alignment padding between buffers is not allocated"
        );
        assert!(m.is_allocated(b.addr + 4), "last word of b");
        assert!(!m.is_allocated(b.addr + 8), "past the footprint");
        assert!(!m.is_allocated(1 << 30));
        // Spans never affect the content digest.
        let mut twin = GlobalMem::new();
        let ta = twin.alloc_f32(&[1.0; 3]);
        twin.alloc_zeroed(2);
        assert_eq!(ta, a);
        assert_eq!(twin.content_digest(), m.content_digest());
    }

    #[test]
    fn shadow_delegates_is_allocated_to_base() {
        let mut m = GlobalMem::new();
        let a = m.alloc_zeroed(2);
        let sh = ShadowMem::new(&m);
        assert!(DeviceMem::is_allocated(&sh, a.addr));
        assert!(!DeviceMem::is_allocated(&sh, a.addr + 8));
    }

    #[test]
    fn content_digest_tracks_contents() {
        let mut m = GlobalMem::new();
        let a = m.alloc_i32(&[1, 2, 3]);
        let before = m.content_digest();
        assert_eq!(before, m.content_digest(), "digest is deterministic");
        m.store(a.addr, 9);
        assert_ne!(before, m.content_digest());
    }
}
