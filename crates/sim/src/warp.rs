//! Per-warp SIMT execution state.

/// A divergence-stack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// Pushed by [`crate::bytecode::Op::If`].
    If {
        /// Mask to restore at the reconvergence point (`EndIf`).
        restore: u32,
        /// Lanes still owed the else-branch (0 once taken).
        else_mask: u32,
    },
    /// Pushed by [`crate::bytecode::Op::LoopBegin`].
    Loop {
        /// Mask to restore after the loop exits.
        restore: u32,
        /// Lanes still iterating (shrinks via the loop test and `break`).
        live: u32,
        /// Loop exit pc.
        end_pc: u32,
    },
}

/// Scheduling state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Not holding a thread block (free slot).
    Idle,
    /// Eligible for issue.
    Ready,
    /// Parked at `__syncthreads()`.
    AtBarrier,
    /// Finished the kernel.
    Done,
}

/// One resident warp's *execution* state. The scheduler-hot fields — the
/// register scoreboard, the next-issue wake time, the dispatch age, and
/// the decoded next pc — live struct-of-arrays in the SM (see
/// `sm::SmWorkspace`), so the per-cycle ready-scan touches contiguous
/// memory instead of walking these (heap-heavy) structs.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Program counter into `Program::ops`.
    pub pc: u32,
    /// Current active-lane mask.
    pub active: u32,
    /// Lanes that exist (partial warps when `blockDim` is not a multiple
    /// of 32).
    pub valid: u32,
    /// Lanes retired by `return`.
    pub exited: u32,
    /// SIMT divergence stack.
    pub stack: Vec<Frame>,
    /// Register file: `regs[r][lane]`.
    pub regs: Vec<[u32; 32]>,
    /// Scheduling state.
    pub state: WarpState,
    /// Resident-TB slot this warp belongs to.
    pub tb_slot: u32,
    /// Pc of the last `__syncthreads()` this warp arrived at (sanitizer
    /// barrier-site identity; meaningful only when `bar_count > 0`).
    pub bar_pc: u32,
    /// Number of barriers this warp has arrived at since dispatch. Warps
    /// of one block must agree on this at every release — a finished warp
    /// with a lower count skipped a barrier its siblings are parked at.
    pub bar_count: u32,
}

impl Warp {
    /// An idle warp slot with storage for `num_regs` registers.
    pub fn idle(num_regs: usize) -> Warp {
        Warp {
            pc: 0,
            active: 0,
            valid: 0,
            exited: 0,
            stack: Vec::new(),
            regs: vec![[0; 32]; num_regs],
            state: WarpState::Idle,
            tb_slot: 0,
            bar_pc: 0,
            bar_count: 0,
        }
    }

    /// Reinitialize for a fresh warp of a newly dispatched block. The
    /// caller owns the SoA scheduling state (scoreboard, wake time, age)
    /// and resets it alongside.
    pub fn reset(&mut self, valid: u32, tb_slot: u32) {
        self.pc = 0;
        self.active = valid;
        self.valid = valid;
        self.exited = 0;
        self.stack.clear();
        for r in &mut self.regs {
            *r = [0; 32];
        }
        self.state = WarpState::Ready;
        self.tb_slot = tb_slot;
        self.bar_pc = 0;
        self.bar_count = 0;
    }

    /// The live mask of the innermost enclosing loop (full mask if none) —
    /// applied at reconvergence points so lanes removed by `break` stay
    /// dead.
    pub fn innermost_loop_live(&self) -> u32 {
        for f in self.stack.iter().rev() {
            if let Frame::Loop { live, .. } = f {
                return *live;
            }
        }
        u32::MAX
    }

    /// Bitmask of active lanes whose `reg` value is non-zero.
    #[inline]
    pub fn predicate_mask(&self, reg: u16) -> u32 {
        let vals = &self.regs[reg as usize];
        let mut m = 0u32;
        for (lane, &v) in vals.iter().enumerate() {
            if v != 0 {
                m |= 1 << lane;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_clears_state() {
        let mut w = Warp::idle(4);
        w.pc = 9;
        w.exited = 3;
        w.stack.push(Frame::If {
            restore: 1,
            else_mask: 0,
        });
        w.regs[2][5] = 77;
        w.bar_pc = 4;
        w.bar_count = 2;
        w.reset(0xFFFF, 2);
        assert_eq!(w.pc, 0);
        assert_eq!(w.active, 0xFFFF);
        assert_eq!(w.valid, 0xFFFF);
        assert_eq!(w.exited, 0);
        assert!(w.stack.is_empty());
        assert_eq!(w.regs[2][5], 0);
        assert_eq!(w.state, WarpState::Ready);
        assert_eq!(w.tb_slot, 2);
        assert_eq!(w.bar_pc, 0);
        assert_eq!(w.bar_count, 0);
    }

    #[test]
    fn predicate_mask_selects_nonzero_lanes() {
        let mut w = Warp::idle(1);
        w.regs[0][0] = 1;
        w.regs[0][3] = 5;
        assert_eq!(w.predicate_mask(0), 0b1001);
    }

    #[test]
    fn innermost_loop_live() {
        let mut w = Warp::idle(1);
        assert_eq!(w.innermost_loop_live(), u32::MAX);
        w.stack.push(Frame::Loop {
            restore: 0xF,
            live: 0xF,
            end_pc: 0,
        });
        w.stack.push(Frame::If {
            restore: 0xF,
            else_mask: 0,
        });
        w.stack.push(Frame::Loop {
            restore: 0x3,
            live: 0x1,
            end_pc: 0,
        });
        assert_eq!(w.innermost_loop_live(), 0x1);
    }
}
