//! Lowering from `catt-ir` kernels to a register-based SIMT bytecode.
//!
//! The simulator does not interpret the AST directly: each kernel is
//! lowered once into a flat instruction sequence so that warps can advance
//! one instruction per issue slot, which is what gives the timing model its
//! meaning. Structured control flow becomes explicit mask-stack
//! instructions ([`Op::If`]/[`Op::Else`]/[`Op::EndIf`] and
//! [`Op::LoopBegin`]/[`Op::LoopTest`]/[`Op::LoopJump`]) — the classic
//! reconvergence-stack treatment of SIMT divergence, specialized to
//! structured code.
//!
//! Register model: an unbounded virtual register file per thread, assigned
//! in two banks — named locals first (one per declaration site, allocated
//! by a pre-scan), then per-statement expression temporaries that reset at
//! statement boundaries. The resulting `num_regs` doubles as the register
//! pressure estimate that feeds the occupancy model (paper Eq. 2), the
//! role `nvcc -v` plays in the paper.

use catt_ir::expr::{BinOp, Builtin, Expr, Intrinsic, UnOp};
use catt_ir::kernel::{Kernel, ParamTy};
use catt_ir::stmt::{LValue, Stmt};
use catt_ir::types::DType;
use std::collections::HashMap;
use std::fmt;

/// Virtual register index.
pub type Reg = u16;

/// Number of reserved builtin registers (threadIdx.xyz, blockIdx.xyz,
/// blockDim.xyz, gridDim.xyz).
pub const BUILTIN_REGS: u16 = 12;

/// Register holding a builtin value.
pub const fn builtin_reg(b: Builtin) -> Reg {
    match b {
        Builtin::ThreadIdxX => 0,
        Builtin::ThreadIdxY => 1,
        Builtin::ThreadIdxZ => 2,
        Builtin::BlockIdxX => 3,
        Builtin::BlockIdxY => 4,
        Builtin::BlockIdxZ => 5,
        Builtin::BlockDimX => 6,
        Builtin::BlockDimY => 7,
        Builtin::BlockDimZ => 8,
        Builtin::GridDimX => 9,
        Builtin::GridDimY => 10,
        Builtin::GridDimZ => 11,
    }
}

/// Integer binary ALU operations (i32 wrapping semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Shl,
    Shr,
    And,
    Or,
    Xor,
}

/// Float binary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Pow,
}

/// Float unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FUnOp {
    Neg,
    Sqrt,
    Exp,
    Log,
    Abs,
    Sin,
    Cos,
}

/// Comparison operations (produce 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// One bytecode instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `dst = imm` (bit image).
    MovImm { dst: Reg, imm: u32 },
    /// `dst = src`.
    Mov { dst: Reg, src: Reg },
    /// Integer ALU.
    IBin {
        op: IBinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Float ALU.
    FBin {
        op: FBinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Float unary (SFU for transcendental ops).
    FUn { op: FUnOp, dst: Reg, a: Reg },
    /// Integer negate.
    INeg { dst: Reg, a: Reg },
    /// Integer abs.
    IAbs { dst: Reg, a: Reg },
    /// Logical not on 0/1 predicate values.
    Not { dst: Reg, a: Reg },
    /// Compare, integer or float by `float` flag.
    Cmp {
        op: CmpOp,
        float: bool,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = c ? a : b` per lane.
    Sel { dst: Reg, c: Reg, a: Reg, b: Reg },
    /// Convert i32 → f32.
    CvtIF { dst: Reg, a: Reg },
    /// Convert f32 → i32 (truncating).
    CvtFI { dst: Reg, a: Reg },
    /// Global load; `addr` holds per-lane byte addresses.
    Ldg { dst: Reg, addr: Reg },
    /// Global store (write-through).
    Stg { src: Reg, addr: Reg },
    /// Shared-memory load; `addr` holds per-lane byte offsets into the
    /// thread block's shared segment.
    Lds { dst: Reg, addr: Reg },
    /// Shared-memory store.
    Sts { src: Reg, addr: Reg },
    /// `__syncthreads()`.
    Bar,
    /// Divergent if: push frame; lanes failing `cond` take `else_pc`.
    If {
        cond: Reg,
        else_pc: u32,
        end_pc: u32,
    },
    /// End of then-branch: switch to the else mask or jump to `end_pc`.
    Else { end_pc: u32 },
    /// Reconvergence point of an if.
    EndIf,
    /// Loop entry: push loop frame (records re-entry mask).
    LoopBegin { end_pc: u32 },
    /// Loop-head test: lanes failing `cond` leave the loop; when none
    /// remain, pop and jump to the frame's `end_pc`.
    LoopTest { cond: Reg },
    /// Back-edge: restore the loop-live mask and jump to `test_pc`'s
    /// condition evaluation block.
    LoopJump { cond_pc: u32 },
    /// `break` — remove active lanes from the innermost loop.
    Break,
    /// `return` — retire active lanes.
    Ret,
    /// End of kernel.
    Exit,
}

impl Op {
    /// Registers this instruction reads (up to 3).
    pub fn reads(&self) -> [Option<Reg>; 3] {
        match *self {
            Op::Mov { src, .. } => [Some(src), None, None],
            Op::IBin { a, b, .. } | Op::FBin { a, b, .. } | Op::Cmp { a, b, .. } => {
                [Some(a), Some(b), None]
            }
            Op::FUn { a, .. }
            | Op::INeg { a, .. }
            | Op::IAbs { a, .. }
            | Op::Not { a, .. }
            | Op::CvtIF { a, .. }
            | Op::CvtFI { a, .. } => [Some(a), None, None],
            Op::Sel { c, a, b, .. } => [Some(c), Some(a), Some(b)],
            Op::Ldg { addr, .. } | Op::Lds { addr, .. } => [Some(addr), None, None],
            Op::Stg { src, addr } | Op::Sts { src, addr } => [Some(src), Some(addr), None],
            Op::If { cond, .. } | Op::LoopTest { cond } => [Some(cond), None, None],
            _ => [None, None, None],
        }
    }

    /// Register this instruction writes, if any.
    pub fn writes(&self) -> Option<Reg> {
        match *self {
            Op::MovImm { dst, .. }
            | Op::Mov { dst, .. }
            | Op::IBin { dst, .. }
            | Op::FBin { dst, .. }
            | Op::FUn { dst, .. }
            | Op::INeg { dst, .. }
            | Op::IAbs { dst, .. }
            | Op::Not { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Sel { dst, .. }
            | Op::CvtIF { dst, .. }
            | Op::CvtFI { dst, .. }
            | Op::Ldg { dst, .. }
            | Op::Lds { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Whether this is a global-memory instruction (the class whose
    /// requests the paper's analysis counts).
    pub fn is_global_mem(&self) -> bool {
        matches!(self, Op::Ldg { .. } | Op::Stg { .. })
    }
}

/// A lowered kernel.
#[derive(Debug, Clone)]
pub struct Program {
    /// Kernel name (for diagnostics / stats).
    pub name: String,
    /// Flat instruction sequence, ending with [`Op::Exit`].
    pub ops: Vec<Op>,
    /// Total virtual registers per thread (builtins + params + locals +
    /// temps). Feeds the occupancy model's Eq. 2.
    pub num_regs: u16,
    /// Register assigned to each kernel parameter, in order.
    pub param_regs: Vec<Reg>,
    /// Shared arrays: (name, byte offset, byte length).
    pub shared_layout: Vec<(String, u32, u32)>,
    /// Total statically declared shared memory per thread block, bytes.
    pub smem_bytes: u32,
}

/// Lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// Value class of an expression, tracked during lowering for implicit
/// conversions (C's usual arithmetic conversions, restricted to i32/f32).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    I32,
    F32,
}

impl From<DType> for Ty {
    fn from(d: DType) -> Ty {
        match d {
            DType::F32 => Ty::F32,
            _ => Ty::I32,
        }
    }
}

struct Lowerer<'k> {
    kernel: &'k Kernel,
    ops: Vec<Op>,
    /// name → (register, type) for scalars, innermost scope last.
    scopes: Vec<HashMap<String, (Reg, Ty)>>,
    /// name → (register holding base byte address) for global pointers.
    ptrs: HashMap<String, Reg>,
    /// name → byte offset for shared arrays.
    shared: HashMap<String, u32>,
    shared_layout: Vec<(String, u32, u32)>,
    smem_bytes: u32,
    next_local: Reg,
    temp_floor: Reg,
    next_temp: Reg,
    /// Released temporaries available for reuse (each temp is produced
    /// once and consumed by exactly one parent operation, so freeing a
    /// temp source at its consuming instruction is sound and keeps the
    /// register estimate close to what a real register allocator needs).
    free_temps: Vec<Reg>,
    max_reg: Reg,
    param_regs: Vec<Reg>,
    /// Loop nesting depth (to reject `break` outside loops).
    loop_depth: u32,
}

/// Lower a kernel to bytecode.
pub fn lower(kernel: &Kernel) -> Result<Program, LowerError> {
    let mut lw = Lowerer {
        kernel,
        ops: Vec::new(),
        scopes: vec![HashMap::new()],
        ptrs: HashMap::new(),
        shared: HashMap::new(),
        shared_layout: Vec::new(),
        smem_bytes: 0,
        next_local: 0,
        temp_floor: 0,
        next_temp: 0,
        free_temps: Vec::new(),
        max_reg: 0,
        param_regs: Vec::new(),
        loop_depth: 0,
    };
    lw.run()?;
    Ok(Program {
        name: kernel.name.clone(),
        ops: lw.ops,
        num_regs: lw.max_reg + 1,
        param_regs: lw.param_regs,
        shared_layout: lw.shared_layout,
        smem_bytes: lw.smem_bytes,
    })
}

impl<'k> Lowerer<'k> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError {
            message: msg.into(),
        })
    }

    fn run(&mut self) -> Result<(), LowerError> {
        // Bank layout: builtins, params, locals (counted by pre-scan),
        // then per-statement temporaries.
        let mut next = BUILTIN_REGS;
        for p in &self.kernel.params {
            self.param_regs.push(next);
            match p.ty {
                ParamTy::Ptr(_) => {
                    self.ptrs.insert(p.name.clone(), next);
                }
                ParamTy::Scalar(dt) => {
                    self.scopes[0].insert(p.name.clone(), (next, Ty::from(dt)));
                }
            }
            next += 1;
        }
        self.next_local = next;
        let decl_sites = count_decl_sites(&self.kernel.body);
        self.temp_floor = next + decl_sites as u16;
        self.next_temp = self.temp_floor;
        self.max_reg = self.temp_floor.saturating_sub(1).max(BUILTIN_REGS - 1);

        // Shared arrays are laid out on first declaration (pre-walk so a
        // declaration inside an `if` still reserves space — CUDA shared
        // memory is allocated per block regardless of control flow).
        let mut offset = 0u32;
        let mut layout = Vec::new();
        catt_ir::visit::walk_stmts(&self.kernel.body, &mut |s| {
            if let Stmt::DeclShared { name, elem, len } = s {
                let bytes = elem.size_bytes() * len;
                layout.push((name.clone(), offset, bytes));
                offset += bytes.next_multiple_of(4);
            }
        });
        for (name, off, _) in &layout {
            self.shared.insert(name.clone(), *off);
        }
        self.shared_layout = layout;
        self.smem_bytes = offset;

        let body = &self.kernel.body;
        self.stmts(body)?;
        self.ops.push(Op::Exit);
        Ok(())
    }

    fn alloc_local(&mut self) -> Reg {
        let r = self.next_local;
        self.next_local += 1;
        debug_assert!(
            self.next_local <= self.temp_floor,
            "decl pre-scan undercounted"
        );
        self.max_reg = self.max_reg.max(r);
        r
    }

    fn alloc_temp(&mut self) -> Reg {
        let r = match self.free_temps.pop() {
            Some(r) => r,
            None => {
                let r = self.next_temp;
                self.next_temp += 1;
                r
            }
        };
        self.max_reg = self.max_reg.max(r);
        r
    }

    fn reset_temps(&mut self) {
        self.next_temp = self.temp_floor;
        self.free_temps.clear();
    }

    fn lookup(&self, name: &str) -> Option<(Reg, Ty)> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn emit(&mut self, op: Op) -> u32 {
        // Consuming an instruction releases its temp sources for reuse
        // (dst may then legally equal a source: execution reads all
        // sources before writing).
        for src in op.reads().into_iter().flatten() {
            if src >= self.temp_floor && !self.free_temps.contains(&src) {
                self.free_temps.push(src);
            }
        }
        if let Some(d) = op.writes() {
            self.free_temps.retain(|&r| r != d);
        }
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    // ----- statements ----------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        for s in body {
            self.reset_temps();
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::DeclScalar { name, ty, init } => {
                let r = self.alloc_local();
                let t = Ty::from(*ty);
                if let Some(e) = init {
                    let (src, src_ty) = self.expr(e)?;
                    let src = self.coerce(src, src_ty, t);
                    self.emit(Op::Mov { dst: r, src });
                } else {
                    self.emit(Op::MovImm { dst: r, imm: 0 });
                }
                self.scopes.last_mut().unwrap().insert(name.clone(), (r, t));
                Ok(())
            }
            Stmt::DeclShared { .. } => Ok(()), // laid out in `run`
            Stmt::Assign { lhs, op, rhs } => self.assign(lhs, *op, rhs),
            Stmt::If { cond, then, els } => {
                let (c, cty) = self.expr(cond)?;
                if cty == Ty::F32 {
                    return self.err("if condition must be integral");
                }
                let if_pc = self.emit(Op::If {
                    cond: c,
                    else_pc: 0,
                    end_pc: 0,
                });
                self.scopes.push(HashMap::new());
                self.stmts(then)?;
                self.scopes.pop();
                let else_pc;
                if els.is_empty() {
                    else_pc = self.here(); // the EndIf
                } else {
                    let else_op = self.emit(Op::Else { end_pc: 0 });
                    else_pc = self.here();
                    self.scopes.push(HashMap::new());
                    self.stmts(els)?;
                    self.scopes.pop();
                    let end = self.here();
                    self.ops[else_op as usize] = Op::Else { end_pc: end };
                }
                let end_pc = self.here();
                self.emit(Op::EndIf);
                self.ops[if_pc as usize] = Op::If {
                    cond: c,
                    else_pc,
                    end_pc,
                };
                Ok(())
            }
            Stmt::For {
                var,
                decl,
                init,
                cond_op,
                bound,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                // Iterator register.
                let it = if *decl {
                    let r = self.alloc_local();
                    self.scopes
                        .last_mut()
                        .unwrap()
                        .insert(var.clone(), (r, Ty::I32));
                    r
                } else {
                    match self.lookup(var) {
                        Some((r, Ty::I32)) => r,
                        Some(_) => return self.err("for iterator must be int"),
                        None => return self.err(format!("undeclared for iterator `{var}`")),
                    }
                };
                let (iv, ity) = self.expr(init)?;
                let iv = self.coerce(iv, ity, Ty::I32);
                self.emit(Op::Mov { dst: it, src: iv });

                let begin_pc = self.emit(Op::LoopBegin { end_pc: 0 });
                let cond_pc = self.here();
                // Guard: it <op> bound.
                self.reset_temps();
                let (b, bty) = self.expr(bound)?;
                let b = self.coerce(b, bty, Ty::I32);
                let c = self.alloc_temp();
                let cmp = match cond_op {
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    BinOp::Ne => CmpOp::Ne,
                    _ => return self.err("unsupported for guard operator"),
                };
                self.emit(Op::Cmp {
                    op: cmp,
                    float: false,
                    dst: c,
                    a: it,
                    b,
                });
                self.emit(Op::LoopTest { cond: c });
                self.loop_depth += 1;
                self.stmts(body)?;
                self.loop_depth -= 1;
                // Step.
                self.reset_temps();
                let (sv, sty) = self.expr(step)?;
                let sv = self.coerce(sv, sty, Ty::I32);
                self.emit(Op::IBin {
                    op: IBinOp::Add,
                    dst: it,
                    a: it,
                    b: sv,
                });
                self.emit(Op::LoopJump { cond_pc });
                let end_pc = self.here();
                self.ops[begin_pc as usize] = Op::LoopBegin { end_pc };
                self.scopes.pop();
                Ok(())
            }
            Stmt::While { cond, body } => {
                let begin_pc = self.emit(Op::LoopBegin { end_pc: 0 });
                let cond_pc = self.here();
                self.reset_temps();
                let (c, cty) = self.expr(cond)?;
                if cty == Ty::F32 {
                    return self.err("while condition must be integral");
                }
                self.emit(Op::LoopTest { cond: c });
                self.loop_depth += 1;
                self.scopes.push(HashMap::new());
                self.stmts(body)?;
                self.scopes.pop();
                self.loop_depth -= 1;
                self.emit(Op::LoopJump { cond_pc });
                let end_pc = self.here();
                self.ops[begin_pc as usize] = Op::LoopBegin { end_pc };
                Ok(())
            }
            Stmt::SyncThreads => {
                self.emit(Op::Bar);
                Ok(())
            }
            Stmt::Break => {
                if self.loop_depth == 0 {
                    return self.err("`break` outside of a loop");
                }
                self.emit(Op::Break);
                Ok(())
            }
            Stmt::Return => {
                self.emit(Op::Ret);
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                // Evaluate for effect-freeness (loads still count).
                self.expr(e)?;
                Ok(())
            }
        }
    }

    fn assign(&mut self, lhs: &LValue, op: Option<BinOp>, rhs: &Expr) -> Result<(), LowerError> {
        match lhs {
            LValue::Var(name) => {
                let Some((r, t)) = self.lookup(name) else {
                    return self.err(format!("assignment to undeclared variable `{name}`"));
                };
                let (mut v, vty) = self.expr(rhs)?;
                v = self.coerce(v, vty, t);
                match op {
                    None => {
                        self.emit(Op::Mov { dst: r, src: v });
                    }
                    Some(b) => {
                        self.bin_into(r, t, r, v, b)?;
                    }
                }
                Ok(())
            }
            LValue::Elem(name, idx) => {
                let elem_ty = self.array_elem_ty(name)?;
                let addr = self.address_of(name, idx)?;
                let (mut v, vty) = self.expr(rhs)?;
                match op {
                    None => {
                        v = self.coerce(v, vty, elem_ty);
                        self.store_to(name, addr, v);
                    }
                    Some(b) => {
                        // Read-modify-write: `addr` is consumed twice
                        // (load then store), so it must stay reserved
                        // until the store — the one exception to the
                        // consume-once rule `emit` relies on.
                        let cur = self.alloc_temp();
                        self.load_from(name, addr, cur);
                        self.free_temps.retain(|&r| r != addr);
                        let v2 = self.coerce(v, vty, elem_ty);
                        let res = self.alloc_temp();
                        self.bin3(res, elem_ty, cur, v2, b)?;
                        self.store_to(name, addr, res);
                    }
                }
                Ok(())
            }
        }
    }

    fn array_elem_ty(&self, name: &str) -> Result<Ty, LowerError> {
        if self.shared.contains_key(name) {
            // Shared arrays: find elem type from layout via kernel walk.
            let mut t = None;
            catt_ir::visit::walk_stmts(&self.kernel.body, &mut |s| {
                if let Stmt::DeclShared { name: n, elem, .. } = s {
                    if n == name {
                        t = Some(Ty::from(*elem));
                    }
                }
            });
            return t.ok_or(LowerError {
                message: format!("unknown shared array `{name}`"),
            });
        }
        for p in &self.kernel.params {
            if p.name == name {
                if let ParamTy::Ptr(dt) = p.ty {
                    return Ok(Ty::from(dt));
                }
            }
        }
        Err(LowerError {
            message: format!("`{name}` is not an array"),
        })
    }

    /// Compute the per-lane byte address register for `name[idx]`.
    fn address_of(&mut self, name: &str, idx: &Expr) -> Result<Reg, LowerError> {
        let (iv, ity) = self.expr(idx)?;
        let iv = self.coerce(iv, ity, Ty::I32);
        // byte offset = idx * 4  (all element types are 4 bytes)
        let four = self.alloc_temp();
        self.emit(Op::MovImm { dst: four, imm: 4 });
        let off = self.alloc_temp();
        self.emit(Op::IBin {
            op: IBinOp::Mul,
            dst: off,
            a: iv,
            b: four,
        });
        if let Some(&base_off) = self.shared.get(name) {
            if base_off == 0 {
                return Ok(off);
            }
            let b = self.alloc_temp();
            self.emit(Op::MovImm {
                dst: b,
                imm: base_off,
            });
            let addr = self.alloc_temp();
            self.emit(Op::IBin {
                op: IBinOp::Add,
                dst: addr,
                a: off,
                b,
            });
            Ok(addr)
        } else if let Some(&base_reg) = self.ptrs.get(name) {
            let addr = self.alloc_temp();
            self.emit(Op::IBin {
                op: IBinOp::Add,
                dst: addr,
                a: off,
                b: base_reg,
            });
            Ok(addr)
        } else {
            self.err(format!("`{name}` is not an array"))
        }
    }

    fn load_from(&mut self, name: &str, addr: Reg, dst: Reg) {
        if self.shared.contains_key(name) {
            self.emit(Op::Lds { dst, addr });
        } else {
            self.emit(Op::Ldg { dst, addr });
        }
    }

    fn store_to(&mut self, name: &str, addr: Reg, src: Reg) {
        if self.shared.contains_key(name) {
            self.emit(Op::Sts { src, addr });
        } else {
            self.emit(Op::Stg { src, addr });
        }
    }

    // ----- expressions ----------------------------------------------------

    fn coerce(&mut self, r: Reg, from: Ty, to: Ty) -> Reg {
        if from == to {
            return r;
        }
        let dst = self.alloc_temp();
        match (from, to) {
            (Ty::I32, Ty::F32) => self.emit(Op::CvtIF { dst, a: r }),
            (Ty::F32, Ty::I32) => self.emit(Op::CvtFI { dst, a: r }),
            _ => unreachable!(),
        };
        dst
    }

    /// Emit `dst = a <op> b` at type `t` into an existing register.
    fn bin_into(&mut self, dst: Reg, t: Ty, a: Reg, b: Reg, op: BinOp) -> Result<(), LowerError> {
        self.bin3(dst, t, a, b, op)
    }

    fn bin3(&mut self, dst: Reg, t: Ty, a: Reg, b: Reg, op: BinOp) -> Result<(), LowerError> {
        match t {
            Ty::I32 => {
                let iop = match op {
                    BinOp::Add => IBinOp::Add,
                    BinOp::Sub => IBinOp::Sub,
                    BinOp::Mul => IBinOp::Mul,
                    BinOp::Div => IBinOp::Div,
                    BinOp::Rem => IBinOp::Rem,
                    BinOp::Shl => IBinOp::Shl,
                    BinOp::Shr => IBinOp::Shr,
                    BinOp::BitAnd | BinOp::And => IBinOp::And,
                    BinOp::BitOr | BinOp::Or => IBinOp::Or,
                    BinOp::BitXor => IBinOp::Xor,
                    _ => return self.err(format!("unsupported int op {op:?}")),
                };
                self.emit(Op::IBin { op: iop, dst, a, b });
            }
            Ty::F32 => {
                let fop = match op {
                    BinOp::Add => FBinOp::Add,
                    BinOp::Sub => FBinOp::Sub,
                    BinOp::Mul => FBinOp::Mul,
                    BinOp::Div => FBinOp::Div,
                    _ => return self.err(format!("unsupported float op {op:?}")),
                };
                self.emit(Op::FBin { op: fop, dst, a, b });
            }
        }
        Ok(())
    }

    /// Lower an expression; returns (result register, type).
    fn expr(&mut self, e: &Expr) -> Result<(Reg, Ty), LowerError> {
        match e {
            Expr::Int(v) => {
                let dst = self.alloc_temp();
                self.emit(Op::MovImm {
                    dst,
                    imm: *v as i32 as u32,
                });
                Ok((dst, Ty::I32))
            }
            Expr::Float(v) => {
                let dst = self.alloc_temp();
                self.emit(Op::MovImm {
                    dst,
                    imm: (*v as f32).to_bits(),
                });
                Ok((dst, Ty::F32))
            }
            Expr::Var(name) => match self.lookup(name) {
                Some((r, t)) => Ok((r, t)),
                None => {
                    if self.ptrs.contains_key(name) || self.shared.contains_key(name) {
                        self.err(format!("array `{name}` used without subscript"))
                    } else {
                        self.err(format!("undeclared variable `{name}`"))
                    }
                }
            },
            Expr::Builtin(b) => Ok((builtin_reg(*b), Ty::I32)),
            Expr::Unary(UnOp::Neg, a) => {
                let (r, t) = self.expr(a)?;
                let dst = self.alloc_temp();
                match t {
                    Ty::I32 => self.emit(Op::INeg { dst, a: r }),
                    Ty::F32 => self.emit(Op::FUn {
                        op: FUnOp::Neg,
                        dst,
                        a: r,
                    }),
                };
                Ok((dst, t))
            }
            Expr::Unary(UnOp::Not, a) => {
                let (r, t) = self.expr(a)?;
                if t == Ty::F32 {
                    return self.err("logical not on float");
                }
                let dst = self.alloc_temp();
                self.emit(Op::Not { dst, a: r });
                Ok((dst, Ty::I32))
            }
            Expr::Binary(op, a, b) => {
                let (ra, ta) = self.expr(a)?;
                let (rb, tb) = self.expr(b)?;
                if op.is_predicate() {
                    let (ra, rb, float) = if ta == Ty::F32 || tb == Ty::F32 {
                        (
                            self.coerce(ra, ta, Ty::F32),
                            self.coerce(rb, tb, Ty::F32),
                            true,
                        )
                    } else {
                        (ra, rb, false)
                    };
                    let dst = self.alloc_temp();
                    let cmp = match op {
                        BinOp::Lt => Some(CmpOp::Lt),
                        BinOp::Le => Some(CmpOp::Le),
                        BinOp::Gt => Some(CmpOp::Gt),
                        BinOp::Ge => Some(CmpOp::Ge),
                        BinOp::Eq => Some(CmpOp::Eq),
                        BinOp::Ne => Some(CmpOp::Ne),
                        _ => None,
                    };
                    match cmp {
                        Some(c) => {
                            self.emit(Op::Cmp {
                                op: c,
                                float,
                                dst,
                                a: ra,
                                b: rb,
                            });
                        }
                        None => {
                            // && / || on 0/1 predicates = bitwise and/or.
                            let iop = if *op == BinOp::And {
                                IBinOp::And
                            } else {
                                IBinOp::Or
                            };
                            self.emit(Op::IBin {
                                op: iop,
                                dst,
                                a: ra,
                                b: rb,
                            });
                        }
                    }
                    Ok((dst, Ty::I32))
                } else {
                    let t = if ta == Ty::F32 || tb == Ty::F32 {
                        Ty::F32
                    } else {
                        Ty::I32
                    };
                    let ra = self.coerce(ra, ta, t);
                    let rb = self.coerce(rb, tb, t);
                    let dst = self.alloc_temp();
                    self.bin3(dst, t, ra, rb, *op)?;
                    Ok((dst, t))
                }
            }
            Expr::Index(name, idx) => {
                let t = self.array_elem_ty(name)?;
                let addr = self.address_of(name, idx)?;
                let dst = self.alloc_temp();
                self.load_from(name, addr, dst);
                Ok((dst, t))
            }
            Expr::Call(intr, args) => self.call(*intr, args),
            Expr::Cast(dt, a) => {
                let (r, t) = self.expr(a)?;
                let to = Ty::from(*dt);
                Ok((self.coerce(r, t, to), to))
            }
            Expr::Select(c, a, b) => {
                let (rc, tc) = self.expr(c)?;
                if tc == Ty::F32 {
                    return self.err("select condition must be integral");
                }
                let (ra, ta) = self.expr(a)?;
                let (rb, tb) = self.expr(b)?;
                let t = if ta == Ty::F32 || tb == Ty::F32 {
                    Ty::F32
                } else {
                    Ty::I32
                };
                let ra = self.coerce(ra, ta, t);
                let rb = self.coerce(rb, tb, t);
                let dst = self.alloc_temp();
                self.emit(Op::Sel {
                    dst,
                    c: rc,
                    a: ra,
                    b: rb,
                });
                Ok((dst, t))
            }
        }
    }

    fn call(&mut self, intr: Intrinsic, args: &[Expr]) -> Result<(Reg, Ty), LowerError> {
        let unary_f = |lw: &mut Self, op: FUnOp, a: &Expr| -> Result<(Reg, Ty), LowerError> {
            let (r, t) = lw.expr(a)?;
            let r = lw.coerce(r, t, Ty::F32);
            let dst = lw.alloc_temp();
            lw.emit(Op::FUn { op, dst, a: r });
            Ok((dst, Ty::F32))
        };
        let binary_f = |lw: &mut Self, op: FBinOp, a: &Expr, b: &Expr| {
            let (ra, ta) = lw.expr(a)?;
            let (rb, tb) = lw.expr(b)?;
            let ra = lw.coerce(ra, ta, Ty::F32);
            let rb = lw.coerce(rb, tb, Ty::F32);
            let dst = lw.alloc_temp();
            lw.emit(Op::FBin {
                op,
                dst,
                a: ra,
                b: rb,
            });
            Ok((dst, Ty::F32))
        };
        match intr {
            Intrinsic::Sqrtf => unary_f(self, FUnOp::Sqrt, &args[0]),
            Intrinsic::Expf => unary_f(self, FUnOp::Exp, &args[0]),
            Intrinsic::Logf => unary_f(self, FUnOp::Log, &args[0]),
            Intrinsic::Fabsf => unary_f(self, FUnOp::Abs, &args[0]),
            Intrinsic::Sinf => unary_f(self, FUnOp::Sin, &args[0]),
            Intrinsic::Cosf => unary_f(self, FUnOp::Cos, &args[0]),
            Intrinsic::Fminf => binary_f(self, FBinOp::Min, &args[0], &args[1]),
            Intrinsic::Fmaxf => binary_f(self, FBinOp::Max, &args[0], &args[1]),
            Intrinsic::Powf => binary_f(self, FBinOp::Pow, &args[0], &args[1]),
            Intrinsic::Min | Intrinsic::Max => {
                let (ra, ta) = self.expr(&args[0])?;
                let (rb, tb) = self.expr(&args[1])?;
                if ta == Ty::F32 || tb == Ty::F32 {
                    let op = if intr == Intrinsic::Min {
                        FBinOp::Min
                    } else {
                        FBinOp::Max
                    };
                    let ra = self.coerce(ra, ta, Ty::F32);
                    let rb = self.coerce(rb, tb, Ty::F32);
                    let dst = self.alloc_temp();
                    self.emit(Op::FBin {
                        op,
                        dst,
                        a: ra,
                        b: rb,
                    });
                    Ok((dst, Ty::F32))
                } else {
                    let op = if intr == Intrinsic::Min {
                        IBinOp::Min
                    } else {
                        IBinOp::Max
                    };
                    let dst = self.alloc_temp();
                    self.emit(Op::IBin {
                        op,
                        dst,
                        a: ra,
                        b: rb,
                    });
                    Ok((dst, Ty::I32))
                }
            }
            Intrinsic::Abs => {
                let (r, t) = self.expr(&args[0])?;
                if t == Ty::F32 {
                    return unary_f(self, FUnOp::Abs, &args[0]);
                }
                let dst = self.alloc_temp();
                self.emit(Op::IAbs { dst, a: r });
                Ok((dst, Ty::I32))
            }
        }
    }
}

/// Count scalar declaration sites (locals + for-iterator declarations).
fn count_decl_sites(stmts: &[Stmt]) -> u32 {
    let mut n = 0;
    catt_ir::visit::walk_stmts(stmts, &mut |s| match s {
        Stmt::DeclScalar { .. } => n += 1,
        Stmt::For { decl: true, .. } => n += 1,
        _ => {}
    });
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use catt_frontend::parse_kernel;

    fn lower_src(src: &str) -> Program {
        lower(&parse_kernel(src).unwrap()).unwrap()
    }

    #[test]
    fn lowers_atax_and_counts_regs() {
        let p = lower_src(
            "#define NX 1024
             __global__ void atax(float *A, float *B, float *tmp) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < NX) {
                     for (int j = 0; j < NX; j++) {
                         tmp[i] += A[i * NX + j] * B[j];
                     }
                 }
             }",
        );
        assert!(matches!(p.ops.last(), Some(Op::Exit)));
        // 12 builtins + 3 params + 2 locals + temps; sanity band.
        assert!(p.num_regs >= 17, "regs = {}", p.num_regs);
        assert!(p.num_regs <= 48, "regs = {}", p.num_regs);
        assert_eq!(p.param_regs, vec![12, 13, 14]);
        // The loop body contains 3 global accesses (2 loads via +=, plus
        // A and B loads, and 1 store).
        let ldg = p.ops.iter().filter(|o| matches!(o, Op::Ldg { .. })).count();
        let stg = p.ops.iter().filter(|o| matches!(o, Op::Stg { .. })).count();
        assert_eq!(ldg, 3);
        assert_eq!(stg, 1);
    }

    #[test]
    fn if_backpatching_points_past_branches() {
        let p = lower_src(
            "__global__ void k(float *A) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < 4) { A[i] = 1.0f; } else { A[i] = 2.0f; }
             }",
        );
        let (mut if_seen, mut else_seen) = (false, false);
        for (pc, op) in p.ops.iter().enumerate() {
            match op {
                Op::If {
                    else_pc, end_pc, ..
                } => {
                    if_seen = true;
                    assert!((*else_pc as usize) > pc);
                    assert!(*end_pc >= *else_pc);
                    assert!(matches!(p.ops[*end_pc as usize], Op::EndIf));
                }
                Op::Else { end_pc } => {
                    else_seen = true;
                    assert!(matches!(p.ops[*end_pc as usize], Op::EndIf));
                }
                _ => {}
            }
        }
        assert!(if_seen && else_seen);
    }

    #[test]
    fn loop_backpatching() {
        let p = lower_src(
            "__global__ void k(float *A) {
                 for (int j = 0; j < 8; j++) { A[j] = 0.0f; }
             }",
        );
        let begin = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::LoopBegin { .. }))
            .unwrap();
        let Op::LoopBegin { end_pc } = p.ops[begin] else {
            unreachable!()
        };
        // end_pc points past the LoopJump.
        assert!(matches!(p.ops[end_pc as usize - 1], Op::LoopJump { .. }));
        let Op::LoopJump { cond_pc } = p.ops[end_pc as usize - 1] else {
            unreachable!()
        };
        assert_eq!(cond_pc as usize, begin + 1);
    }

    #[test]
    fn shared_arrays_layout() {
        let p = lower_src(
            "__global__ void k(float *A) {
                 __shared__ float s1[64];
                 __shared__ int s2[32];
                 s1[threadIdx.x] = 0.0f;
                 s2[threadIdx.x] = 0;
                 A[0] = s1[0] + (float)s2[0];
             }",
        );
        assert_eq!(p.smem_bytes, 64 * 4 + 32 * 4);
        assert_eq!(p.shared_layout[0], ("s1".to_string(), 0, 256));
        assert_eq!(p.shared_layout[1], ("s2".to_string(), 256, 128));
        let lds = p.ops.iter().filter(|o| matches!(o, Op::Lds { .. })).count();
        let sts = p.ops.iter().filter(|o| matches!(o, Op::Sts { .. })).count();
        assert_eq!(lds, 2);
        assert_eq!(sts, 2);
    }

    #[test]
    fn undeclared_variable_is_error() {
        let r = lower(&parse_kernel("__global__ void k(float *A) { A[0] = x; }").unwrap());
        assert!(r.unwrap_err().message.contains("undeclared"));
    }

    #[test]
    fn break_outside_loop_is_error() {
        let r = lower(&parse_kernel("__global__ void k(float *A) { break; }").unwrap());
        assert!(r.unwrap_err().message.contains("break"));
    }

    #[test]
    fn temps_do_not_collide_with_later_locals() {
        // A statement using temps precedes a declaration inside a loop;
        // the local's register must be below the temp floor.
        let p = lower_src(
            "__global__ void k(float *A) {
                 for (int j = 0; j < 4; j++) {
                     A[j] = A[j] * 2.0f + 1.0f;
                     float x = A[j];
                     A[j] = x;
                 }
             }",
        );
        // Collect the Mov dst of `x` (a local): all locals < temp floor.
        // Indirectly verified: lowering asserts in debug mode; just check
        // the program lowered and has plausible register count.
        assert!(p.num_regs > BUILTIN_REGS);
    }

    #[test]
    fn reads_writes_metadata() {
        let op = Op::IBin {
            op: IBinOp::Add,
            dst: 5,
            a: 1,
            b: 2,
        };
        assert_eq!(op.reads(), [Some(1), Some(2), None]);
        assert_eq!(op.writes(), Some(5));
        let st = Op::Stg { src: 3, addr: 4 };
        assert_eq!(st.reads(), [Some(3), Some(4), None]);
        assert_eq!(st.writes(), None);
        assert!(st.is_global_mem());
        assert!(!Op::Bar.is_global_mem());
    }

    #[test]
    fn scalar_param_types_respected() {
        // `n` is int: comparison i < n is integer compare.
        let p = lower_src(
            "__global__ void k(float *A, int n) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 if (i < n) { A[i] = 0.0f; }
             }",
        );
        assert!(p
            .ops
            .iter()
            .any(|o| matches!(o, Op::Cmp { float: false, .. })));
    }

    #[test]
    fn float_int_mixing_inserts_cvt() {
        let p = lower_src(
            "__global__ void k(float *A) {
                 int i = blockIdx.x * blockDim.x + threadIdx.x;
                 A[i] = A[i] + i;
             }",
        );
        assert!(p.ops.iter().any(|o| matches!(o, Op::CvtIF { .. })));
    }
}
