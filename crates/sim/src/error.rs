//! Structured simulator errors — the sanitizer half of the guard rails.
//!
//! Every user-reachable failure on the execution path surfaces as a
//! [`SimError`] instead of a panic, so the evaluation engine can classify
//! a bad `(N, M)` candidate, record it, and keep the rest of a sweep
//! alive. The taxonomy mirrors what a real driver reports:
//!
//! * [`SimError::BarrierDeadlock`] — warps parked at `__syncthreads()`
//!   with a peer that never arrives (detected structurally, or when the
//!   cycle budget runs out with warps still parked);
//! * [`SimError::OutOfBounds`] — a host-side buffer write past the
//!   allocation (device-side wild accesses stay benign by design, see
//!   `GlobalMem::load`);
//! * [`SimError::FuelExhausted`] — the launch exceeded its cycle budget
//!   (runaway loop / mis-transformed kernel), see
//!   [`GpuConfig::fuel_budget`](crate::GpuConfig::fuel_budget);
//! * [`SimError::BadArgument`] — launch-time contract violations
//!   (argument count, unlaunchable geometry, oversized shared memory);
//! * [`SimError::MalformedProgram`] — an inconsistent divergence stack at
//!   run time (a lowering bug, kept as an error so one bad program cannot
//!   take down a fleet worker);
//! * [`SimError::Sanitizer`] — a sanitized launch
//!   ([`GpuConfig::sanitize`](crate::GpuConfig::sanitize) /
//!   `CATT_SANITIZE=on`) detected undefined behaviour the forgiving
//!   functional semantics would otherwise mask: barrier divergence,
//!   inter-block global races, uninitialized global reads, shared-memory
//!   overflow (see [`crate::sanitize`]);
//! * [`SimError::Lower`] — the kernel failed to lower to bytecode.

use crate::bytecode::LowerError;
use crate::sanitize::SanitizerReport;
use std::fmt;

/// A structured, recoverable simulator failure. See the module docs for
/// the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Warps are parked at a barrier with no runnable peer left (or the
    /// cycle budget ran out while warps were still parked — a peer that
    /// never arrives).
    BarrierDeadlock {
        /// Kernel being executed.
        kernel: String,
        /// Number of warps parked at the barrier.
        parked_warps: usize,
    },
    /// A buffer access outside its allocation.
    OutOfBounds {
        /// Kernel (or `"<host>"` for host-side buffer writes).
        kernel: String,
        /// Program counter of the faulting access (0 for host writes).
        pc: u32,
        /// Faulting byte address.
        addr: u32,
        /// The offending buffer handle, rendered (`Buffer { addr, len }`).
        buffer: String,
    },
    /// The launch exceeded its cycle budget without completing.
    FuelExhausted {
        /// Kernel being executed.
        kernel: String,
        /// Cycles consumed when the budget ran out.
        cycles: u64,
    },
    /// A launch-time contract violation (argument count, unlaunchable
    /// geometry, oversized shared memory).
    BadArgument {
        /// Kernel being launched.
        kernel: String,
        /// What was wrong.
        message: String,
    },
    /// The program's divergence stack was inconsistent at run time (a
    /// lowering bug surfaced as an error rather than a worker panic).
    MalformedProgram {
        /// Kernel being executed.
        kernel: String,
        /// Program counter of the inconsistent instruction.
        pc: u32,
        /// What was inconsistent.
        message: String,
    },
    /// A sanitized launch detected undefined behaviour (barrier
    /// divergence, inter-block race, uninitialized read, shared-memory
    /// overflow). Only produced when sanitize mode is on.
    Sanitizer(SanitizerReport),
    /// The kernel failed to lower to simulator bytecode.
    Lower(LowerError),
    /// The launch's [`CancelToken`](crate::CancelToken) fired: a caller
    /// (e.g. `catt serve` propagating a request deadline) asked the
    /// simulation to stop. Unlike [`SimError::FuelExhausted`] this bounds
    /// wall-clock time, not simulated cycles.
    Cancelled {
        /// Kernel being executed.
        kernel: String,
        /// Cycles simulated when the token was observed.
        cycles: u64,
    },
}

impl SimError {
    /// Stable machine-readable code for this error class — the string
    /// `catt serve` puts in its structured API errors (and embeds in
    /// engine `JobError` messages, see `catt_core::engine`). One token
    /// per variant; never contains `:` or whitespace.
    pub fn code(&self) -> &'static str {
        match self {
            SimError::BarrierDeadlock { .. } => "barrier-deadlock",
            SimError::OutOfBounds { .. } => "out-of-bounds",
            SimError::FuelExhausted { .. } => "fuel-exhausted",
            SimError::BadArgument { .. } => "bad-argument",
            SimError::MalformedProgram { .. } => "malformed-program",
            SimError::Sanitizer(_) => "sanitizer",
            SimError::Lower(_) => "lower-error",
            SimError::Cancelled { .. } => "cancelled",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BarrierDeadlock {
                kernel,
                parked_warps,
            } => write!(
                f,
                "barrier deadlock in `{kernel}`: {parked_warps} warp(s) parked at a barrier \
                 with a peer that never arrives"
            ),
            SimError::OutOfBounds {
                kernel,
                pc,
                addr,
                buffer,
            } => write!(
                f,
                "out-of-bounds access in `{kernel}` (pc {pc}): byte address {addr} \
                 outside {buffer}"
            ),
            SimError::FuelExhausted { kernel, cycles } => write!(
                f,
                "cycle budget exhausted in `{kernel}` after {cycles} cycles \
                 (runaway kernel? raise CATT_SIM_FUEL or GpuConfig::sim_fuel)"
            ),
            SimError::BadArgument { kernel, message } => {
                write!(f, "bad launch of `{kernel}`: {message}")
            }
            SimError::MalformedProgram {
                kernel,
                pc,
                message,
            } => write!(f, "malformed program `{kernel}` (pc {pc}): {message}"),
            SimError::Sanitizer(report) => write!(f, "sanitizer: {report}"),
            SimError::Lower(e) => e.fmt(f),
            SimError::Cancelled { kernel, cycles } => write!(
                f,
                "launch of `{kernel}` cancelled after {cycles} simulated cycles \
                 (deadline or shutdown)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Lower(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LowerError> for SimError {
    fn from(e: LowerError) -> SimError {
        SimError::Lower(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_kernel_and_cause() {
        let e = SimError::BarrierDeadlock {
            kernel: "k".into(),
            parked_warps: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("`k`") && msg.contains("3 warp(s)"), "{msg}");

        let e = SimError::FuelExhausted {
            kernel: "spin".into(),
            cycles: 5000,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("5000") && msg.contains("CATT_SIM_FUEL"),
            "{msg}"
        );

        let e = SimError::OutOfBounds {
            kernel: "<host>".into(),
            pc: 0,
            addr: 1024,
            buffer: "Buffer { addr: 512, len: 4 }".into(),
        };
        assert!(e.to_string().contains("Buffer { addr: 512, len: 4 }"));
    }
}
