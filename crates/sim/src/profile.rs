//! In-simulator profiling: the event model behind `catt-profile`.
//!
//! The paper validates CATT with nvprof-derived evidence — stall-cycle
//! breakdowns, L1D hit rates, and the claim that the Eq. 8 footprint
//! model predicts observed contention. This module is the simulator side
//! of that observability: a [`ProfileSink`] trait threaded through the SM
//! run loop as a *generic parameter*, so the disabled path ([`NullSink`],
//! `ENABLED = false`) monomorphizes to straight-line code with every hook
//! compiled out — profiling off costs nothing, and results are
//! bit-identical either way (the sink only observes, never steers).
//!
//! The enabled path records, per SM:
//!
//! * **stall accounting** — every issue slot of every scheduler on every
//!   cycle is either an issued instruction or a stall charged to one
//!   [`StallReason`], so `Σ stalls + instructions = cycles × schedulers`
//!   holds exactly (the invariant `catt profile` re-checks on every run);
//! * **per-set L1D counters** — accesses/hits/misses/evictions/stores per
//!   cache set, the raw material of the heat maps, plus the unique-line
//!   working set and a bucketed miss curve (Eq. 8 validation);
//! * **phase timelines** — per-warp exec/barrier segments and per-block
//!   residency spans, which is what makes a throttled kernel's
//!   group-alternation visible in `chrome://tracing`.
//!
//! Per-SM shards merge into a [`LaunchProfile`] in ascending SM-id order —
//! exactly like the store-log commit of the parallel per-SM path — so a
//! profile is deterministic across thread budgets and execution modes.
//! Profiles are delivered through a thread-local capture buffer
//! ([`set_capture`]/[`take_captured`], the same pattern as the harness's
//! memory-digest capture); profiling state is excluded from the
//! simulation-cache digest and profiled runs bypass the cache entirely
//! (see `catt_core::engine`).

use crate::config::L1Config;
use std::cell::RefCell;
use std::collections::HashSet;

/// Why an issue slot of one scheduler went unused for one cycle.
///
/// The taxonomy mirrors nvprof's stall reasons at the granularity this
/// simulator models: register dependencies (short scoreboard), memory
/// (L1D port serialization or outstanding load data — long scoreboard),
/// barriers, throttling pauses, dispatch drain, and fuel cut-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// A ready warp waits on a register produced by a short-latency
    /// (ALU/SFU) instruction.
    Scoreboard = 0,
    /// A ready warp waits on the L1D port or on data from an outstanding
    /// global load.
    Memory = 1,
    /// Every schedulable warp of the partition is parked at a
    /// `__syncthreads()` barrier.
    Barrier = 2,
    /// Ready warps exist but their blocks are paused by dynamic
    /// throttling (DYNCTA's issue gate).
    Throttled = 3,
    /// No resident warp can ever use the slot (dispatch drain, finished
    /// partitions).
    Idle = 4,
    /// Slots charged when a launch is cut off by the cycle-fuel budget;
    /// always zero for launches that complete.
    Fuel = 5,
}

impl StallReason {
    /// Number of reasons (array dimension of the per-reason counters).
    pub const COUNT: usize = 6;

    /// Every reason, in counter-index order.
    pub const ALL: [StallReason; StallReason::COUNT] = [
        StallReason::Scoreboard,
        StallReason::Memory,
        StallReason::Barrier,
        StallReason::Throttled,
        StallReason::Idle,
        StallReason::Fuel,
    ];

    /// Human-readable name (report rows, trace labels).
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Scoreboard => "scoreboard",
            StallReason::Memory => "memory",
            StallReason::Barrier => "barrier",
            StallReason::Throttled => "throttled",
            StallReason::Idle => "idle",
            StallReason::Fuel => "fuel",
        }
    }
}

/// Per-cache-set counters (one row of the heat map).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetCounters {
    /// Load accesses mapped to this set.
    pub accesses: u64,
    /// Load accesses that hit (MSHR merges included, as in
    /// `LaunchStats::l1_hits`).
    pub hits: u64,
    /// Load misses (each one an off-chip request).
    pub misses: u64,
    /// Misses that displaced a valid resident line.
    pub evictions: u64,
    /// Write-through stores mapped to this set.
    pub stores: u64,
}

impl SetCounters {
    /// Fold another set's counters into this one.
    pub fn add(&mut self, o: &SetCounters) {
        self.accesses += o.accesses;
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.stores += o.stores;
    }
}

/// What a timeline segment represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// A warp executing (from dispatch or barrier release to the next
    /// barrier arrival or completion).
    Exec,
    /// A warp parked at a `__syncthreads()` barrier.
    Barrier,
    /// A thread block resident in its SM slot (`warp` holds the TB slot).
    Block,
}

/// One closed timeline segment on an SM.
#[derive(Debug, Clone, Copy)]
pub struct PhaseEvent {
    /// Warp slot for `Exec`/`Barrier` segments; TB slot for `Block`.
    pub warp: u32,
    /// Linear block id the segment belongs to.
    pub block: u32,
    /// Segment kind.
    pub kind: PhaseKind,
    /// First cycle of the segment.
    pub start: u64,
    /// One past the last cycle of the segment.
    pub end: u64,
}

/// One window of the miss curve: `misses` out of `accesses` load
/// accesses, in execution order.
#[derive(Debug, Clone, Copy, Default)]
pub struct MissWindow {
    /// Load accesses in the window (= [`SmProfile::MISS_WINDOW`] except
    /// for the final partial window).
    pub accesses: u32,
    /// How many of them missed.
    pub misses: u32,
}

/// The recording sink: one SM's shard of a launch profile.
#[derive(Debug, Clone)]
pub struct SmProfile {
    /// Which SM this shard describes.
    pub sm_id: u32,
    /// Cycles this SM ran (its share of the launch).
    pub cycles: u64,
    /// Warp schedulers on the SM (issue slots per cycle).
    pub schedulers: u32,
    /// Warp-instructions issued on this SM.
    pub instructions: u64,
    /// Stall cycles per [`StallReason`], indexed by the enum
    /// discriminant. Together with `instructions` these account for every
    /// issue slot: `Σ stall_cycles + instructions = cycles × schedulers`.
    pub stall_cycles: [u64; StallReason::COUNT],
    /// Per-set L1D counters, indexed by set.
    pub sets: Vec<SetCounters>,
    /// Unique 128-byte line addresses touched (loads and stores) — the
    /// observed working set Eq. 8's `SIZE_req` predicts.
    pub unique_lines: HashSet<u32>,
    /// Bucketed miss curve over load accesses in execution order.
    pub miss_curve: Vec<MissWindow>,
    /// Closed timeline segments, in close order.
    pub events: Vec<PhaseEvent>,
    /// Segments dropped after [`SmProfile::MAX_EVENTS`] was reached.
    pub dropped_events: u64,
    /// L2 load accesses from this SM (its L1D load misses). Zero when
    /// the L2 is disabled.
    pub l2_accesses: u64,
    /// L2 load hits (MSHR merges included).
    pub l2_hits: u64,
    /// Valid L2 lines displaced by fills.
    pub l2_evictions: u64,
    /// Whether the windowed miss curve is recorded (see
    /// `GpuConfig::profile_windows_enabled`): the per-window bookkeeping
    /// dominates profiling overhead, so it is opt-in; the aggregate
    /// stall/L1/L2 counters above are always recorded.
    windows: bool,
    /// Open segment per warp slot: (start cycle, kind, block).
    open: Vec<Option<(u64, PhaseKind, u32)>>,
    /// Open residency span per TB slot: (start cycle).
    tb_open: Vec<Option<u64>>,
    /// Miss-curve window currently being filled.
    window: MissWindow,
}

impl SmProfile {
    /// Cap on stored timeline segments per SM (excess is counted in
    /// [`SmProfile::dropped_events`], never an error).
    pub const MAX_EVENTS: usize = 1 << 16;

    /// Load accesses per miss-curve window.
    pub const MISS_WINDOW: u32 = 256;

    /// Cap on stored miss-curve windows per SM.
    pub const MAX_WINDOWS: usize = 1 << 16;

    /// Total stall cycles, all reasons.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Issue slots this SM offered (`cycles × schedulers`).
    pub fn issue_slots(&self) -> u64 {
        self.cycles * self.schedulers as u64
    }

    fn push_event(&mut self, e: PhaseEvent) {
        if e.end <= e.start {
            return; // zero-length segments carry no information
        }
        if self.events.len() < Self::MAX_EVENTS {
            self.events.push(e);
        } else {
            self.dropped_events += 1;
        }
    }

    /// Close warp `w`'s open segment at `cycle` and optionally open a new
    /// one of `next` kind.
    fn roll_segment(&mut self, w: usize, cycle: u64, next: Option<PhaseKind>) {
        let Some(slot) = self.open.get_mut(w) else {
            return;
        };
        let prev = slot.take();
        if let Some((start, kind, block)) = prev {
            self.push_event(PhaseEvent {
                warp: w as u32,
                block,
                kind,
                start,
                end: cycle,
            });
            if let Some(k) = next {
                self.open[w] = Some((cycle, k, block));
            }
        }
    }
}

/// Observation hooks threaded through the SM run loop.
///
/// The trait is a *generic parameter* of the run loop, so with
/// [`NullSink`] (`ENABLED = false`) every hook is an empty inlined call
/// and every `if S::ENABLED` block is dead code — the off path compiles
/// to exactly the pre-profiling loop. Implementations only observe:
/// nothing a sink does may influence simulated state, which is what makes
/// profiled and unprofiled runs bit-identical.
pub trait ProfileSink: Send + Sized {
    /// Whether the hooks record anything (compile-time constant; gates
    /// the classification work in the run loop).
    const ENABLED: bool;

    /// Construct the sink for one SM of a launch. `windows` enables the
    /// windowed miss curve (opt-in, see `GpuConfig::profile_windows`).
    fn for_sm(sm_id: u32, l1: L1Config, warps: usize, tbs: usize, windows: bool) -> Self;

    /// Merge this SM's shard into the launch profile. Called in ascending
    /// SM-id order, like the parallel path's store-log commit.
    fn finish_into(self, out: &mut LaunchProfile);

    /// `cycles` issue slots of one scheduler went unused for `reason`.
    #[inline]
    fn stall(&mut self, _reason: StallReason, _cycles: u64) {}

    /// One coalesced load transaction reached L1 set `set` for line
    /// address `line` (line index, not bytes).
    #[inline]
    fn l1_load(&mut self, _set: u32, _line: u32, _hit: bool, _evicted: bool) {}

    /// One write-through store transaction reached L1 set `set`.
    #[inline]
    fn l1_store(&mut self, _set: u32, _line: u32) {}

    /// An L1D load miss probed this SM's L2 slice (never called with the
    /// L2 disabled; stores bypass the L2).
    #[inline]
    fn l2_load(&mut self, _hit: bool, _evicted: bool) {}

    /// Block `block` was dispatched into TB slot `slot`.
    #[inline]
    fn tb_start(&mut self, _slot: usize, _block: u32, _cycle: u64) {}

    /// Block `block` retired from TB slot `slot`.
    #[inline]
    fn tb_end(&mut self, _slot: usize, _block: u32, _cycle: u64) {}

    /// Warp slot `warp` started executing `block`.
    #[inline]
    fn warp_begin(&mut self, _warp: usize, _block: u32, _cycle: u64) {}

    /// Warp slot `warp` arrived at a barrier.
    #[inline]
    fn warp_barrier(&mut self, _warp: usize, _cycle: u64) {}

    /// Warp slot `warp` was released from a barrier.
    #[inline]
    fn warp_release(&mut self, _warp: usize, _cycle: u64) {}

    /// Warp slot `warp` finished its block's work.
    #[inline]
    fn warp_done(&mut self, _warp: usize, _cycle: u64) {}

    /// The SM finished its block list (final per-SM aggregates).
    #[inline]
    fn sm_end(&mut self, _cycles: u64, _schedulers: u32, _instructions: u64) {}
}

/// The disabled sink: no state, no recording, `ENABLED = false`. The run
/// loop monomorphized over `NullSink` contains no profiling code at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProfileSink for NullSink {
    const ENABLED: bool = false;

    #[inline]
    fn for_sm(_sm_id: u32, _l1: L1Config, _warps: usize, _tbs: usize, _windows: bool) -> NullSink {
        NullSink
    }

    #[inline]
    fn finish_into(self, _out: &mut LaunchProfile) {}
}

impl ProfileSink for SmProfile {
    const ENABLED: bool = true;

    fn for_sm(sm_id: u32, l1: L1Config, warps: usize, tbs: usize, windows: bool) -> SmProfile {
        SmProfile {
            sm_id,
            cycles: 0,
            schedulers: 0,
            instructions: 0,
            stall_cycles: [0; StallReason::COUNT],
            sets: vec![SetCounters::default(); l1.num_sets() as usize],
            unique_lines: HashSet::new(),
            miss_curve: Vec::new(),
            events: Vec::new(),
            dropped_events: 0,
            l2_accesses: 0,
            l2_hits: 0,
            l2_evictions: 0,
            windows,
            open: vec![None; warps],
            tb_open: vec![None; tbs],
            window: MissWindow::default(),
        }
    }

    fn finish_into(mut self, out: &mut LaunchProfile) {
        // Flush the partial miss-curve window; open segments were closed
        // by `sm_end` (and are empty for error-terminated SMs anyway).
        if self.window.accesses > 0 && self.miss_curve.len() < Self::MAX_WINDOWS {
            self.miss_curve.push(self.window);
            self.window = MissWindow::default();
        }
        self.open.clear();
        self.tb_open.clear();
        out.sms.push(self);
    }

    fn stall(&mut self, reason: StallReason, cycles: u64) {
        self.stall_cycles[reason as usize] += cycles;
    }

    fn l1_load(&mut self, set: u32, line: u32, hit: bool, evicted: bool) {
        if let Some(s) = self.sets.get_mut(set as usize) {
            s.accesses += 1;
            if hit {
                s.hits += 1;
            } else {
                s.misses += 1;
            }
            if evicted {
                s.evictions += 1;
            }
        }
        self.unique_lines.insert(line);
        if self.windows {
            self.window.accesses += 1;
            if !hit {
                self.window.misses += 1;
            }
            if self.window.accesses >= Self::MISS_WINDOW {
                if self.miss_curve.len() < Self::MAX_WINDOWS {
                    self.miss_curve.push(self.window);
                }
                self.window = MissWindow::default();
            }
        }
    }

    fn l2_load(&mut self, hit: bool, evicted: bool) {
        self.l2_accesses += 1;
        if hit {
            self.l2_hits += 1;
        }
        if evicted {
            self.l2_evictions += 1;
        }
    }

    fn l1_store(&mut self, set: u32, line: u32) {
        if let Some(s) = self.sets.get_mut(set as usize) {
            s.stores += 1;
        }
        self.unique_lines.insert(line);
    }

    fn tb_start(&mut self, slot: usize, _block: u32, cycle: u64) {
        if let Some(t) = self.tb_open.get_mut(slot) {
            *t = Some(cycle);
        }
    }

    fn tb_end(&mut self, slot: usize, block: u32, cycle: u64) {
        let start = self.tb_open.get_mut(slot).and_then(|t| t.take());
        if let Some(start) = start {
            self.push_event(PhaseEvent {
                warp: slot as u32,
                block,
                kind: PhaseKind::Block,
                start,
                end: cycle,
            });
        }
    }

    fn warp_begin(&mut self, warp: usize, block: u32, cycle: u64) {
        if let Some(slot) = self.open.get_mut(warp) {
            *slot = Some((cycle, PhaseKind::Exec, block));
        }
    }

    fn warp_barrier(&mut self, warp: usize, cycle: u64) {
        self.roll_segment(warp, cycle, Some(PhaseKind::Barrier));
    }

    fn warp_release(&mut self, warp: usize, cycle: u64) {
        self.roll_segment(warp, cycle, Some(PhaseKind::Exec));
    }

    fn warp_done(&mut self, warp: usize, cycle: u64) {
        self.roll_segment(warp, cycle, None);
    }

    fn sm_end(&mut self, cycles: u64, schedulers: u32, instructions: u64) {
        self.cycles = cycles;
        self.schedulers = schedulers;
        self.instructions = instructions;
        // Close any segments left open (blocks in flight when an error
        // cut the run short).
        for w in 0..self.open.len() {
            self.roll_segment(w, cycles, None);
        }
        for slot in 0..self.tb_open.len() {
            if let Some(start) = self.tb_open[slot].take() {
                self.push_event(PhaseEvent {
                    warp: slot as u32,
                    block: u32::MAX,
                    kind: PhaseKind::Block,
                    start,
                    end: cycles,
                });
            }
        }
    }
}

/// A launch's merged profile: per-SM shards in ascending SM-id order plus
/// the launch-level context the consumers need.
#[derive(Debug, Clone)]
pub struct LaunchProfile {
    /// Kernel name.
    pub kernel: String,
    /// Launch geometry.
    pub launch: catt_ir::LaunchConfig,
    /// L1D geometry the launch ran with (heat-map dimensions).
    pub l1: L1Config,
    /// Whether the launch completed (false: the profile is the partial
    /// record of an errored launch — fuel exhaustion, deadlock).
    pub complete: bool,
    /// Per-SM shards, ascending SM id. SMs that received no blocks have
    /// no shard.
    pub sms: Vec<SmProfile>,
}

impl LaunchProfile {
    /// Empty profile for a launch of `kernel`.
    pub fn new(kernel: String, launch: catt_ir::LaunchConfig, l1: L1Config) -> LaunchProfile {
        LaunchProfile {
            kernel,
            launch,
            l1,
            complete: false,
            sms: Vec::new(),
        }
    }

    /// Stall cycles per reason, summed over SMs.
    pub fn stall_totals(&self) -> [u64; StallReason::COUNT] {
        let mut t = [0u64; StallReason::COUNT];
        for sm in &self.sms {
            for (acc, v) in t.iter_mut().zip(sm.stall_cycles.iter()) {
                *acc += v;
            }
        }
        t
    }

    /// Issue slots over all SMs.
    pub fn issue_slots(&self) -> u64 {
        self.sms.iter().map(|s| s.issue_slots()).sum()
    }

    /// Instructions issued over all SMs.
    pub fn instructions(&self) -> u64 {
        self.sms.iter().map(|s| s.instructions).sum()
    }

    /// Per-set counters summed over SMs (every SM has its own L1D of the
    /// same geometry, so sets align index-by-index).
    pub fn set_totals(&self) -> Vec<SetCounters> {
        let mut totals = vec![SetCounters::default(); self.l1.num_sets() as usize];
        for sm in &self.sms {
            for (t, s) in totals.iter_mut().zip(sm.sets.iter()) {
                t.add(s);
            }
        }
        totals
    }

    /// Unique lines touched, unioned over SMs (each SM caches its own
    /// share, so the union is the launch's working set; the per-SM count
    /// is what Eq. 8's per-SM `SIZE_req` predicts).
    pub fn unique_lines(&self) -> usize {
        let mut all: HashSet<u32> = HashSet::new();
        for sm in &self.sms {
            all.extend(sm.unique_lines.iter().copied());
        }
        all.len()
    }

    /// Largest per-SM unique-line working set (the quantity Eq. 8's
    /// per-SM footprint bounds).
    pub fn max_unique_lines_per_sm(&self) -> usize {
        self.sms
            .iter()
            .map(|s| s.unique_lines.len())
            .max()
            .unwrap_or(0)
    }

    /// Timeline segments dropped across SMs (0 = timelines are complete).
    pub fn dropped_events(&self) -> u64 {
        self.sms.iter().map(|s| s.dropped_events).sum()
    }

    /// L2 totals over SMs as `(accesses, hits, evictions)`. All zero
    /// when the L2 is disabled.
    pub fn l2_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for sm in &self.sms {
            t.0 += sm.l2_accesses;
            t.1 += sm.l2_hits;
            t.2 += sm.l2_evictions;
        }
        t
    }
}

thread_local! {
    /// Capture buffer for profiles produced on this thread (`None` =
    /// capture off, profiles are dropped at the end of the launch).
    static CAPTURE: RefCell<Option<Vec<LaunchProfile>>> = const { RefCell::new(None) };
}

/// Arm or disarm profile capture on this thread. Arming clears any
/// previously captured profiles. Profiling itself is controlled by
/// `GpuConfig::profile_enabled`; capture only decides whether the
/// resulting [`LaunchProfile`]s are retained for [`take_captured`] (off
/// by default so long profiled sweeps cannot accumulate unbounded state).
pub fn set_capture(enabled: bool) {
    CAPTURE.with(|c| {
        *c.borrow_mut() = if enabled { Some(Vec::new()) } else { None };
    });
}

/// Take every profile captured on this thread since the last call (or
/// since capture was armed), in launch order. Empty when capture is off.
pub fn take_captured() -> Vec<LaunchProfile> {
    CAPTURE.with(|c| match c.borrow_mut().as_mut() {
        Some(v) => std::mem::take(v),
        None => Vec::new(),
    })
}

/// Deliver a finished launch profile to the capture buffer (dropped when
/// capture is off).
pub(crate) fn submit(p: LaunchProfile) {
    CAPTURE.with(|c| {
        if let Some(v) = c.borrow_mut().as_mut() {
            v.push(p);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Config {
        L1Config {
            size_bytes: 4 * 1024,
            line_bytes: 128,
            assoc: 4,
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // pins the zero-cost contract
    fn null_sink_is_disabled_and_empty() {
        assert!(!NullSink::ENABLED);
        let s = NullSink::for_sm(0, l1(), 8, 2, false);
        let mut p = LaunchProfile::new("k".into(), catt_ir::LaunchConfig::d1(1, 32), l1());
        s.finish_into(&mut p);
        assert!(p.sms.is_empty());
    }

    #[test]
    fn set_counters_roll_up() {
        let mut s = SmProfile::for_sm(0, l1(), 4, 1, true);
        s.l1_load(0, 10, false, false);
        s.l1_load(0, 10, true, false);
        s.l1_load(3, 11, false, true);
        s.l1_store(3, 12);
        s.sm_end(100, 2, 7);
        let mut p = LaunchProfile::new("k".into(), catt_ir::LaunchConfig::d1(1, 32), l1());
        s.finish_into(&mut p);
        let totals = p.set_totals();
        assert_eq!(totals[0].accesses, 2);
        assert_eq!(totals[0].hits, 1);
        assert_eq!(totals[0].misses, 1);
        assert_eq!(totals[3].misses, 1);
        assert_eq!(totals[3].evictions, 1);
        assert_eq!(totals[3].stores, 1);
        assert_eq!(p.unique_lines(), 3);
        // Partial miss window flushed on finish.
        assert_eq!(p.sms[0].miss_curve.len(), 1);
        assert_eq!(p.sms[0].miss_curve[0].accesses, 3);
        assert_eq!(p.sms[0].miss_curve[0].misses, 2);
    }

    #[test]
    fn warp_segments_alternate_exec_and_barrier() {
        let mut s = SmProfile::for_sm(0, l1(), 2, 1, false);
        s.tb_start(0, 5, 0);
        s.warp_begin(0, 5, 0);
        s.warp_barrier(0, 10);
        s.warp_release(0, 14);
        s.warp_done(0, 30);
        s.tb_end(0, 5, 31);
        s.sm_end(40, 2, 9);
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.events[0].kind, PhaseKind::Exec);
        assert_eq!((s.events[0].start, s.events[0].end), (0, 10));
        assert_eq!(s.events[1].kind, PhaseKind::Barrier);
        assert_eq!((s.events[1].start, s.events[1].end), (10, 14));
        assert_eq!(s.events[2].kind, PhaseKind::Exec);
        assert_eq!((s.events[2].start, s.events[2].end), (14, 30));
        assert_eq!(s.events[3].kind, PhaseKind::Block);
        assert_eq!((s.events[3].start, s.events[3].end), (0, 31));
        assert_eq!(s.dropped_events, 0);
    }

    #[test]
    fn windows_off_keeps_counters_but_skips_the_curve() {
        // With window recording off (the default), the per-set counters
        // and working set are still exact — only the miss curve is empty.
        let mut s = SmProfile::for_sm(0, l1(), 4, 1, false);
        for i in 0..600 {
            s.l1_load(0, i, i % 2 == 0, false);
        }
        s.sm_end(100, 2, 7);
        let mut p = LaunchProfile::new("k".into(), catt_ir::LaunchConfig::d1(1, 32), l1());
        s.finish_into(&mut p);
        assert_eq!(p.sms[0].sets[0].accesses, 600);
        assert_eq!(p.sms[0].sets[0].hits, 300);
        assert_eq!(p.unique_lines(), 600);
        assert!(p.sms[0].miss_curve.is_empty(), "curve is opt-in");
    }

    #[test]
    fn l2_hook_counts_hits_and_evictions() {
        let mut s = SmProfile::for_sm(0, l1(), 4, 1, false);
        s.l2_load(false, false);
        s.l2_load(true, false);
        s.l2_load(false, true);
        let mut p = LaunchProfile::new("k".into(), catt_ir::LaunchConfig::d1(1, 32), l1());
        s.finish_into(&mut p);
        assert_eq!(p.l2_totals(), (3, 1, 1));
    }

    #[test]
    fn stall_accounting_sums() {
        let mut s = SmProfile::for_sm(1, l1(), 2, 1, false);
        s.stall(StallReason::Memory, 10);
        s.stall(StallReason::Scoreboard, 5);
        s.stall(StallReason::Memory, 2);
        assert_eq!(s.total_stall_cycles(), 17);
        assert_eq!(s.stall_cycles[StallReason::Memory as usize], 12);
    }

    #[test]
    fn capture_is_explicit_and_draining() {
        set_capture(false);
        submit(LaunchProfile::new(
            "dropped".into(),
            catt_ir::LaunchConfig::d1(1, 32),
            l1(),
        ));
        assert!(take_captured().is_empty(), "capture off drops profiles");
        set_capture(true);
        submit(LaunchProfile::new(
            "kept".into(),
            catt_ir::LaunchConfig::d1(1, 32),
            l1(),
        ));
        let got = take_captured();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].kernel, "kept");
        assert!(take_captured().is_empty(), "take drains the buffer");
        set_capture(false);
    }
}
